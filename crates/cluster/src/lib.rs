//! Replicated, sharded cluster layer over `bdb-kvstore`.
//!
//! The paper runs Cloud OLTP on a 14-node HBase cluster where node
//! loss and recovery are the normal case. This crate simulates that
//! deployment shape deterministically, in one process: a [`ShardMap`]
//! hash-partitions keys across N simulated nodes, each node an
//! independent [`bdb_kvstore::Store`] with its own WAL and SSTable
//! directory, and a [`Cluster`] coordinator replicates every write to
//! a replica set.
//!
//! The protocol (DESIGN §8):
//!
//! * **Acknowledged replication.** A put is applied on the shard's
//!   primary and shipped to the in-sync replicas through their normal
//!   WAL-first write path; the write is *acknowledged* once `W` nodes
//!   (default 2 of 3) applied it. A replica whose ship fails — lost
//!   in transit or torn mid-record on the replica's WAL — drops out of
//!   the in-sync set and receives no further ships until an
//!   anti-entropy pass reconciles it, so in-sync replicas always hold
//!   an exact prefix of the shard's log.
//! * **Deterministic failover.** When a node dies, each shard it led
//!   promotes, on next access, the alive replica with the highest
//!   replicated WAL offset (ties break to the lowest node id).
//! * **Read-repair.** Quorum reads consult `R` replicas (default 2),
//!   return the highest sequence number, and write that version back
//!   to any consulted replica that returned a stale one.
//! * **Anti-entropy.** A rejoining (or ship-lossy) replica is
//!   reconciled against the shard primary by a bidirectional
//!   max-sequence merge, after stray `.tmp` files from its crash are
//!   removed.
//!
//! Everything is driven by the caller's virtual clock and a shared
//! [`bdb_faults::FaultPlan`], so campaigns over the cluster are
//! byte-reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod history;
mod shard;

pub use cluster::{Cluster, ClusterConfig, ClusterEvent, ClusterStats, PutOutcome};
pub use history::{check_history, CheckReport, History, Op};
pub use shard::ShardMap;

/// Named fault-injection sites the cluster layer consults.
pub mod sites {
    /// One occurrence per WAL ship of a record from a primary to one
    /// replica; an injected I/O error loses the ship (the replica
    /// diverges until anti-entropy).
    pub const SHIP_WRITE: &str = "cluster.ship.write";
    /// Node-lifecycle site campaigns poll for [`bdb_faults::FaultKind::NodeKill`]
    /// rules (typically with `Trigger::AtVirtualTime`).
    pub const NODE_KILL: &str = "cluster.node.kill";
    /// One occurrence per anti-entropy reconciliation of one (shard,
    /// replica) pair; an injected error skips the pair (it stays
    /// diverged until the next pass).
    pub const ANTI_ENTROPY: &str = "cluster.anti_entropy.copy";
}

/// Encodes a replicated value: `seq(8 LE) || payload`. The sequence
/// number makes replica versions comparable for read-repair and
/// anti-entropy.
#[must_use]
pub fn encode_value(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + payload.len());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(payload);
    v
}

/// Decodes a replicated value into `(seq, payload)`; `None` if the
/// bytes are too short to carry a sequence number.
#[must_use]
pub fn decode_value(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let seq = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
    Some((seq, &bytes[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let enc = encode_value(42, b"payload");
        assert_eq!(decode_value(&enc), Some((42, b"payload".as_slice())));
        assert_eq!(decode_value(b"short"), None);
    }
}
