//! Key → shard → replica-set placement.

/// Hash-partitions keys across `shards` shards and places each shard's
/// replicas on consecutive nodes of the ring (HBase region assignment
/// flattened to a static map — deterministic and balance-friendly).
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    nodes: usize,
    replication: usize,
}

impl ShardMap {
    /// Builds a map of `shards` shards over `nodes` nodes with
    /// `replication`-way placement.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `replication > nodes`
    /// (replicas must land on distinct nodes).
    #[must_use]
    pub fn new(shards: usize, nodes: usize, replication: usize) -> Self {
        assert!(shards > 0 && nodes > 0 && replication > 0, "degenerate shard map");
        assert!(replication <= nodes, "replication factor exceeds node count");
        Self { shards, nodes, replication }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Replication factor.
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The shard owning `key` (FNV-1a of the key, mod shards).
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.shards as u64) as usize
    }

    /// The replica set of `shard`: `replication` consecutive nodes
    /// starting at `shard % nodes`. The first entry is the shard's
    /// initial primary.
    #[must_use]
    pub fn replicas(&self, shard: usize) -> Vec<usize> {
        (0..self.replication).map(|i| (shard + i) % self.nodes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let map = ShardMap::new(8, 4, 3);
        for shard in 0..8 {
            let reps = map.replicas(shard);
            assert_eq!(reps.len(), 3);
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas land on distinct nodes");
            assert_eq!(reps, map.replicas(shard));
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let map = ShardMap::new(8, 4, 3);
        for i in 0..100u32 {
            let key = format!("user{i:06}").into_bytes();
            let s = map.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, map.shard_of(&key));
        }
    }

    #[test]
    fn keys_spread_over_all_shards() {
        let map = ShardMap::new(8, 4, 3);
        let mut seen = [false; 8];
        for i in 0..200u32 {
            seen[map.shard_of(format!("user{i:06}").as_bytes())] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 keys cover all 8 shards");
    }

    #[test]
    #[should_panic(expected = "replication factor exceeds node count")]
    fn overwide_replication_panics() {
        let _ = ShardMap::new(4, 2, 3);
    }
}
