//! Linear operation histories and the quorum-read invariant checker.
//!
//! The cluster coordinator is single-threaded, so a campaign's client
//! operations form a *linear* history in virtual time; checking the
//! replicated store then reduces to a per-key scan of that history —
//! no exponential witness search needed. The invariant checked is the
//! one acknowledged replication promises across failovers:
//!
//! 1. **No lost acknowledged write.** Every quorum read of a key
//!    returns a version at least as new as the last *acknowledged*
//!    write of that key (unacknowledged writes may or may not
//!    surface).
//! 2. **No invented version.** Every returned version was actually
//!    written at some point (sequence numbers come from the recorded
//!    write set).
//! 3. **Monotonic reads.** Versions returned for a key never go
//!    backwards over the history.

use std::collections::BTreeMap;

/// One client operation in a campaign history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A replicated put of `key` that was assigned `seq`; `acked` is
    /// whether it reached the write quorum.
    Put {
        /// The key written.
        key: Vec<u8>,
        /// The sequence number the coordinator assigned.
        seq: u64,
        /// Whether the write quorum acknowledged it.
        acked: bool,
    },
    /// A quorum read of `key` observing `observed` (None = key absent).
    Get {
        /// The key read.
        key: Vec<u8>,
        /// The version the quorum returned.
        observed: Option<u64>,
    },
}

/// A linear history of client operations in virtual time.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<(u64, Op)>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation at virtual time `at_us` (microseconds).
    /// Operations must be recorded in execution order.
    pub fn record(&mut self, at_us: u64, op: Op) {
        self.events.push((at_us, op));
    }

    /// The recorded operations, in order.
    #[must_use]
    pub fn events(&self) -> &[(u64, Op)] {
        &self.events
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Verdict of [`check_history`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Whether every invariant held.
    pub ok: bool,
    /// Human-readable descriptions of violations (empty when `ok`).
    pub violations: Vec<String>,
    /// Reads checked.
    pub reads: u64,
    /// Writes checked.
    pub writes: u64,
    /// Reads that observed a version newer than the last acknowledged
    /// one (an unacknowledged write surfacing — legal, but reported).
    pub unacked_reads: u64,
}

#[derive(Default)]
struct KeyState {
    last_acked: Option<u64>,
    last_observed: Option<u64>,
    written: Vec<u64>,
}

/// Checks the quorum-read invariants over a linear history (see the
/// module docs for the exact rules).
#[must_use]
pub fn check_history(history: &History) -> CheckReport {
    let mut report = CheckReport { ok: true, ..CheckReport::default() };
    let mut keys: BTreeMap<&[u8], KeyState> = BTreeMap::new();
    let mut violate = Vec::new();
    for (at_us, op) in history.events() {
        match op {
            Op::Put { key, seq, acked } => {
                report.writes += 1;
                let state = keys.entry(key.as_slice()).or_default();
                state.written.push(*seq);
                if *acked {
                    state.last_acked = Some(*seq);
                }
            }
            Op::Get { key, observed } => {
                report.reads += 1;
                let state = keys.entry(key.as_slice()).or_default();
                let keyname = String::from_utf8_lossy(key).into_owned();
                match (state.last_acked, observed) {
                    (Some(acked), None) => violate.push(format!(
                        "t={at_us}us read of '{keyname}' lost acknowledged write seq {acked}"
                    )),
                    (Some(acked), Some(got)) if *got < acked => violate.push(format!(
                        "t={at_us}us read of '{keyname}' returned stale seq {got} < acknowledged {acked}"
                    )),
                    (acked, Some(got)) => {
                        if !state.written.contains(got) {
                            violate.push(format!(
                                "t={at_us}us read of '{keyname}' invented seq {got} (never written)"
                            ));
                        }
                        if acked.is_none_or(|a| *got > a) {
                            report.unacked_reads += 1;
                        }
                    }
                    (None, None) => {}
                }
                if let (Some(prev), Some(got)) = (state.last_observed, observed) {
                    if *got < prev {
                        violate.push(format!(
                            "t={at_us}us read of '{keyname}' went backwards: {got} after {prev}"
                        ));
                    }
                }
                if observed.is_some() {
                    state.last_observed = *observed;
                }
            }
        }
    }
    report.ok = violate.is_empty();
    report.violations = violate;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &str, seq: u64, acked: bool) -> Op {
        Op::Put { key: key.as_bytes().to_vec(), seq, acked }
    }

    fn get(key: &str, observed: Option<u64>) -> Op {
        Op::Get { key: key.as_bytes().to_vec(), observed }
    }

    #[test]
    fn clean_history_passes() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, get("a", Some(1)));
        h.record(3, put("a", 2, true));
        h.record(4, get("a", Some(2)));
        h.record(5, get("never-written", None));
        let r = check_history(&h);
        assert!(r.ok, "{:?}", r.violations);
        assert_eq!((r.reads, r.writes), (3, 2));
    }

    #[test]
    fn lost_acknowledged_write_is_caught() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, get("a", None));
        let r = check_history(&h);
        assert!(!r.ok);
        assert!(r.violations[0].contains("lost acknowledged write"));
    }

    #[test]
    fn stale_read_is_caught() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, put("a", 2, true));
        h.record(3, get("a", Some(1)));
        let r = check_history(&h);
        assert!(!r.ok);
        assert!(r.violations[0].contains("stale seq 1"));
    }

    #[test]
    fn invented_version_is_caught() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, get("a", Some(7)));
        let r = check_history(&h);
        assert!(!r.ok);
        assert!(r.violations[0].contains("invented seq 7"));
    }

    #[test]
    fn unacked_write_may_surface_without_violation() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, put("a", 2, false)); // failed quorum
        h.record(3, get("a", Some(2))); // surfaced anyway: legal
        h.record(4, get("a", Some(2))); // but must not go backwards now
        let r = check_history(&h);
        assert!(r.ok, "{:?}", r.violations);
        assert_eq!(r.unacked_reads, 2);
    }

    #[test]
    fn non_monotonic_reads_are_caught() {
        let mut h = History::new();
        h.record(1, put("a", 1, true));
        h.record(2, put("a", 2, false));
        h.record(3, get("a", Some(2)));
        h.record(4, get("a", Some(1)));
        let r = check_history(&h);
        assert!(!r.ok);
        assert!(r.violations[0].contains("went backwards"));
    }
}
