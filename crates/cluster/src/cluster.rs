//! The cluster coordinator: replicated writes, quorum reads,
//! failover, read-repair and anti-entropy over per-node stores.

use crate::shard::ShardMap;
use crate::{decode_value, encode_value, sites};
use bdb_faults::FaultPlan;
use bdb_kvstore::{Store, StoreConfig};
use bdb_telemetry::{ArgValue, MetricsRegistry, SpanEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Upper bound for full-range scans during anti-entropy; user keys must
/// sort strictly below it (any printable-ASCII key does).
const MAX_KEY: [u8; 32] = [0xFF; 32];

/// A replicated version: `(sequence number, payload)`.
pub type Version = (u64, Vec<u8>);

/// One node's view of one shard: key → version.
pub type ShardState = BTreeMap<Vec<u8>, Version>;

/// Sizing and quorum parameters for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated nodes (each an independent `Store` directory).
    pub nodes: usize,
    /// Hash shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// Nodes that must apply a write before it is acknowledged.
    pub write_quorum: usize,
    /// Replicas consulted by a read.
    pub read_quorum: usize,
    /// Per-node store configuration.
    pub store: StoreConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            shards: 8,
            replication: 3,
            write_quorum: 2,
            read_quorum: 2,
            store: StoreConfig::default(),
        }
    }
}

/// Outcome of a replicated put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// The sequence number assigned to the write (per shard,
    /// monotonic).
    pub seq: u64,
    /// Whether the write reached the write quorum. An unacknowledged
    /// write may still surface on some replica — the history checker
    /// accounts for that.
    pub acked: bool,
}

/// Counters the chaos report renders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Primary promotions performed.
    pub failovers: u64,
    /// Stale replica versions overwritten during quorum reads.
    pub read_repairs: u64,
    /// Keys copied during anti-entropy reconciliation.
    pub anti_entropy_repairs: u64,
    /// WAL ships lost to injected I/O errors.
    pub lost_ships: u64,
    /// Nodes taken offline (injected kills + crashed write paths).
    pub node_kills: u64,
    /// Nodes brought back online.
    pub rejoins: u64,
    /// Writes that reached the write quorum.
    pub acked_writes: u64,
    /// Writes that did not.
    pub failed_writes: u64,
    /// Quorum reads served.
    pub reads: u64,
}

/// A timestamped cluster-lifecycle event, for Chrome-trace instants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// Virtual time of the event, microseconds.
    pub at_us: u64,
    /// Event kind (`failover`, `node_down`, `rejoin`, `read_repair`,
    /// `anti_entropy`, `ship_lost`).
    pub kind: &'static str,
    /// Node involved.
    pub node: usize,
    /// Shard involved (`usize::MAX` for node-wide events).
    pub shard: usize,
}

#[derive(Debug)]
struct Node {
    dir: PathBuf,
    store: Option<Store>,
    /// Logical WAL position carried across restarts: `base` is the
    /// position at the last (re)open, the live store adds its own
    /// monotonic offset on top.
    base_offset: u64,
}

impl Node {
    fn wal_pos(&self) -> u64 {
        self.base_offset + self.store.as_ref().map_or(0, Store::wal_offset)
    }
}

/// A deterministic simulated cluster: N nodes, each an independent
/// [`Store`], coordinated by this in-process "master" (which models
/// HBase's meta/ZooKeeper control plane and therefore survives node
/// kills).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    map: ShardMap,
    nodes: Vec<Node>,
    /// Per shard: current primary node id.
    primaries: Vec<usize>,
    /// Per shard: last assigned sequence number.
    next_seq: Vec<u64>,
    /// Per shard: highest acknowledged sequence number.
    acked_seq: Vec<u64>,
    /// Per shard, per replica: bytes of this shard's log the replica
    /// has applied — the "replicated WAL offset" failover compares.
    applied: Vec<BTreeMap<usize, u64>>,
    /// (shard, node) pairs that missed a ship and await anti-entropy.
    dirty: BTreeSet<(usize, usize)>,
    stats: ClusterStats,
    events: Vec<ClusterEvent>,
    faults: FaultPlan,
    now: Duration,
    /// Rotates the non-primary member of read quorums so every replica
    /// is eventually consulted (and repaired).
    read_rotation: u64,
    /// One metrics registry per node (scrape targets for `bdb-tsdb`).
    metrics: Vec<MetricsRegistry>,
    /// Dapper-style spans emitted by traced writes, in virtual time.
    trace_spans: Vec<SpanEvent>,
}

impl Cluster {
    /// Opens (or creates) a cluster rooted at `root`: node `i` lives in
    /// `root/node-<i>/`.
    ///
    /// # Errors
    ///
    /// Propagates store recovery errors.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero sizes, `replication >
    /// nodes`, quorums wider than the replica set).
    pub fn open(root: &Path, config: ClusterConfig, faults: FaultPlan) -> std::io::Result<Self> {
        assert!(
            config.write_quorum >= 1 && config.write_quorum <= config.replication,
            "write quorum must fit the replica set"
        );
        assert!(
            config.read_quorum >= 1 && config.read_quorum <= config.replication,
            "read quorum must fit the replica set"
        );
        let map = ShardMap::new(config.shards, config.nodes, config.replication);
        let mut nodes = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let dir = root.join(format!("node-{i}"));
            let store = Store::open_with_faults(&dir, config.store.clone(), faults.clone())?;
            nodes.push(Node { dir, store: Some(store), base_offset: 0 });
        }
        let primaries = (0..config.shards).map(|s| map.replicas(s)[0]).collect();
        let applied = (0..config.shards)
            .map(|s| map.replicas(s).into_iter().map(|n| (n, 0)).collect())
            .collect();
        let metrics = (0..config.nodes).map(|_| MetricsRegistry::new()).collect();
        Ok(Self {
            primaries,
            next_seq: vec![0; config.shards],
            acked_seq: vec![0; config.shards],
            applied,
            dirty: BTreeSet::new(),
            stats: ClusterStats::default(),
            events: Vec::new(),
            map,
            nodes,
            config,
            faults,
            now: Duration::ZERO,
            read_rotation: 0,
            metrics,
            trace_spans: Vec::new(),
        })
    }

    /// Advances the cluster's virtual clock (and the fault plan's, so
    /// `AtVirtualTime` rules become eligible).
    pub fn advance(&mut self, now: Duration) {
        self.now = self.now.max(now);
        self.faults.set_virtual_time(self.now);
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Drains recorded lifecycle events.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Node `id`'s metrics registry — the per-node scrape target.
    /// Registries are shared handles; clone freely.
    #[must_use]
    pub fn node_metrics(&self, id: usize) -> &MetricsRegistry {
        &self.metrics[id]
    }

    /// Drains the spans emitted by [`Cluster::put_traced`] calls, in
    /// emission order. Timestamps are virtual (the cluster clock), so
    /// the stream is deterministic for a given seed.
    pub fn take_trace_spans(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.trace_spans)
    }

    /// Whether node `id` is online.
    #[must_use]
    pub fn alive(&self, id: usize) -> bool {
        self.nodes[id].store.is_some()
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.map.shard_of(key)
    }

    /// The current primary of `shard` (without triggering failover).
    #[must_use]
    pub fn primary_of_shard(&self, shard: usize) -> usize {
        self.primaries[shard]
    }

    /// The highest acknowledged sequence number of `shard`.
    #[must_use]
    pub fn acked_seq(&self, shard: usize) -> u64 {
        self.acked_seq[shard]
    }

    fn event(&mut self, kind: &'static str, node: usize, shard: usize) {
        let at_us = u64::try_from(self.now.as_micros()).unwrap_or(u64::MAX);
        self.events.push(ClusterEvent { at_us, kind, node, shard });
    }

    /// Takes node `id` offline, modeling a crash: the store handle is
    /// dropped mid-flight (its buffered state is lost exactly as a real
    /// crash would lose it) and every shard it replicates is marked for
    /// anti-entropy on rejoin.
    pub fn kill_node(&mut self, id: usize) {
        if self.nodes[id].store.is_none() {
            return;
        }
        self.nodes[id].base_offset = self.nodes[id].wal_pos();
        self.nodes[id].store = None;
        self.stats.node_kills += 1;
        self.event("node_down", id, usize::MAX);
        for shard in 0..self.config.shards {
            if self.map.replicas(shard).contains(&id) {
                self.dirty.insert((shard, id));
            }
        }
    }

    /// Brings node `id` back online: removes stray `.tmp` files its
    /// crash left behind, reopens the store (WAL prefix replay), then
    /// runs anti-entropy for every shard the node replicates.
    ///
    /// # Errors
    ///
    /// Propagates store recovery errors (injected copy errors during
    /// anti-entropy are absorbed: the pair simply stays diverged).
    pub fn rejoin_node(&mut self, id: usize) -> std::io::Result<()> {
        if self.nodes[id].store.is_some() {
            return Ok(());
        }
        Store::remove_stray_tmp(&self.nodes[id].dir)?;
        let store = Store::open_with_faults(
            &self.nodes[id].dir,
            self.config.store.clone(),
            self.faults.clone(),
        )?;
        self.nodes[id].store = Some(store);
        self.stats.rejoins += 1;
        self.event("rejoin", id, usize::MAX);
        for shard in 0..self.config.shards {
            if self.map.replicas(shard).contains(&id) {
                self.ensure_primary(shard)?;
                if self.primaries[shard] != id {
                    self.anti_entropy(shard, id)?;
                }
            }
        }
        Ok(())
    }

    /// Runs anti-entropy for every diverged (shard, replica) pair whose
    /// replica is online — the periodic reconcile pass.
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors (injected ones leave the pair
    /// diverged for the next pass).
    pub fn resync(&mut self) -> std::io::Result<()> {
        let pairs: Vec<(usize, usize)> = self.dirty.iter().copied().collect();
        for (shard, node) in pairs {
            if self.nodes[node].store.is_some() && self.primaries[shard] != node {
                self.anti_entropy(shard, node)?;
            }
        }
        Ok(())
    }

    /// Full-repair pass (Cassandra's `nodetool repair` flattened): runs
    /// anti-entropy between every shard primary and every alive
    /// replica, diverged or not. Two consecutive passes make all alive
    /// replicas of a shard byte-identical — the first accumulates the
    /// union onto each primary, the second ships it back out.
    ///
    /// # Errors
    ///
    /// Returns an error when a shard has no live replica; propagates
    /// real I/O errors.
    pub fn reconcile_all(&mut self) -> std::io::Result<()> {
        for shard in 0..self.config.shards {
            let primary = self.ensure_primary(shard)?;
            for node in self.map.replicas(shard) {
                if node != primary && self.nodes[node].store.is_some() {
                    self.anti_entropy(shard, node)?;
                }
            }
        }
        Ok(())
    }

    /// Replicated put: applies on the shard primary, ships to in-sync
    /// replicas, acknowledges at `W` applies. An injected failure on
    /// the primary kills that node, fails the shard over and retries
    /// once on the new primary.
    ///
    /// # Errors
    ///
    /// Returns an error when the shard has no promotable replica;
    /// injected per-node faults are absorbed into the outcome.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<PutOutcome> {
        self.put_impl(key, value, None)
    }

    /// [`Cluster::put`] carrying a Dapper-style trace id: the write's
    /// hop through shard routing → primary WAL append → replica ship →
    /// quorum ack is emitted as linked [`SpanEvent`]s (drained via
    /// [`Cluster::take_trace_spans`]) using the same
    /// `trace_id`/`span_id`/`parent_span_id` argument convention as
    /// `bdb-obs` service traces. Span times are virtual, modeled on a
    /// fixed per-hop cost, so the stream is deterministic.
    ///
    /// # Errors
    ///
    /// As [`Cluster::put`].
    pub fn put_traced(
        &mut self,
        key: &[u8],
        value: &[u8],
        trace: u64,
    ) -> std::io::Result<PutOutcome> {
        self.put_impl(key, value, Some(trace))
    }

    /// Modeled per-hop costs for traced writes, microseconds: the WAL
    /// append starts after routing, each replica ship is pipelined
    /// behind it, and an ack arrives one network hop after the apply.
    const ROUTE_US: u64 = 10;
    const APPEND_US: u64 = 30;
    const SHIP_US: u64 = 30;
    const ACK_HOP_US: u64 = 20;

    fn put_impl(
        &mut self,
        key: &[u8],
        value: &[u8],
        trace: Option<u64>,
    ) -> std::io::Result<PutOutcome> {
        let shard = self.map.shard_of(key);
        self.next_seq[shard] += 1;
        let seq = self.next_seq[shard];
        let enc = encode_value(seq, value);
        let rec_len = 10 + key.len() as u64 + enc.len() as u64;
        let t0 = u64::try_from(self.now.as_micros()).unwrap_or(u64::MAX);
        let trace_hex = trace.map(|t| format!("{t:016x}"));
        let span = |name: &'static str,
                    start: u64,
                    dur: Option<u64>,
                    id: i64,
                    parent: i64,
                    node: usize,
                    extra: Vec<(&'static str, ArgValue)>| {
            let mut args = vec![
                ("trace_id", ArgValue::Str(trace_hex.clone().unwrap_or_default())),
                ("span_id", ArgValue::Int(id)),
            ];
            if parent != 0 {
                args.push(("parent_span_id", ArgValue::Int(parent)));
            }
            args.push(("node", ArgValue::Int(node as i64)));
            args.extend(extra);
            SpanEvent { name, cat: "cluster", start_us: start, dur_us: dur, tid: node as u64, args }
        };

        let mut spans: Vec<SpanEvent> = Vec::new();
        let mut retried = false;
        let mut acks = 0usize;
        let mut ack_at: Option<u64> = None;
        let mut next_id: i64 = 3;
        let mut primary_used = 0usize;
        for _attempt in 0..2 {
            let primary = self.ensure_primary(shard)?;
            primary_used = primary;
            match self.apply_to_node(primary, key, &enc) {
                Ok(()) => {
                    *self.applied[shard].entry(primary).or_insert(0) += rec_len;
                    acks = 1;
                    if acks >= self.config.write_quorum {
                        ack_at = Some(Self::ROUTE_US + Self::APPEND_US);
                    }
                    if trace.is_some() {
                        spans.push(span(
                            "cluster.wal_append",
                            t0 + Self::ROUTE_US,
                            Some(Self::APPEND_US),
                            2,
                            1,
                            primary,
                            vec![("rec_len", ArgValue::Int(rec_len as i64))],
                        ));
                    }
                }
                Err(e) if bdb_faults::is_injected(&e) => {
                    self.kill_node(primary);
                    // The whole pipeline restarts on the new primary.
                    retried = true;
                    spans.clear();
                    acks = 0;
                    ack_at = None;
                    next_id = 3;
                    continue; // retry on the promoted primary
                }
                Err(e) => return Err(e),
            }
            // Ship to the other in-sync, alive replicas.
            let mut ship_slot = 0u64;
            for replica in self.map.replicas(shard) {
                if replica == primary
                    || self.nodes[replica].store.is_none()
                    || self.dirty.contains(&(shard, replica))
                {
                    continue;
                }
                let ship_start = t0 + Self::ROUTE_US + Self::APPEND_US + Self::SHIP_US * ship_slot;
                ship_slot += 1;
                let ship_id = next_id;
                next_id += 1;
                if let Err(e) = self.faults.fail_io(sites::SHIP_WRITE) {
                    debug_assert!(bdb_faults::is_injected(&e));
                    self.stats.lost_ships += 1;
                    self.metrics[replica].counter("cluster.ships_lost_total").inc();
                    self.dirty.insert((shard, replica));
                    self.event("ship_lost", replica, shard);
                    if trace.is_some() {
                        spans.push(span(
                            "cluster.ship",
                            ship_start,
                            Some(5),
                            ship_id,
                            2,
                            replica,
                            vec![("outcome", ArgValue::Str("lost".into()))],
                        ));
                    }
                    continue;
                }
                match self.apply_to_node(replica, key, &enc) {
                    Ok(()) => {
                        *self.applied[shard].entry(replica).or_insert(0) += rec_len;
                        acks += 1;
                        if acks == self.config.write_quorum {
                            ack_at = Some(ship_start - t0 + Self::ACK_HOP_US);
                        }
                        if trace.is_some() {
                            spans.push(span(
                                "cluster.ship",
                                ship_start,
                                Some(Self::ACK_HOP_US),
                                ship_id,
                                2,
                                replica,
                                Vec::new(),
                            ));
                        }
                    }
                    Err(e) if bdb_faults::is_injected(&e) => {
                        // The replica crashed mid-apply (possibly a torn
                        // WAL record); it rejoins via anti-entropy.
                        self.kill_node(replica);
                        if trace.is_some() {
                            spans.push(span(
                                "cluster.ship",
                                ship_start,
                                Some(8),
                                ship_id,
                                2,
                                replica,
                                vec![("outcome", ArgValue::Str("crashed".into()))],
                            ));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            break;
        }

        let acked = acks >= self.config.write_quorum;
        if acked {
            self.acked_seq[shard] = seq;
            self.stats.acked_writes += 1;
            let ack_us = ack_at.unwrap_or(Self::ROUTE_US + Self::APPEND_US);
            self.metrics[primary_used].histogram("cluster.quorum_ack_us").record_micros(ack_us);
            if trace.is_some() {
                spans.push(span(
                    "cluster.quorum_ack",
                    t0 + ack_us,
                    None,
                    next_id,
                    1,
                    primary_used,
                    Vec::new(),
                ));
            }
        } else {
            self.stats.failed_writes += 1;
        }
        if trace.is_some() {
            let children_end = spans
                .iter()
                .map(|s| s.start_us + s.dur_us.unwrap_or(0))
                .max()
                .unwrap_or(t0 + Self::ROUTE_US);
            let mut extra = vec![
                ("shard", ArgValue::Int(shard as i64)),
                ("rec_len", ArgValue::Int(rec_len as i64)),
                ("acked", ArgValue::Int(i64::from(acked))),
            ];
            if retried {
                extra.push(("retried", ArgValue::Int(1)));
            }
            let route = span(
                "cluster.route",
                t0,
                Some(children_end.saturating_sub(t0) + Self::ROUTE_US),
                1,
                0,
                primary_used,
                extra,
            );
            self.trace_spans.push(route);
            self.trace_spans.append(&mut spans);
        }
        self.refresh_lag_gauges();
        Ok(PutOutcome { seq, acked })
    }

    /// Recomputes every node's `cluster.replication_lag_bytes` gauge:
    /// the worst (max) byte gap, across the shards the node
    /// replicates, between the shard primary's replicated WAL offset
    /// and the node's own.
    fn refresh_lag_gauges(&self) {
        for node in 0..self.config.nodes {
            let mut lag = 0u64;
            for shard in 0..self.config.shards {
                let applied = &self.applied[shard];
                let Some(node_off) = applied.get(&node).copied() else {
                    continue; // node does not replicate this shard
                };
                let primary_off = applied.get(&self.primaries[shard]).copied().unwrap_or(0);
                lag = lag.max(primary_off.saturating_sub(node_off));
            }
            self.metrics[node].gauge("cluster.replication_lag_bytes").set(lag as i64);
        }
    }

    /// Quorum read: consults `R` replicas (primary plus a rotating
    /// in-ring member), returns the newest version and repairs stale
    /// consulted replicas in place.
    ///
    /// # Errors
    ///
    /// Returns an error when the shard has no promotable replica.
    pub fn get(&mut self, key: &[u8]) -> std::io::Result<Option<(u64, Vec<u8>)>> {
        let shard = self.map.shard_of(key);
        let primary = self.ensure_primary(shard)?;
        self.read_rotation += 1;

        // Read set: primary first, then alive replicas in ring order
        // starting at a rotating offset.
        let replicas = self.map.replicas(shard);
        let others: Vec<usize> = (0..replicas.len())
            .map(|i| replicas[(self.read_rotation as usize + i) % replicas.len()])
            .filter(|&n| n != primary && self.nodes[n].store.is_some())
            .collect();
        let mut read_set = vec![primary];
        read_set.extend(others.into_iter().take(self.config.read_quorum - 1));

        let mut versions: Vec<(usize, Option<Version>)> = Vec::new();
        for node in read_set {
            match self.read_from_node(node, key) {
                Ok(v) => versions.push((node, v)),
                Err(e) if bdb_faults::is_injected(&e) => self.kill_node(node),
                Err(e) => return Err(e),
            }
        }
        self.stats.reads += 1;

        let winner = versions.iter().filter_map(|(_, v)| v.clone()).max_by_key(|(seq, _)| *seq);
        let Some((win_seq, payload)) = winner else {
            return Ok(None);
        };

        // Read-repair consulted replicas that returned an older (or no)
        // version.
        let enc = encode_value(win_seq, &payload);
        for (node, version) in versions {
            let stale = version.as_ref().is_none_or(|(seq, _)| *seq < win_seq);
            if !stale || self.nodes[node].store.is_none() {
                continue;
            }
            match self.apply_to_node(node, key, &enc) {
                Ok(()) => {
                    self.stats.read_repairs += 1;
                    self.event("read_repair", node, shard);
                }
                Err(e) if bdb_faults::is_injected(&e) => self.kill_node(node),
                Err(e) => return Err(e),
            }
        }
        Ok(Some((win_seq, payload)))
    }

    /// Snapshot of one node's versions for `shard` keys, for state
    /// comparison in tests and checkers: key → (seq, payload).
    ///
    /// # Errors
    ///
    /// Propagates scan errors; an offline node snapshots empty.
    pub fn shard_snapshot(&mut self, shard: usize, node: usize) -> std::io::Result<ShardState> {
        let mut out = ShardState::new();
        let Some(store) = self.nodes[node].store.as_mut() else {
            return Ok(out);
        };
        for (key, value) in store.scan(&[], &MAX_KEY)? {
            if self.map.shard_of(&key) != shard {
                continue;
            }
            if let Some((seq, payload)) = decode_value(&value) {
                out.insert(key, (seq, payload.to_vec()));
            }
        }
        Ok(out)
    }

    /// An offline node behaves like an injected fault: callers absorb
    /// it through the same kill-and-recover path.
    fn offline_error() -> std::io::Error {
        std::io::Error::other("injected fault: node offline")
    }

    fn apply_to_node(&mut self, node: usize, key: &[u8], enc: &[u8]) -> std::io::Result<()> {
        let Some(store) = self.nodes[node].store.as_mut() else {
            return Err(Self::offline_error());
        };
        store.put(key.to_vec(), enc.to_vec())?;
        self.metrics[node].counter("cluster.applies_total").inc();
        Ok(())
    }

    fn read_from_node(
        &mut self,
        node: usize,
        key: &[u8],
    ) -> std::io::Result<Option<(u64, Vec<u8>)>> {
        let Some(store) = self.nodes[node].store.as_mut() else {
            return Err(Self::offline_error());
        };
        Ok(store.get(key)?.and_then(|v| decode_value(&v).map(|(seq, p)| (seq, p.to_vec()))))
    }

    /// Ensures `shard` has an online primary, promoting if necessary:
    /// the alive replica with the highest replicated WAL offset wins,
    /// ties break to the lowest node id; in-sync replicas are preferred
    /// over diverged ones.
    fn ensure_primary(&mut self, shard: usize) -> std::io::Result<usize> {
        let current = self.primaries[shard];
        if self.nodes[current].store.is_some() {
            return Ok(current);
        }
        let candidates: Vec<usize> = self
            .map
            .replicas(shard)
            .into_iter()
            .filter(|&n| self.nodes[n].store.is_some())
            .collect();
        let pick = |pool: &[usize], applied: &BTreeMap<usize, u64>| -> Option<usize> {
            pool.iter().copied().max_by(|&a, &b| {
                let (oa, ob) =
                    (applied.get(&a).copied().unwrap_or(0), applied.get(&b).copied().unwrap_or(0));
                oa.cmp(&ob).then(b.cmp(&a)) // higher offset, then lower id
            })
        };
        let in_sync: Vec<usize> =
            candidates.iter().copied().filter(|&n| !self.dirty.contains(&(shard, n))).collect();
        let promoted = pick(&in_sync, &self.applied[shard])
            .or_else(|| pick(&candidates, &self.applied[shard]))
            .ok_or_else(|| {
                std::io::Error::other(format!(
                    "cluster: shard {shard} unavailable (no live replica)"
                ))
            })?;
        self.primaries[shard] = promoted;
        self.stats.failovers += 1;
        self.event("failover", promoted, shard);
        Ok(promoted)
    }

    /// Bidirectional max-sequence merge between the shard primary and a
    /// diverged replica; on success the replica is back in sync.
    fn anti_entropy(&mut self, shard: usize, node: usize) -> std::io::Result<()> {
        if let Err(e) = self.faults.fail_io(sites::ANTI_ENTROPY) {
            debug_assert!(bdb_faults::is_injected(&e));
            return Ok(()); // pair stays diverged until the next pass
        }
        let primary = self.primaries[shard];
        let primary_state = self.shard_snapshot(shard, primary)?;
        let replica_state = self.shard_snapshot(shard, node)?;

        let mut repairs = 0u64;
        for (key, (seq, payload)) in &primary_state {
            let behind = replica_state.get(key).is_none_or(|(rs, _)| rs < seq);
            if behind {
                self.apply_direct(node, key, *seq, payload)?;
                repairs += 1;
            }
        }
        for (key, (seq, payload)) in &replica_state {
            let ahead = primary_state.get(key).is_none_or(|(ps, _)| ps < seq);
            if ahead {
                self.apply_direct(primary, key, *seq, payload)?;
                repairs += 1;
            }
        }
        // The replica now holds the primary's full prefix: same
        // replicated offset, back in the in-sync set. If either side
        // crashed mid-merge the pair stays diverged for the next pass.
        if self.nodes[node].store.is_some() && self.nodes[primary].store.is_some() {
            let primary_offset = self.applied[shard].get(&primary).copied().unwrap_or(0);
            self.applied[shard].insert(node, primary_offset);
            if self.dirty.remove(&(shard, node)) {
                self.faults.note_recovered(sites::ANTI_ENTROPY);
            }
        }
        self.stats.anti_entropy_repairs += repairs;
        if repairs > 0 {
            self.event("anti_entropy", node, shard);
        }
        self.refresh_lag_gauges();
        Ok(())
    }

    fn apply_direct(
        &mut self,
        node: usize,
        key: &[u8],
        seq: u64,
        payload: &[u8],
    ) -> std::io::Result<()> {
        let enc = encode_value(seq, payload);
        match self.apply_to_node(node, key, &enc) {
            Ok(()) => Ok(()),
            Err(e) if bdb_faults::is_injected(&e) => {
                self.kill_node(node);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}
