//! End-to-end replication tests: acknowledged writes survive forced
//! failover, quorum reads repair stale replicas, and anti-entropy
//! reconciles a rejoined node — all deterministic from the fault seed.

use bdb_cluster::{check_history, sites, Cluster, ClusterConfig, History, Op};
use bdb_faults::FaultPlan;
use bdb_kvstore::StoreConfig;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn tmproot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdb-cluster-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: u32) -> Vec<u8> {
    format!("user{i:06}").into_bytes()
}

fn val(i: u32, round: u32) -> Vec<u8> {
    format!("profile-{i}-v{round}").into_bytes()
}

fn config() -> ClusterConfig {
    ClusterConfig {
        store: StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn acked_writes_survive_primary_failover() {
    let root = tmproot("failover");
    let mut c = Cluster::open(&root, config(), FaultPlan::disabled()).unwrap();
    for i in 0..40 {
        let out = c.put(&key(i), &val(i, 0)).unwrap();
        assert!(out.acked, "no faults: every write acks");
    }

    // Kill the primary of key 0's shard; its acked state must survive
    // promotion.
    let shard = c.shard_of(&key(0));
    let old_primary = c.primary_of_shard(shard);
    let old_state = c.shard_snapshot(shard, old_primary).unwrap();
    c.kill_node(old_primary);

    for i in 0..40 {
        let (seq, payload) = c.get(&key(i)).unwrap().expect("acked write visible after kill");
        assert_eq!(payload, val(i, 0), "key {i}");
        assert!(seq >= 1);
    }
    let stats = c.stats();
    assert!(stats.failovers >= 1, "the dead primary forced at least one promotion");

    let new_primary = c.primary_of_shard(shard);
    assert_ne!(new_primary, old_primary);
    let new_state = c.shard_snapshot(shard, new_primary).unwrap();
    for (k, (seq, payload)) in &old_state {
        let (nseq, npayload) = new_state.get(k).expect("promoted primary holds every acked key");
        assert!(nseq >= seq, "promoted version at least as new");
        if nseq == seq {
            assert_eq!(npayload, payload);
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn lost_ship_is_read_repaired() {
    let root = tmproot("read-repair");
    // Lose exactly the first ship: one replica misses one record.
    let plan = FaultPlan::builder(11).io_error_nth(sites::SHIP_WRITE, 0).build();
    let mut c = Cluster::open(&root, config(), plan).unwrap();
    let out = c.put(&key(7), &val(7, 0)).unwrap();
    assert!(out.acked, "W=2 of 3 still reached with one lost ship");
    assert_eq!(c.stats().lost_ships, 1);

    // The read rotation eventually consults the stale replica and
    // repairs it in place.
    for _ in 0..c.stats().lost_ships + 4 {
        let (_, payload) = c.get(&key(7)).unwrap().unwrap();
        assert_eq!(payload, val(7, 0));
    }
    assert!(c.stats().read_repairs >= 1, "stale replica repaired by a quorum read");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn rejoined_node_is_reconciled_by_anti_entropy() {
    let root = tmproot("anti-entropy");
    let mut c = Cluster::open(&root, config(), FaultPlan::disabled()).unwrap();
    for i in 0..30 {
        assert!(c.put(&key(i), &val(i, 0)).unwrap().acked);
    }
    // Kill node 2, keep writing: every shard it replicates diverges.
    c.kill_node(2);
    for i in 0..30 {
        assert!(c.put(&key(i), &val(i, 1)).unwrap().acked, "key {i} still acks with 1 node down");
    }
    c.rejoin_node(2).unwrap();
    let stats = c.stats();
    assert!(stats.rejoins == 1);
    assert!(stats.anti_entropy_repairs > 0, "the rejoined node had diverged");

    // After reconcile the rejoined node's versions match its shard
    // primaries' exactly.
    for shard in 0..8 {
        let primary = c.primary_of_shard(shard);
        if primary == 2 {
            continue;
        }
        let primary_state = c.shard_snapshot(shard, primary).unwrap();
        let node_state = c.shard_snapshot(shard, 2).unwrap();
        // Only shards node 2 replicates hold data on it.
        if !node_state.is_empty() {
            assert_eq!(node_state, primary_state, "shard {shard} reconciled");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn node_kill_trigger_fires_from_virtual_time() {
    let root = tmproot("vt-kill");
    let plan =
        FaultPlan::builder(5).node_kill_at(sites::NODE_KILL, Duration::from_millis(10)).build();
    let mut c = Cluster::open(&root, config(), plan.clone()).unwrap();
    c.advance(Duration::from_millis(5));
    assert!(!plan.node_killed(sites::NODE_KILL), "before the deadline");
    c.advance(Duration::from_millis(12));
    assert!(plan.node_killed(sites::NODE_KILL), "due after advancing past it");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn traced_writes_chain_and_feed_node_metrics() {
    let root = tmproot("traced");
    // Lose exactly the second ship so one replica diverges mid-run.
    let plan = FaultPlan::builder(5).io_error_nth(sites::SHIP_WRITE, 1).build();
    let mut c = Cluster::open(&root, config(), plan).unwrap();
    for i in 0..20u32 {
        c.advance(Duration::from_micros(u64::from(i + 1) * 500));
        let out = c.put_traced(&key(i), &val(i, 0), 0x1000 + u64::from(i)).unwrap();
        assert!(out.acked, "W=2 of 3 reached even with one lost ship");
    }

    // Every write's span chain (route → WAL append → ship → quorum
    // ack) reconstructs from the flat stream.
    let spans = c.take_trace_spans();
    let chains = bdb_tsdb::reconstruct_writes(&spans);
    assert_eq!(chains.len(), 20);
    for ch in &chains {
        assert!(ch.complete, "chain {} causally complete", ch.trace);
        assert!(ch.shard >= 0);
        assert!(ch.acked);
        assert!(ch.quorum_ack_us.is_some());
        assert!(ch.spans.iter().any(|s| s.name == "cluster.wal_append"));
        assert!(ch.spans.iter().any(|s| s.name == "cluster.ship"));
    }
    assert!(c.take_trace_spans().is_empty(), "drained");

    // The lost ship surfaces in the per-node metrics and as a nonzero
    // replication-lag gauge on the diverged replica...
    assert_eq!(c.stats().lost_ships, 1);
    let nodes = 0..config().nodes;
    let lost: u64 =
        nodes.clone().map(|n| c.node_metrics(n).counter("cluster.ships_lost_total").get()).sum();
    assert_eq!(lost, 1);
    let max_lag = nodes
        .clone()
        .map(|n| c.node_metrics(n).gauge("cluster.replication_lag_bytes").get())
        .max()
        .unwrap();
    assert!(max_lag > 0, "the diverged replica lags the primary");
    let acks: u64 = nodes
        .clone()
        .map(|n| {
            c.node_metrics(n)
                .histogram_snapshots()
                .iter()
                .find(|(name, _)| name == "cluster.quorum_ack_us")
                .map_or(0, |(_, h)| h.count())
        })
        .sum();
    assert_eq!(acks, c.stats().acked_writes, "one ack latency recorded per acked write");

    // ...and anti-entropy repairs it back to zero lag everywhere.
    c.reconcile_all().unwrap();
    let max_lag = nodes
        .map(|n| c.node_metrics(n).gauge("cluster.replication_lag_bytes").get())
        .max()
        .unwrap();
    assert_eq!(max_lag, 0, "reconciled replicas no longer lag");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn history_checker_accepts_a_faulty_but_correct_run() {
    let root = tmproot("history");
    let plan = FaultPlan::builder(3).io_error_nth(sites::SHIP_WRITE, 2).build();
    let mut c = Cluster::open(&root, config(), plan).unwrap();
    let mut h = History::new();
    let mut t = 0u64;
    for round in 0..3u32 {
        for i in 0..10 {
            t += 1000;
            let out = c.put(&key(i), &val(i, round)).unwrap();
            h.record(t, Op::Put { key: key(i), seq: out.seq, acked: out.acked });
        }
        for i in 0..10 {
            t += 1000;
            let got = c.get(&key(i)).unwrap();
            h.record(t, Op::Get { key: key(i), observed: got.map(|(s, _)| s) });
        }
    }
    let report = check_history(&h);
    assert!(report.ok, "violations: {:?}", report.violations);
    assert_eq!(report.reads, 30);
    assert_eq!(report.writes, 30);
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seeded mini-campaign (probabilistic ship loss and WAL
    /// tears, a forced primary kill at an arbitrary point), the
    /// promoted primary's state covers the old primary's acknowledged
    /// state key-by-key: every acknowledged version is present at an
    /// equal-or-newer sequence number, and the full operation history
    /// passes the quorum-read checker.
    #[test]
    fn promoted_primary_covers_acknowledged_state(
        seed in any::<u64>(),
        kill_after in 5u32..35,
    ) {
        let root = std::env::temp_dir().join(format!(
            "bdb-cluster-prop-{}-{seed:x}-{kill_after}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let plan = FaultPlan::builder(seed)
            .io_error_p(sites::SHIP_WRITE, 0.05)
            .build();
        let mut c = Cluster::open(&root, config(), plan).unwrap();
        let mut h = History::new();
        let mut acked: std::collections::BTreeMap<Vec<u8>, u64> = Default::default();
        let mut killed = false;
        let mut t = 0u64;
        for i in 0..40u32 {
            t += 1000;
            let k = key(i % 12);
            let out = c.put(&k, &val(i % 12, i)).unwrap();
            h.record(t, Op::Put { key: k.clone(), seq: out.seq, acked: out.acked });
            if out.acked {
                acked.insert(k.clone(), out.seq);
            }
            if i == kill_after && !killed {
                killed = true;
                // Snapshot the dying primary's shard, kill it, and
                // compare against whoever gets promoted.
                let shard = c.shard_of(&k);
                let old_primary = c.primary_of_shard(shard);
                let old_state = c.shard_snapshot(shard, old_primary).unwrap();
                c.kill_node(old_primary);
                t += 1000;
                let got = c.get(&k).unwrap();
                h.record(t, Op::Get { key: k.clone(), observed: got.map(|(s, _)| s) });
                let new_primary = c.primary_of_shard(shard);
                prop_assert!(new_primary != old_primary, "a replica was promoted");
                let new_state = c.shard_snapshot(shard, new_primary).unwrap();
                for (kk, seq) in &acked {
                    if c.shard_of(kk) != shard { continue; }
                    let old_seq = old_state.get(kk).map(|(s, _)| *s).unwrap_or(0);
                    if old_seq == 0 { continue; }
                    let new_seq = new_state.get(kk).map(|(s, _)| *s).unwrap_or(0);
                    prop_assert!(
                        new_seq >= *seq.min(&old_seq),
                        "promoted primary lost acked key {:?}: old seq {}, new seq {}, acked {}",
                        String::from_utf8_lossy(kk), old_seq, new_seq, seq
                    );
                }
                let _ = c.rejoin_node(old_primary);
            }
        }
        for i in 0..12u32 {
            t += 1000;
            let k = key(i);
            let got = c.get(&k).unwrap();
            h.record(t, Op::Get { key: k.clone(), observed: got.map(|(s, _)| s) });
        }
        let report = check_history(&h);
        prop_assert!(report.ok, "history violations: {:?}", report.violations);
        std::fs::remove_dir_all(&root).ok();
    }
}
