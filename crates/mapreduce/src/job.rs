//! The user-facing job abstraction: map, combine, reduce.

use crate::codec::Datum;
use bdb_archsim::Probe;
use std::hash::Hash;

/// Collects `(key, value)` pairs emitted by a map function, with byte
/// accounting for spill decisions and shuffle statistics.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
    bytes: usize,
}

impl<K: Datum, V: Datum> Emitter<K, V> {
    /// An empty emitter.
    pub fn new() -> Self {
        Self { pairs: Vec::new(), bytes: 0 }
    }

    /// Emits one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += key.size_hint() + value.size_hint();
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Approximate serialized size of everything emitted.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drains the emitted pairs, resetting the emitter.
    pub fn take(&mut self) -> Vec<(K, V)> {
        self.bytes = 0;
        std::mem::take(&mut self.pairs)
    }
}

impl<K: Datum, V: Datum> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A MapReduce job: input/intermediate/output types plus the three user
/// functions. `combine` defaults to the identity (no map-side
/// aggregation).
///
/// Map and reduce receive a [`Probe`] so instrumented kernels can report
/// their per-record loads, stores and arithmetic; pass-through kernels
/// can ignore it.
pub trait Job: Sync {
    /// One input record.
    type Input: Send + Sync;
    /// Intermediate key; must be totally ordered for the sort phase.
    type Key: Datum + Ord + Hash;
    /// Intermediate value.
    type Value: Datum;
    /// One output record.
    type Output: Send;

    /// Serialized size of one input record, used by traced runs to model
    /// the input-stream traffic. Defaults to the in-memory size; jobs
    /// over variable-length records should override it.
    fn input_size(&self, input: &Self::Input) -> usize {
        std::mem::size_of_val(input)
    }

    /// Transforms one input record into zero or more intermediate pairs.
    fn map<P: Probe + ?Sized>(
        &self,
        input: &Self::Input,
        emit: &mut Emitter<Self::Key, Self::Value>,
        probe: &mut P,
    );

    /// Optional map-side pre-aggregation over the values of one key
    /// within one sorted buffer. The default keeps values unchanged.
    fn combine(&self, key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        let _ = key;
        values
    }

    /// Folds one key group into output records.
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: Self::Key,
        values: Vec<Self::Value>,
        out: &mut Vec<Self::Output>,
        probe: &mut P,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::NullProbe;

    struct Identity;
    impl Job for Identity {
        type Input = u64;
        type Key = u64;
        type Value = ();
        type Output = u64;
        fn map<P: Probe + ?Sized>(&self, input: &u64, emit: &mut Emitter<u64, ()>, _p: &mut P) {
            emit.emit(*input, ());
        }
        fn reduce<P: Probe + ?Sized>(&self, key: u64, _v: Vec<()>, out: &mut Vec<u64>, _p: &mut P) {
            out.push(key);
        }
    }

    #[test]
    fn emitter_accounting() {
        let mut e: Emitter<String, u64> = Emitter::new();
        assert!(e.is_empty());
        e.emit("ab".to_owned(), 7);
        assert_eq!(e.len(), 1);
        assert_eq!(e.bytes(), 4 + 2 + 8);
        let drained = e.take();
        assert_eq!(drained.len(), 1);
        assert!(e.is_empty());
        assert_eq!(e.bytes(), 0);
    }

    #[test]
    fn default_combine_is_identity() {
        let j = Identity;
        let vals = vec![(), (), ()];
        assert_eq!(j.combine(&1, vals.clone()).len(), vals.len());
    }

    #[test]
    fn job_functions_callable() {
        let j = Identity;
        let mut e = Emitter::new();
        j.map(&5, &mut e, &mut NullProbe);
        let mut out = Vec::new();
        j.reduce(5, vec![()], &mut out, &mut NullProbe);
        assert_eq!(out, vec![5]);
    }
}
