//! Framework-overhead model for traced (characterized) runs.
//!
//! When a MapReduce job executes on Hadoop, every record passes through
//! task runtime, serialization, buffer management and memory-manager
//! layers whose combined instruction footprint dwarfs the user kernel —
//! the paper identifies this "deep software stack" as the root cause of
//! the high L1I-cache and ITLB miss rates of big-data workloads. Each
//! layer has a small hot fast path (cache-resident) and a large cold
//! footprint (dispatch misses, allocation slow paths, GC) touched every
//! few records; the cold fetch rate is calibrated so Hadoop-class
//! workloads land near the paper's L1I MPKI ≈ 20–30 band.

use bdb_archsim::layout::regions;
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};

/// The modeled Hadoop-like runtime: code footprint plus buffer space.
#[derive(Debug, Clone)]
pub struct FrameworkModel {
    stack: SoftwareStack,
    /// Base of the modeled map-side sort buffer.
    buffer_base: u64,
    /// Size of the modeled sort buffer (ring). Hadoop sort buffers are
    /// hundreds of MB — far beyond any LLC — so emits mostly miss.
    buffer_bytes: u64,
    /// Running write cursor into the sort buffer.
    cursor: u64,
    /// Base of the modeled input stream (HDFS blocks arriving).
    input_base: u64,
    /// Wrap point for the input stream (256 MiB — effectively cold).
    input_span: u64,
    /// Monotonic read cursor: every input record is fresh memory.
    input_cursor: u64,
    /// Monotonic per-event seed for function selection.
    event: u64,
    /// Monotonic read cursor over merged shuffle runs (reduce input).
    shuffle_cursor: u64,
}

impl FrameworkModel {
    /// Builds the standard model: ~0.9 MiB of framework code across four
    /// layers and a 4 MiB sort buffer.
    pub fn new() -> Self {
        let mut asp = AddressSpace::with_bases(regions::MAPREDUCE_HEAP, regions::MAPREDUCE_CODE);
        let stack = SoftwareStack::builder("mapreduce-framework")
            // layer: hot_count x hot_bytes, cold_count x cold_bytes,
            //        hot_calls per record, cold every N records
            .layer(&mut asp, "task-runtime", 4, 512, 96, 4096, 2, 8)
            .layer(&mut asp, "serializer", 4, 512, 48, 4096, 2, 12)
            .layer(&mut asp, "buffer-io", 2, 512, 32, 4096, 1, 16)
            .layer(&mut asp, "memory-manager", 2, 512, 48, 4096, 1, 24)
            .build();
        let buffer_bytes = 48 << 20;
        let buffer_base = asp.alloc(buffer_bytes, "sort-buffer");
        let input_span = 256 << 20;
        let input_base = asp.alloc(input_span, "input-stream");
        Self {
            stack,
            buffer_base,
            buffer_bytes,
            cursor: 0,
            input_base,
            input_span,
            input_cursor: 0,
            event: 0,
            shuffle_cursor: 0,
        }
    }

    /// Static code footprint of the modeled framework in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// Pre-touches the framework code (JIT warm-up / class loading).
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
    }

    fn next_event(&mut self) -> u64 {
        self.event = self.event.wrapping_add(1);
        self.event
    }

    /// One map input record of `bytes` entering the framework.
    ///
    /// Input records are *fresh* memory (HDFS blocks stream in), so this
    /// is the compulsory DRAM traffic that gives big-data workloads
    /// their low operation intensity (paper Figure 5).
    pub fn on_map_record<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        let e = self.next_event();
        self.stack.invoke(probe, e);
        let touched = (bytes as u64).clamp(16, 4096);
        probe.load(self.input_base + self.input_cursor % self.input_span, touched as u32);
        self.input_cursor += touched;
        probe.int_ops(8 + touched / 8);
    }

    /// One intermediate pair of `bytes` appended to the sort buffer.
    pub fn on_emit<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        let e = self.next_event();
        self.stack.invoke(probe, e.wrapping_mul(3));
        let touched = (bytes as u64).clamp(8, 1024);
        probe.store(self.buffer_base + self.cursor % self.buffer_bytes, touched as u32);
        self.cursor += touched;
        probe.int_ops(4 + touched / 8);
    }

    /// A sort/spill of `pairs` buffered pairs totalling `bytes`.
    pub fn on_spill<P: Probe + ?Sized>(&mut self, probe: &mut P, pairs: usize, bytes: usize) {
        // Sorting touches the whole buffer ~log(n) times.
        let passes = (pairs.max(2) as f64).log2().ceil() as u64;
        let span = (bytes as u64).min(self.buffer_bytes);
        for pass in 0..passes.min(8) {
            let stride = 256;
            let mut off = 0;
            while off < span {
                probe.load(self.buffer_base + (off + pass * 64) % self.buffer_bytes, 64);
                probe.int_ops(16);
                probe.branch(off % 512 == 0);
                off += stride;
            }
        }
        let e = self.next_event();
        self.stack.invoke(probe, e);
    }

    /// One key group of `values` values entering reduce. The group's
    /// values stream in from merged (on-disk) shuffle runs — cold
    /// memory, like the map-side input.
    pub fn on_reduce_group<P: Probe + ?Sized>(&mut self, probe: &mut P, values: usize) {
        let e = self.next_event();
        self.stack.invoke(probe, e.wrapping_mul(7));
        let bytes = ((values as u64) * 16).clamp(16, 4096);
        probe.load(self.input_base + self.shuffle_cursor % self.input_span, bytes as u32);
        self.shuffle_cursor += bytes;
        probe.int_ops(6 + values as u64);
    }
}

impl Default for FrameworkModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};

    #[test]
    fn footprint_exceeds_l1i() {
        let fw = FrameworkModel::new();
        // The point of the model: framework code alone is far bigger than
        // a 32 KiB L1I cache.
        assert!(fw.code_footprint() > 512 * 1024, "footprint {}", fw.code_footprint());
    }

    #[test]
    fn record_pass_emits_framework_instructions() {
        let mut fw = FrameworkModel::new();
        let mut p = CountingProbe::default();
        fw.on_map_record(&mut p, 100);
        fw.on_emit(&mut p, 20);
        fw.on_reduce_group(&mut p, 3);
        let mix = p.mix();
        assert!(mix.other > 0, "framework instructions counted");
        assert!(mix.loads >= 1 && mix.stores >= 1);
    }

    #[test]
    fn deep_stack_l1i_mpki_lands_in_paper_band() {
        let mut fw = FrameworkModel::new();
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        // Warm up, then measure steady state (ramp-up protocol).
        for i in 0..2000u64 {
            fw.on_map_record(&mut p, 64);
            if i % 4 == 0 {
                fw.on_emit(&mut p, 16);
            }
        }
        p.reset_stats();
        for i in 0..10_000u64 {
            fw.on_map_record(&mut p, 64);
            if i % 4 == 0 {
                fw.on_emit(&mut p, 16);
            }
        }
        let r = p.finish();
        let l1i = r.l1i_mpki();
        assert!(
            l1i > 5.0 && l1i < 80.0,
            "Hadoop-class L1I MPKI should land near the paper's band, got {l1i}"
        );
        let itlb = r.itlb_mpki();
        assert!(itlb > 0.05 && itlb < 5.0, "ITLB MPKI {itlb}");
    }

    #[test]
    fn spill_scales_with_pairs() {
        let mut fw = FrameworkModel::new();
        let mut small = CountingProbe::default();
        fw.on_spill(&mut small, 100, 10_000);
        let mut fw2 = FrameworkModel::new();
        let mut large = CountingProbe::default();
        fw2.on_spill(&mut large, 10_000, 1_000_000);
        assert!(large.mix().total() > small.mix().total() * 5);
    }
}
