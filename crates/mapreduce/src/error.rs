//! Structured job failure.
//!
//! Hadoop surfaces a task that fails more than `mapred.map.max.attempts`
//! times as a job failure with the task and attempt identified; this is
//! the analogue. The engine's scheduler converts task panics and I/O
//! errors into [`JobError`] only after the retry budget is exhausted —
//! transient failures are retried and reported in
//! [`crate::JobStats::map_retries`] / [`crate::JobStats::reduce_retries`]
//! instead.

use std::fmt;

/// Why a job could not complete: some task exhausted its retry budget.
#[derive(Debug)]
pub enum JobError {
    /// A task attempt panicked (injected fault or user map/reduce code)
    /// and the task had no attempts left.
    TaskPanicked {
        /// Map task or reduce partition index within its phase.
        task_id: usize,
        /// 0-based attempt number of the final, failing attempt.
        attempt: u32,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A task attempt failed on I/O (spill write or read) and the task
    /// had no attempts left.
    TaskIo {
        /// Map task or reduce partition index within its phase.
        task_id: usize,
        /// 0-based attempt number of the final, failing attempt.
        attempt: u32,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TaskPanicked { task_id, attempt, message } => {
                write!(f, "task {task_id} panicked on attempt {attempt}: {message}")
            }
            Self::TaskIo { task_id, attempt, source } => {
                write!(f, "task {task_id} failed on attempt {attempt}: {source}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::TaskPanicked { .. } => None,
            Self::TaskIo { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_task_and_attempt() {
        let e = JobError::TaskPanicked { task_id: 3, attempt: 2, message: "boom".into() };
        assert_eq!(e.to_string(), "task 3 panicked on attempt 2: boom");
        let e =
            JobError::TaskIo { task_id: 1, attempt: 0, source: std::io::Error::other("disk gone") };
        assert!(e.to_string().contains("disk gone"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
