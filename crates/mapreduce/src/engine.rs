//! The execution engine: parallel native runs and traced runs.

use crate::codec::Datum;
use crate::job::{Emitter, Job};
use crate::spill::{merge_runs, SpillFile};
use crate::trace::FrameworkModel;
use bdb_archsim::{NullProbe, Probe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Counters and timings for one executed job.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Input records consumed by map.
    pub map_records: u64,
    /// Intermediate pairs produced by map (before combine).
    pub map_output_pairs: u64,
    /// Intermediate pairs after map-side combine.
    pub combined_pairs: u64,
    /// Bytes of intermediate data moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Number of spill files written.
    pub spills: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Distinct key groups reduced.
    pub reduce_groups: u64,
    /// Output records produced.
    pub output_records: u64,
    /// Wall-clock time in the map phase.
    pub map_time: Duration,
    /// Wall-clock time in shuffle + reduce.
    pub reduce_time: Duration,
}

impl JobStats {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.reduce_time
    }

    /// Data processed per second — the paper's DPS metric for analytics
    /// workloads (input bytes / total processing time).
    pub fn dps(&self, input_bytes: u64) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            input_bytes as f64 / secs
        }
    }
}

/// Result of one map task, per partition.
struct MapTaskResult<K, V> {
    /// In-memory sorted runs, indexed by partition.
    memory_runs: Vec<Vec<(K, V)>>,
    /// Spilled sorted runs, indexed by partition.
    spill_runs: Vec<Vec<SpillFile>>,
    records: u64,
    output_pairs: u64,
    combined_pairs: u64,
    spills: u64,
    spill_bytes: u64,
}

/// The MapReduce engine. Configure with [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    reducers: usize,
    map_buffer_bytes: usize,
    spill_dir: PathBuf,
}

/// Builder for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    reducers: usize,
    map_buffer_bytes: usize,
    spill_dir: PathBuf,
}

impl EngineBuilder {
    /// Number of parallel map/reduce worker threads (default: available
    /// parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Number of reduce partitions (default: threads).
    pub fn reducers(mut self, n: usize) -> Self {
        self.reducers = n.max(1);
        self
    }

    /// Map-side sort-buffer budget in bytes per task; when a task's
    /// buffered intermediate data exceeds this, it spills to disk
    /// (default: 64 MiB, large enough that small jobs never spill).
    pub fn map_buffer_bytes(mut self, bytes: usize) -> Self {
        self.map_buffer_bytes = bytes.max(1024);
        self
    }

    /// Directory for spill files (default: the system temp dir).
    pub fn spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = dir;
        self
    }

    /// Finishes the engine.
    pub fn build(self) -> Engine {
        Engine {
            threads: self.threads,
            reducers: if self.reducers == 0 { self.threads } else { self.reducers },
            map_buffer_bytes: self.map_buffer_bytes,
            spill_dir: self.spill_dir,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        EngineBuilder {
            threads,
            reducers: 0,
            map_buffer_bytes: 64 << 20,
            spill_dir: std::env::temp_dir(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of reduce partitions.
    pub fn reducers(&self) -> usize {
        self.reducers
    }

    /// Runs `job` over `inputs` in parallel at native speed (no
    /// instrumentation). Returns outputs (ordered by partition, then by
    /// key) and statistics.
    pub fn run<J: Job>(&self, job: &J, inputs: &[J::Input]) -> (Vec<J::Output>, JobStats) {
        let mut stats = JobStats::default();
        let map_start = Instant::now();
        let chunk = inputs.len().div_ceil(self.threads).max(1);
        let task_results: Vec<MapTaskResult<J::Key, J::Value>> = std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .enumerate()
                .map(|(task_id, records)| {
                    let engine = &*self;
                    s.spawn(move || {
                        let mut probe = NullProbe;
                        engine.map_task(job, records, task_id, &mut probe, &mut None)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("map task panicked")).collect()
        });
        for r in &task_results {
            stats.map_records += r.records;
            stats.map_output_pairs += r.output_pairs;
            stats.combined_pairs += r.combined_pairs;
            stats.spills += r.spills;
            stats.spill_bytes += r.spill_bytes;
        }
        stats.map_time = map_start.elapsed();

        let reduce_start = Instant::now();
        // Regroup runs by partition.
        let mut partitions: Vec<(Vec<Vec<(J::Key, J::Value)>>, Vec<SpillFile>)> =
            (0..self.reducers).map(|_| (Vec::new(), Vec::new())).collect();
        for task in task_results {
            for (p, run) in task.memory_runs.into_iter().enumerate() {
                if !run.is_empty() {
                    partitions[p].0.push(run);
                }
            }
            for (p, spills) in task.spill_runs.into_iter().enumerate() {
                partitions[p].1.extend(spills);
            }
        }
        let reduced: Vec<(Vec<J::Output>, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|(runs, spills)| {
                    let engine = &*self;
                    s.spawn(move || {
                        let mut probe = NullProbe;
                        engine.reduce_partition(job, runs, spills, &mut probe, &mut None)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("reduce task panicked")).collect()
        });
        let mut outputs = Vec::new();
        for (out, groups, bytes) in reduced {
            stats.reduce_groups += groups;
            stats.shuffle_bytes += bytes;
            stats.output_records += out.len() as u64;
            outputs.extend(out);
        }
        stats.reduce_time = reduce_start.elapsed();
        (outputs, stats)
    }

    /// Runs `job` single-threaded against an instrumentation probe,
    /// additionally modeling the framework's own code footprint and
    /// buffer traffic via a fresh [`FrameworkModel`].
    pub fn run_traced<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        inputs: &[J::Input],
        probe: &mut P,
    ) -> (Vec<J::Output>, JobStats) {
        let mut fw = FrameworkModel::new();
        self.run_traced_with(job, inputs, probe, &mut fw)
    }

    /// [`Engine::run_traced`] with a caller-owned framework model, so
    /// warm-up and measured runs share cursors and code addresses (the
    /// input stream stays cold across the ramp-up boundary).
    pub fn run_traced_with<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        inputs: &[J::Input],
        probe: &mut P,
        fw: &mut FrameworkModel,
    ) -> (Vec<J::Output>, JobStats) {
        let mut stats = JobStats::default();
        let caller_fw = fw;
        let mut fw = Some(std::mem::take(caller_fw));
        let map_start = Instant::now();
        let task = self.map_task(job, inputs, 0, probe, &mut fw);
        stats.map_records = task.records;
        stats.map_output_pairs = task.output_pairs;
        stats.combined_pairs = task.combined_pairs;
        stats.spills = task.spills;
        stats.spill_bytes = task.spill_bytes;
        stats.map_time = map_start.elapsed();

        let reduce_start = Instant::now();
        let mut outputs = Vec::new();
        for (p, run) in task.memory_runs.into_iter().enumerate() {
            let runs = if run.is_empty() { Vec::new() } else { vec![run] };
            let spills = task.spill_runs.get(p).map_or(0, Vec::len);
            let _ = spills;
            let (out, groups, bytes) = self.reduce_partition(
                job,
                runs,
                Vec::new(), // spills already merged below
                probe,
                &mut fw,
            );
            stats.reduce_groups += groups;
            stats.shuffle_bytes += bytes;
            outputs.extend(out);
        }
        // Traced runs use a buffer large enough not to spill in practice;
        // if they did spill, fold those runs in too.
        for spills in task.spill_runs {
            if spills.is_empty() {
                continue;
            }
            let (out, groups, bytes) =
                self.reduce_partition(job, Vec::new(), spills, probe, &mut fw);
            stats.reduce_groups += groups;
            stats.shuffle_bytes += bytes;
            outputs.extend(out);
        }
        stats.output_records = outputs.len() as u64;
        stats.reduce_time = reduce_start.elapsed();
        *caller_fw = fw.take().expect("framework model present throughout");
        (outputs, stats)
    }

    /// One map task over a slice of records.
    fn map_task<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        records: &[J::Input],
        task_id: usize,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) -> MapTaskResult<J::Key, J::Value> {
        let mut result = MapTaskResult {
            memory_runs: (0..self.reducers).map(|_| Vec::new()).collect(),
            spill_runs: (0..self.reducers).map(|_| Vec::new()).collect(),
            records: 0,
            output_pairs: 0,
            combined_pairs: 0,
            spills: 0,
            spill_bytes: 0,
        };
        let mut buffers: Vec<Vec<(J::Key, J::Value)>> =
            (0..self.reducers).map(|_| Vec::new()).collect();
        let mut buffered_bytes = 0usize;
        let mut emitter = Emitter::new();
        let mut spill_seq = 0usize;

        for record in records {
            result.records += 1;
            if let Some(fw) = fw.as_mut() {
                fw.on_map_record(probe, job.input_size(record));
            }
            job.map(record, &mut emitter, probe);
            buffered_bytes += emitter.bytes();
            for (k, v) in emitter.take() {
                if let Some(fw) = fw.as_mut() {
                    fw.on_emit(probe, k.size_hint() + v.size_hint());
                }
                result.output_pairs += 1;
                let p = partition_of(&k, self.reducers);
                buffers[p].push((k, v));
            }
            if buffered_bytes > self.map_buffer_bytes {
                self.spill(job, &mut buffers, &mut result, task_id, &mut spill_seq, probe, fw);
                buffered_bytes = 0;
            }
        }
        // Final in-memory runs: sort + combine, keep in memory.
        for (p, buf) in buffers.into_iter().enumerate() {
            let run = sort_and_combine(job, buf);
            result.combined_pairs += run.len() as u64;
            result.memory_runs[p] = run;
        }
        result
    }

    /// Sorts, combines and spills all current buffers to disk.
    #[allow(clippy::too_many_arguments)]
    fn spill<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        buffers: &mut [Vec<(J::Key, J::Value)>],
        result: &mut MapTaskResult<J::Key, J::Value>,
        task_id: usize,
        spill_seq: &mut usize,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) {
        for (p, buf) in buffers.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let pairs = std::mem::take(buf);
            let n = pairs.len();
            let run = sort_and_combine(job, pairs);
            result.combined_pairs += run.len() as u64;
            if let Some(fw) = fw.as_mut() {
                let bytes: usize =
                    run.iter().map(|(k, v)| k.size_hint() + v.size_hint()).sum();
                fw.on_spill(probe, n, bytes);
            }
            let file = SpillFile::write(&self.spill_dir, task_id, *spill_seq, &run)
                .expect("spill write failed");
            *spill_seq += 1;
            result.spills += 1;
            result.spill_bytes += file.bytes;
            result.spill_runs[p].push(file);
        }
    }

    /// Shuffle-merge and reduce one partition.
    fn reduce_partition<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        mut runs: Vec<Vec<(J::Key, J::Value)>>,
        spills: Vec<SpillFile>,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) -> (Vec<J::Output>, u64, u64) {
        let mut shuffle_bytes = 0u64;
        for spill in &spills {
            shuffle_bytes += spill.bytes;
            runs.push(spill.read().expect("spill read failed"));
        }
        for run in &runs {
            shuffle_bytes +=
                run.iter().map(|(k, v)| (k.size_hint() + v.size_hint()) as u64).sum::<u64>();
        }
        let merged = merge_runs(runs);
        let mut out = Vec::new();
        let mut groups = 0u64;
        let mut iter = merged.into_iter().peekable();
        while let Some((key, value)) = iter.next() {
            let mut values = vec![value];
            while iter.peek().is_some_and(|(k, _)| *k == key) {
                values.push(iter.next().expect("peeked").1);
            }
            groups += 1;
            if let Some(fw) = fw.as_mut() {
                fw.on_reduce_group(probe, values.len());
            }
            job.reduce(key, values, &mut out, probe);
        }
        (out, groups, shuffle_bytes)
    }
}

/// Deterministic hash partitioner (FNV-1a over the encoded key).
fn partition_of<K: crate::codec::Datum>(key: &K, reducers: usize) -> usize {
    let mut buf = Vec::with_capacity(16);
    key.encode(&mut buf);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in buf {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % reducers as u64) as usize
}

/// Sorts a buffer by key and applies the job's combiner per key group.
fn sort_and_combine<J: Job>(
    job: &J,
    mut pairs: Vec<(J::Key, J::Value)>,
) -> Vec<(J::Key, J::Value)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(pairs.len());
    let mut iter = pairs.into_iter().peekable();
    while let Some((key, value)) = iter.next() {
        let mut values = vec![value];
        while iter.peek().is_some_and(|(k, _)| *k == key) {
            values.push(iter.next().expect("peeked").1);
        }
        let combined = job.combine(&key, values);
        for v in combined {
            out.push((key.clone(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};

    /// WordCount with a summing combiner.
    struct WordCount;
    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);
        fn map<P: Probe + ?Sized>(
            &self,
            line: &String,
            emit: &mut Emitter<String, u64>,
            _p: &mut P,
        ) {
            for w in line.split_whitespace() {
                emit.emit(w.to_owned(), 1);
            }
        }
        fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _p: &mut P,
        ) {
            out.push((key, values.into_iter().sum()));
        }
    }

    /// Identity sort job over u64 keys.
    struct SortJob;
    impl Job for SortJob {
        type Input = u64;
        type Key = u64;
        type Value = ();
        type Output = u64;
        fn map<P: Probe + ?Sized>(&self, x: &u64, emit: &mut Emitter<u64, ()>, _p: &mut P) {
            emit.emit(*x, ());
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            key: u64,
            values: Vec<()>,
            out: &mut Vec<u64>,
            _p: &mut P,
        ) {
            for _ in values {
                out.push(key);
            }
        }
    }

    fn lines() -> Vec<String> {
        vec![
            "the quick brown fox".to_owned(),
            "the lazy dog".to_owned(),
            "the quick dog".to_owned(),
        ]
    }

    #[test]
    fn wordcount_matches_naive() {
        let engine = Engine::builder().threads(3).reducers(2).build();
        let (mut out, stats) = engine.run(&WordCount, &lines());
        out.sort();
        let expect = vec![
            ("brown".to_owned(), 1),
            ("dog".to_owned(), 2),
            ("fox".to_owned(), 1),
            ("lazy".to_owned(), 1),
            ("quick".to_owned(), 2),
            ("the".to_owned(), 3),
        ];
        assert_eq!(out, expect);
        assert_eq!(stats.map_records, 3);
        assert_eq!(stats.map_output_pairs, 10);
        assert_eq!(stats.reduce_groups, 6);
        assert_eq!(stats.output_records, 6);
    }

    #[test]
    fn sort_outputs_sorted_within_partition_and_complete() {
        let engine = Engine::builder().threads(4).reducers(1).build();
        let inputs: Vec<u64> = (0..10_000).map(|i| (i * 2_654_435_761u64) % 100_000).collect();
        let (out, stats) = engine.run(&SortJob, &inputs);
        assert_eq!(out.len(), inputs.len());
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "single partition ⇒ totally sorted");
        assert_eq!(stats.map_records, 10_000);
        let mut expect = inputs.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn spilling_engine_still_correct() {
        // Tiny buffer forces many spills.
        let engine = Engine::builder().threads(2).reducers(2).map_buffer_bytes(1024).build();
        let inputs: Vec<u64> = (0..5000).rev().collect();
        let (mut out, stats) = engine.run(&SortJob, &inputs);
        assert!(stats.spills > 0, "should have spilled");
        assert!(stats.spill_bytes > 0);
        out.sort_unstable();
        let expect: Vec<u64> = (0..5000).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let engine_c = Engine::builder().threads(1).reducers(1).build();
        let input: Vec<String> = vec!["a a a a a a a a".to_owned(); 100];
        let (_, with_combiner) = engine_c.run(&WordCount, &input);
        // combined_pairs: one per (buffer, key) — here 1; without combine
        // it would equal map_output_pairs (800).
        assert_eq!(with_combiner.map_output_pairs, 800);
        assert_eq!(with_combiner.combined_pairs, 1);
        assert!(with_combiner.shuffle_bytes < 100);
    }

    #[test]
    fn traced_run_matches_native_output() {
        let engine = Engine::builder().reducers(2).build();
        let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
        let (mut traced, _) = engine.run_traced(&WordCount, &lines(), &mut probe);
        let (mut native, _) = engine.run(&WordCount, &lines());
        traced.sort();
        native.sort();
        assert_eq!(traced, native);
        let report = probe.finish();
        assert!(report.mix.other > 0, "framework instructions recorded");
        assert!(report.l1i.stats.accesses > 0);
    }

    #[test]
    fn traced_run_counts_framework_events() {
        let engine = Engine::builder().reducers(1).build();
        let mut probe = CountingProbe::default();
        let inputs: Vec<u64> = (0..100).collect();
        let (_, stats) = engine.run_traced(&SortJob, &inputs, &mut probe);
        assert_eq!(stats.map_records, 100);
        assert!(probe.mix().total() > 100, "at least one instruction per record");
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = Engine::default();
        let (out, stats) = engine.run(&SortJob, &[]);
        assert!(out.is_empty());
        assert_eq!(stats.map_records, 0);
        assert_eq!(stats.reduce_groups, 0);
    }

    #[test]
    fn dps_metric() {
        let stats = JobStats {
            map_time: Duration::from_millis(500),
            reduce_time: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((stats.dps(1_000_000) - 1_000_000.0).abs() < 1.0);
        assert_eq!(JobStats::default().dps(100), 0.0);
    }

    #[test]
    fn partitioner_is_deterministic_and_bounded() {
        for k in 0u64..1000 {
            let p = partition_of(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&k, 7));
        }
    }
}
