//! The execution engine: parallel native runs and traced runs.
//!
//! The parallel path executes tasks through a small Hadoop-style
//! scheduler: failed attempts (panics, spill I/O errors) are retried up
//! to a bounded attempt budget with exponential backoff accounted in
//! *virtual* time, and straggling map tasks get a speculative second
//! attempt — the first copy to finish wins, exactly as in Hadoop's
//! speculative execution. Fault-injection sites (see [`crate::sites`])
//! are consulted only on this path; traced runs stay fault-free.

use crate::codec::Datum;
use crate::error::JobError;
use crate::job::{Emitter, Job};
use crate::spill::{merge_run_slices, SpillFile};
use crate::trace::FrameworkModel;
use bdb_archsim::{CounterSnapshot, NullProbe, Probe};
use bdb_faults::FaultPlan;
use bdb_profile::{critical_path, CriticalPathSummary, SpanForest};
use bdb_telemetry::{span, MetricsRegistry, SpanGuard, SpanRecorder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters and timings for one executed job.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Input records consumed by map.
    pub map_records: u64,
    /// Intermediate pairs produced by map (before combine).
    pub map_output_pairs: u64,
    /// Intermediate pairs after map-side combine.
    pub combined_pairs: u64,
    /// Bytes of intermediate data moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Number of spill files written.
    pub spills: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Distinct key groups reduced.
    pub reduce_groups: u64,
    /// Output records produced.
    pub output_records: u64,
    /// Wall-clock time in the map phase.
    pub map_time: Duration,
    /// Wall-clock time in shuffle + reduce.
    pub reduce_time: Duration,
    /// Map-side sort + combine time, summed across tasks (within
    /// `map_time`; parallel tasks may sum past wall-clock).
    pub sort_time: Duration,
    /// Spill-file write time, summed across tasks (within `map_time`).
    pub spill_time: Duration,
    /// Shuffle-merge time, summed across partitions (within
    /// `reduce_time`).
    pub merge_time: Duration,
    /// Largest per-reducer key-group count (skew indicator).
    pub max_reduce_groups: u64,
    /// Smallest per-reducer key-group count (skew indicator).
    pub min_reduce_groups: u64,
    /// Map-task attempts relaunched after a failure (panic or I/O).
    pub map_retries: u64,
    /// Reduce-task attempts relaunched after a failure.
    pub reduce_retries: u64,
    /// Map tasks that received a speculative second attempt.
    pub speculative_tasks: u64,
    /// Speculative attempts that finished before the original copy.
    pub speculative_wins: u64,
    /// Exponential retry backoff accrued across all relaunches, in
    /// virtual time (recorded, never slept, so fault runs stay fast).
    pub retry_backoff: Duration,
    /// Critical-path summary over this run's span stream — dominant
    /// phase, longest task, and the fraction of wall-clock the path
    /// covers. `None` when the engine has no telemetry attached.
    pub critical_path: Option<CriticalPathSummary>,
}

impl JobStats {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.reduce_time
    }

    /// Data processed per second — the paper's DPS metric for analytics
    /// workloads (input bytes / total processing time).
    pub fn dps(&self, input_bytes: u64) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            input_bytes as f64 / secs
        }
    }

    /// Ratio of the most- to least-loaded reducer's key-group count
    /// (1.0 = perfectly balanced; 0 groups anywhere reports `inf`
    /// unless all reducers are empty, which reports 1.0).
    pub fn reduce_skew(&self) -> f64 {
        if self.max_reduce_groups == 0 {
            1.0
        } else {
            self.max_reduce_groups as f64 / self.min_reduce_groups as f64
        }
    }

    /// Multi-line per-phase breakdown (sort/spill/merge, reducer skew)
    /// for text reports.
    pub fn phase_breakdown(&self) -> String {
        format!(
            "map {:.3}s (sort {:.3}s, spill {:.3}s) | reduce {:.3}s (merge {:.3}s) | \
             groups/reducer max {} min {} (skew {:.2})",
            self.map_time.as_secs_f64(),
            self.sort_time.as_secs_f64(),
            self.spill_time.as_secs_f64(),
            self.reduce_time.as_secs_f64(),
            self.merge_time.as_secs_f64(),
            self.max_reduce_groups,
            self.min_reduce_groups,
            self.reduce_skew(),
        )
    }
}

/// Result of one map task, per partition.
/// Per-partition reduce inputs: in-memory sorted runs plus spill files.
type PartitionInputs<K, V> = Vec<(Vec<Vec<(K, V)>>, Vec<SpillFile>)>;

struct MapTaskResult<K, V> {
    /// In-memory sorted runs, indexed by partition.
    memory_runs: Vec<Vec<(K, V)>>,
    /// Spilled sorted runs, indexed by partition.
    spill_runs: Vec<Vec<SpillFile>>,
    records: u64,
    output_pairs: u64,
    combined_pairs: u64,
    spills: u64,
    spill_bytes: u64,
    sort_time: Duration,
    spill_time: Duration,
}

/// Result of reducing one partition.
struct ReduceOutcome<O> {
    outputs: Vec<O>,
    groups: u64,
    shuffle_bytes: u64,
    merge_time: Duration,
}

/// Base delay for the first retry; doubled per subsequent failure of
/// the same task and accrued in [`JobStats::retry_backoff`] as virtual
/// time.
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// A running task is never speculated before this much wall-clock.
const SPECULATION_FLOOR: Duration = Duration::from_millis(25);
/// ... nor before it is this many times slower than the median
/// completed task.
const SPECULATION_FACTOR: u32 = 4;
/// Speculation needs a population to judge stragglers against.
const SPECULATION_MIN_TASKS: usize = 4;

/// Which phase the scheduler is executing; controls speculation and the
/// recovery-metric site.
#[derive(Debug, Clone, Copy)]
enum TaskPhase {
    Map,
    Reduce,
}

impl TaskPhase {
    /// Only map tasks are speculated (Hadoop speculates reduces too,
    /// but our reduce inputs live in the map tasks' spill files — one
    /// partition per reducer keeps the model simple).
    fn speculates(self) -> bool {
        matches!(self, Self::Map)
    }

    fn site(self) -> &'static str {
        match self {
            Self::Map => crate::sites::MAP_TASK,
            Self::Reduce => crate::sites::REDUCE_TASK,
        }
    }
}

/// Per-task scheduler state.
#[derive(Debug, Default)]
struct TaskState {
    /// Attempts started (first attempt, retries, speculation).
    attempts: u32,
    /// Failed attempts so far.
    failures: u32,
    /// Attempts currently executing.
    running: u32,
    /// When the first attempt started (straggler clock).
    first_start: Option<Instant>,
    /// The attempt number launched speculatively, if any.
    speculative_attempt: Option<u32>,
    /// Whether a winning result has been recorded.
    done: bool,
}

/// Retry/speculation counters reported back into [`JobStats`].
#[derive(Debug, Default, Clone, Copy)]
struct SchedStats {
    retries: u64,
    speculative_tasks: u64,
    speculative_wins: u64,
    backoff: Duration,
}

/// Shared scheduler state: one lock per task transition, never on the
/// data path.
struct Board<T> {
    pending: VecDeque<usize>,
    tasks: Vec<TaskState>,
    results: Vec<Option<T>>,
    /// Wall-clock of completed tasks, for the straggler median.
    durations: Vec<Duration>,
    completed: usize,
    fatal: Option<JobError>,
    stats: SchedStats,
}

/// How one attempt failed.
enum AttemptError {
    Panicked(String),
    Io(std::io::Error),
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_owned()
    }
}

/// Picks a straggling task worth a speculative attempt: running, never
/// speculated, never failed (a retried task's straggler clock is
/// stale), and slow relative to both an absolute floor and the median
/// completed-task duration — Hadoop's heuristic in miniature.
fn speculation_candidate<T>(board: &Board<T>, ntasks: usize) -> Option<usize> {
    if ntasks < SPECULATION_MIN_TASKS || board.completed < ntasks / 2 {
        return None;
    }
    let mut durs = board.durations.clone();
    durs.sort_unstable();
    let median = durs.get(durs.len() / 2).copied().unwrap_or(Duration::ZERO);
    let threshold = SPECULATION_FLOOR.max(median * SPECULATION_FACTOR);
    board.tasks.iter().enumerate().find_map(|(tid, t)| {
        let straggling = !t.done
            && t.running > 0
            && t.speculative_attempt.is_none()
            && t.failures == 0
            && t.first_start.is_some_and(|s| s.elapsed() > threshold);
        straggling.then_some(tid)
    })
}

/// The MapReduce engine. Configure with [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    reducers: usize,
    map_buffer_bytes: usize,
    spill_dir: PathBuf,
    telemetry: SpanRecorder,
    metrics: Option<MetricsRegistry>,
    faults: FaultPlan,
    max_task_attempts: u32,
}

/// Builder for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: usize,
    reducers: usize,
    map_buffer_bytes: usize,
    spill_dir: PathBuf,
    telemetry: SpanRecorder,
    metrics: Option<MetricsRegistry>,
    faults: FaultPlan,
    max_task_attempts: u32,
}

impl EngineBuilder {
    /// Number of parallel map/reduce worker threads (default: available
    /// parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Number of reduce partitions (default: threads).
    pub fn reducers(mut self, n: usize) -> Self {
        self.reducers = n.max(1);
        self
    }

    /// Map-side sort-buffer budget in bytes per task; when a task's
    /// buffered intermediate data exceeds this, it spills to disk
    /// (default: 64 MiB, large enough that small jobs never spill).
    pub fn map_buffer_bytes(mut self, bytes: usize) -> Self {
        self.map_buffer_bytes = bytes.max(1024);
        self
    }

    /// Directory for spill files (default: the system temp dir).
    pub fn spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = dir;
        self
    }

    /// Span recorder for per-task/per-phase spans (default: disabled —
    /// a disabled recorder costs one branch per task boundary).
    pub fn telemetry(mut self, recorder: SpanRecorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Metrics registry fed with job counters after each run (default:
    /// none).
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Fault plan consulted at the parallel path's injection sites
    /// (default: disabled — one branch per site check).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attempt budget per task, counting the first attempt (default: 4,
    /// Hadoop's `mapred.map.max.attempts`). A task failing this many
    /// times fails the job with a [`JobError`].
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }

    /// Finishes the engine.
    pub fn build(self) -> Engine {
        Engine {
            threads: self.threads,
            reducers: if self.reducers == 0 { self.threads } else { self.reducers },
            map_buffer_bytes: self.map_buffer_bytes,
            spill_dir: self.spill_dir,
            telemetry: self.telemetry,
            metrics: self.metrics,
            faults: self.faults,
            max_task_attempts: self.max_task_attempts,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        EngineBuilder {
            threads,
            reducers: 0,
            map_buffer_bytes: 64 << 20,
            spill_dir: std::env::temp_dir(),
            telemetry: SpanRecorder::disabled(),
            metrics: None,
            faults: FaultPlan::disabled(),
            max_task_attempts: 4,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of reduce partitions.
    pub fn reducers(&self) -> usize {
        self.reducers
    }

    /// Runs `job` over `inputs` in parallel at native speed (no
    /// instrumentation). Returns outputs (ordered by partition, then by
    /// key) and statistics.
    ///
    /// # Panics
    ///
    /// Panics with the structured [`JobError`] message when a task
    /// exhausts its retry budget; use [`Engine::try_run`] to handle that
    /// as a value instead.
    pub fn run<J: Job>(&self, job: &J, inputs: &[J::Input]) -> (Vec<J::Output>, JobStats) {
        self.try_run(job, inputs).unwrap_or_else(|e| panic!("mapreduce job failed: {e}"))
    }

    /// Fault-tolerant [`Engine::run`]: task panics and spill I/O errors
    /// are retried up to the attempt budget, straggling map tasks are
    /// speculatively re-executed, and only a task with no attempts left
    /// fails the job.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError`] identifying the task and final attempt
    /// when retries are exhausted.
    pub fn try_run<J: Job>(
        &self,
        job: &J,
        inputs: &[J::Input],
    ) -> Result<(Vec<J::Output>, JobStats), JobError> {
        let mut stats = JobStats::default();
        let run_epoch = self.telemetry.now_us();
        let job_span = span!(self.telemetry, "mapreduce", "job", inputs = inputs.len());
        let map_start = Instant::now();
        let chunk = inputs.len().div_ceil(self.threads).max(1);
        let chunks: Vec<&[J::Input]> = inputs.chunks(chunk).collect();
        let (task_results, map_sched) = {
            let _map_span = span!(self.telemetry, "mapreduce", "map-phase");
            self.run_tasks(chunks.len(), TaskPhase::Map, |task_id, attempt| {
                let records = chunks[task_id];
                let mut task_span = span!(
                    self.telemetry,
                    "mapreduce",
                    "map-task",
                    task = task_id,
                    attempt = attempt,
                    records = records.len()
                );
                if let Some(delay) = self.faults.straggle(crate::sites::MAP_STRAGGLER) {
                    std::thread::sleep(delay);
                }
                self.faults.maybe_panic(crate::sites::MAP_TASK);
                let mut probe = NullProbe;
                let r = self.map_task(
                    job,
                    records,
                    task_id,
                    attempt,
                    &self.faults,
                    &mut probe,
                    &mut None,
                )?;
                task_span.arg("output_pairs", r.output_pairs);
                task_span.arg("spills", r.spills);
                Ok(r)
            })?
        };
        for r in &task_results {
            stats.map_records += r.records;
            stats.map_output_pairs += r.output_pairs;
            stats.combined_pairs += r.combined_pairs;
            stats.spills += r.spills;
            stats.spill_bytes += r.spill_bytes;
            stats.sort_time += r.sort_time;
            stats.spill_time += r.spill_time;
        }
        stats.map_retries = map_sched.retries;
        stats.speculative_tasks = map_sched.speculative_tasks;
        stats.speculative_wins = map_sched.speculative_wins;
        stats.retry_backoff = map_sched.backoff;
        stats.map_time = map_start.elapsed();

        let reduce_start = Instant::now();
        let reduce_span = span!(self.telemetry, "mapreduce", "reduce-phase");
        // Regroup runs by partition.
        let mut partitions: PartitionInputs<J::Key, J::Value> =
            (0..self.reducers).map(|_| (Vec::new(), Vec::new())).collect();
        for task in task_results {
            for (p, run) in task.memory_runs.into_iter().enumerate() {
                if !run.is_empty() {
                    partitions[p].0.push(run);
                }
            }
            for (p, spills) in task.spill_runs.into_iter().enumerate() {
                partitions[p].1.extend(spills);
            }
        }
        let (reduced, reduce_sched) =
            self.run_tasks(partitions.len(), TaskPhase::Reduce, |p, attempt| {
                let (runs, spills) = &partitions[p];
                let mut part_span = span!(
                    self.telemetry,
                    "mapreduce",
                    "reduce-partition",
                    partition = p,
                    attempt = attempt
                );
                self.faults.maybe_panic(crate::sites::REDUCE_TASK);
                let mut probe = NullProbe;
                let r =
                    self.reduce_partition(job, runs, spills, &self.faults, &mut probe, &mut None)?;
                part_span.arg("groups", r.groups);
                part_span.arg("shuffle_bytes", r.shuffle_bytes);
                Ok(r)
            })?;
        stats.reduce_retries = reduce_sched.retries;
        stats.retry_backoff += reduce_sched.backoff;
        let mut outputs = Vec::new();
        stats.min_reduce_groups = u64::MAX;
        for r in reduced {
            stats.reduce_groups += r.groups;
            stats.shuffle_bytes += r.shuffle_bytes;
            stats.merge_time += r.merge_time;
            stats.max_reduce_groups = stats.max_reduce_groups.max(r.groups);
            stats.min_reduce_groups = stats.min_reduce_groups.min(r.groups);
            stats.output_records += r.outputs.len() as u64;
            outputs.extend(r.outputs);
        }
        if stats.min_reduce_groups == u64::MAX {
            stats.min_reduce_groups = 0;
        }
        stats.reduce_time = reduce_start.elapsed();
        // Close the phase spans before profiling so the critical path
        // sees the whole run.
        drop(reduce_span);
        drop(job_span);
        stats.critical_path = self.critical_summary(run_epoch);
        self.record_metrics(&stats);
        Ok((outputs, stats))
    }

    /// Summarizes the critical path of the spans this engine recorded
    /// since `run_epoch` (µs); `None` without telemetry.
    fn critical_summary(&self, run_epoch: u64) -> Option<CriticalPathSummary> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let events: Vec<_> =
            self.telemetry.events().into_iter().filter(|e| e.start_us >= run_epoch).collect();
        let forest = SpanForest::build(&events);
        Some(critical_path(&forest).summary(&forest))
    }

    /// Executes `ntasks` independent tasks on the worker pool with
    /// bounded retries and (for map phases) speculative execution.
    /// Results come back indexed by task id, so output order never
    /// depends on scheduling.
    fn run_tasks<T, F>(
        &self,
        ntasks: usize,
        phase: TaskPhase,
        run_attempt: F,
    ) -> Result<(Vec<T>, SchedStats), JobError>
    where
        T: Send,
        F: Fn(usize, u32) -> std::io::Result<T> + Sync,
    {
        if ntasks == 0 {
            return Ok((Vec::new(), SchedStats::default()));
        }
        let board = Mutex::new(Board {
            pending: (0..ntasks).collect(),
            tasks: (0..ntasks).map(|_| TaskState::default()).collect(),
            results: (0..ntasks).map(|_| None).collect(),
            durations: Vec::new(),
            completed: 0,
            fatal: None,
            stats: SchedStats::default(),
        });
        let idle = Condvar::new();
        let workers = self.threads.clamp(1, ntasks);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| self.worker_loop(&board, &idle, ntasks, phase, &run_attempt));
            }
        });
        let board = board.into_inner().expect("board lock");
        if let Some(err) = board.fatal {
            return Err(err);
        }
        let results =
            board.results.into_iter().map(|r| r.expect("completed task has a result")).collect();
        Ok((results, board.stats))
    }

    /// One scheduler worker: claim pending (or speculation-eligible)
    /// tasks, execute attempts under `catch_unwind`, and settle the
    /// outcome on the shared board.
    fn worker_loop<T, F>(
        &self,
        board: &Mutex<Board<T>>,
        idle: &Condvar,
        ntasks: usize,
        phase: TaskPhase,
        run_attempt: &F,
    ) where
        T: Send,
        F: Fn(usize, u32) -> std::io::Result<T> + Sync,
    {
        let mut guard = board.lock().expect("board lock");
        loop {
            if guard.fatal.is_some() || guard.completed == ntasks {
                return;
            }
            let claim = match guard.pending.pop_front() {
                Some(tid) => Some((tid, false)),
                None if phase.speculates() => {
                    speculation_candidate(&guard, ntasks).map(|tid| (tid, true))
                }
                None => None,
            };
            let Some((tid, speculative)) = claim else {
                // Idle: wake on completions/failures, or after a short
                // timeout to re-check straggler speculation eligibility.
                guard = idle.wait_timeout(guard, Duration::from_millis(2)).expect("board lock").0;
                continue;
            };
            let attempt = guard.tasks[tid].attempts;
            guard.tasks[tid].attempts += 1;
            guard.tasks[tid].running += 1;
            if guard.tasks[tid].first_start.is_none() {
                guard.tasks[tid].first_start = Some(Instant::now());
            }
            if speculative {
                guard.tasks[tid].speculative_attempt = Some(attempt);
                guard.stats.speculative_tasks += 1;
            }
            drop(guard);

            let outcome = match catch_unwind(AssertUnwindSafe(|| run_attempt(tid, attempt))) {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(e)) => Err(AttemptError::Io(e)),
                Err(payload) => Err(AttemptError::Panicked(panic_message(payload.as_ref()))),
            };

            guard = board.lock().expect("board lock");
            guard.tasks[tid].running -= 1;
            if guard.tasks[tid].done {
                // A lost speculative twin (or a failure after the task
                // already completed) is moot.
                continue;
            }
            match outcome {
                Ok(value) => {
                    let won_speculatively = guard.tasks[tid].speculative_attempt == Some(attempt);
                    let recovered = guard.tasks[tid].failures > 0 || won_speculatively;
                    guard.tasks[tid].done = true;
                    let dur = guard.tasks[tid].first_start.map_or(Duration::ZERO, |s| s.elapsed());
                    guard.results[tid] = Some(value);
                    guard.durations.push(dur);
                    guard.completed += 1;
                    if won_speculatively {
                        guard.stats.speculative_wins += 1;
                    }
                    if recovered {
                        self.faults.note_recovered(phase.site());
                    }
                }
                Err(e) => {
                    guard.tasks[tid].failures += 1;
                    let failures = guard.tasks[tid].failures;
                    if failures >= self.max_task_attempts {
                        guard.fatal.get_or_insert(match e {
                            AttemptError::Panicked(message) => {
                                JobError::TaskPanicked { task_id: tid, attempt, message }
                            }
                            AttemptError::Io(source) => {
                                JobError::TaskIo { task_id: tid, attempt, source }
                            }
                        });
                    } else {
                        guard.stats.retries += 1;
                        guard.stats.backoff +=
                            RETRY_BACKOFF_BASE * 2u32.saturating_pow((failures - 1).min(16));
                        guard.pending.push_back(tid);
                    }
                }
            }
            idle.notify_all();
        }
    }

    /// Publishes one run's counters into the attached metrics registry
    /// (no-op without one; called once per run, never on the hot path).
    fn record_metrics(&self, stats: &JobStats) {
        let Some(metrics) = &self.metrics else { return };
        metrics.counter("mapreduce.map_records").add(stats.map_records);
        metrics.counter("mapreduce.map_output_pairs").add(stats.map_output_pairs);
        metrics.counter("mapreduce.combined_pairs").add(stats.combined_pairs);
        metrics.counter("mapreduce.shuffle_bytes").add(stats.shuffle_bytes);
        metrics.counter("mapreduce.spills").add(stats.spills);
        metrics.counter("mapreduce.spill_bytes").add(stats.spill_bytes);
        metrics.counter("mapreduce.reduce_groups").add(stats.reduce_groups);
        metrics.counter("mapreduce.output_records").add(stats.output_records);
        metrics.counter("mapreduce.map_retries").add(stats.map_retries);
        metrics.counter("mapreduce.reduce_retries").add(stats.reduce_retries);
        metrics.counter("mapreduce.speculative_tasks").add(stats.speculative_tasks);
        metrics.counter("mapreduce.speculative_wins").add(stats.speculative_wins);
        metrics.histogram("mapreduce.map_phase_us").record(stats.map_time);
        metrics.histogram("mapreduce.reduce_phase_us").record(stats.reduce_time);
    }

    /// Runs `job` single-threaded against an instrumentation probe,
    /// additionally modeling the framework's own code footprint and
    /// buffer traffic via a fresh [`FrameworkModel`].
    pub fn run_traced<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        inputs: &[J::Input],
        probe: &mut P,
    ) -> (Vec<J::Output>, JobStats) {
        let mut fw = FrameworkModel::new();
        self.run_traced_with(job, inputs, probe, &mut fw)
    }

    /// [`Engine::run_traced`] with a caller-owned framework model, so
    /// warm-up and measured runs share cursors and code addresses (the
    /// input stream stays cold across the ramp-up boundary).
    pub fn run_traced_with<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        inputs: &[J::Input],
        probe: &mut P,
        fw: &mut FrameworkModel,
    ) -> (Vec<J::Output>, JobStats) {
        let mut stats = JobStats::default();
        let run_epoch = self.telemetry.now_us();
        let job_span = span!(self.telemetry, "mapreduce", "job", inputs = inputs.len());
        let caller_fw = fw;
        let mut fw = Some(std::mem::take(caller_fw));
        // Traced runs are single-threaded and fault-free: injection and
        // recovery belong to the parallel path only.
        let no_faults = FaultPlan::disabled();
        let map_start = Instant::now();
        probe.phase("map");
        let task = {
            let before = probe.counters();
            let mut map_span = span!(self.telemetry, "mapreduce", "map-phase");
            let task = self
                .map_task(job, inputs, 0, 0, &no_faults, probe, &mut fw)
                .expect("spill write failed (traced runs are fault-free)");
            attach_counter_delta(&mut map_span, before.as_ref(), probe);
            task
        };
        stats.map_records = task.records;
        stats.map_output_pairs = task.output_pairs;
        stats.combined_pairs = task.combined_pairs;
        stats.spills = task.spills;
        stats.spill_bytes = task.spill_bytes;
        stats.sort_time = task.sort_time;
        stats.spill_time = task.spill_time;
        stats.map_time = map_start.elapsed();

        let reduce_start = Instant::now();
        let mut outputs = Vec::new();
        stats.min_reduce_groups = u64::MAX;
        for (p, run) in task.memory_runs.into_iter().enumerate() {
            let runs = if run.is_empty() { Vec::new() } else { vec![run] };
            let spills = task.spill_runs.get(p).map_or(0, Vec::len);
            let _ = spills;
            let before = probe.counters();
            let mut part_span =
                span!(self.telemetry, "mapreduce", "reduce-partition", partition = p);
            let r = self
                .reduce_partition(
                    job,
                    &runs,
                    &[], // spills already merged below
                    &no_faults,
                    probe,
                    &mut fw,
                )
                .expect("spill read failed (traced runs are fault-free)");
            attach_counter_delta(&mut part_span, before.as_ref(), probe);
            drop(part_span);
            stats.reduce_groups += r.groups;
            stats.shuffle_bytes += r.shuffle_bytes;
            stats.merge_time += r.merge_time;
            stats.max_reduce_groups = stats.max_reduce_groups.max(r.groups);
            stats.min_reduce_groups = stats.min_reduce_groups.min(r.groups);
            outputs.extend(r.outputs);
        }
        // Traced runs use a buffer large enough not to spill in practice;
        // if they did spill, fold those runs in too.
        for spills in task.spill_runs {
            if spills.is_empty() {
                continue;
            }
            let r = self
                .reduce_partition(job, &[], &spills, &no_faults, probe, &mut fw)
                .expect("spill read failed (traced runs are fault-free)");
            stats.reduce_groups += r.groups;
            stats.shuffle_bytes += r.shuffle_bytes;
            stats.merge_time += r.merge_time;
            outputs.extend(r.outputs);
        }
        if stats.min_reduce_groups == u64::MAX {
            stats.min_reduce_groups = 0;
        }
        stats.output_records = outputs.len() as u64;
        stats.reduce_time = reduce_start.elapsed();
        drop(job_span);
        stats.critical_path = self.critical_summary(run_epoch);
        self.record_metrics(&stats);
        *caller_fw = fw.take().expect("framework model present throughout");
        (outputs, stats)
    }

    /// One map task attempt over a slice of records. Spill I/O errors
    /// (real or injected) propagate so the scheduler can retry the
    /// attempt; partially written spill files are cleaned up on the way
    /// out (the result's `SpillFile`s delete themselves on drop).
    #[allow(clippy::too_many_arguments)]
    fn map_task<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        records: &[J::Input],
        task_id: usize,
        attempt: u32,
        faults: &FaultPlan,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) -> std::io::Result<MapTaskResult<J::Key, J::Value>> {
        let mut result = MapTaskResult {
            memory_runs: (0..self.reducers).map(|_| Vec::new()).collect(),
            spill_runs: (0..self.reducers).map(|_| Vec::new()).collect(),
            records: 0,
            output_pairs: 0,
            combined_pairs: 0,
            spills: 0,
            spill_bytes: 0,
            sort_time: Duration::ZERO,
            spill_time: Duration::ZERO,
        };
        let mut buffers: Vec<Vec<(J::Key, J::Value)>> =
            (0..self.reducers).map(|_| Vec::new()).collect();
        let mut buffered_bytes = 0usize;
        let mut emitter = Emitter::new();
        let mut spill_seq = 0usize;

        for record in records {
            result.records += 1;
            if let Some(fw) = fw.as_mut() {
                fw.on_map_record(probe, job.input_size(record));
            }
            job.map(record, &mut emitter, probe);
            buffered_bytes += emitter.bytes();
            for (k, v) in emitter.take() {
                if let Some(fw) = fw.as_mut() {
                    fw.on_emit(probe, k.size_hint() + v.size_hint());
                }
                result.output_pairs += 1;
                let p = partition_of(&k, self.reducers);
                buffers[p].push((k, v));
            }
            if buffered_bytes > self.map_buffer_bytes {
                self.spill(
                    job,
                    &mut buffers,
                    &mut result,
                    task_id,
                    attempt,
                    faults,
                    &mut spill_seq,
                    probe,
                    fw,
                )?;
                buffered_bytes = 0;
            }
        }
        // Final in-memory runs: sort + combine, keep in memory.
        let sort_start = Instant::now();
        for (p, buf) in buffers.into_iter().enumerate() {
            let run = sort_and_combine(job, buf);
            result.combined_pairs += run.len() as u64;
            result.memory_runs[p] = run;
        }
        result.sort_time += sort_start.elapsed();
        Ok(result)
    }

    /// Sorts, combines and spills all current buffers to disk.
    #[allow(clippy::too_many_arguments)]
    fn spill<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        buffers: &mut [Vec<(J::Key, J::Value)>],
        result: &mut MapTaskResult<J::Key, J::Value>,
        task_id: usize,
        attempt: u32,
        faults: &FaultPlan,
        spill_seq: &mut usize,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) -> std::io::Result<()> {
        probe.phase("spill");
        let before = probe.counters();
        let mut spill_span = span!(self.telemetry, "mapreduce", "spill", task = task_id);
        let mut spilled_bytes = 0u64;
        for (p, buf) in buffers.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let pairs = std::mem::take(buf);
            let n = pairs.len();
            let sort_start = Instant::now();
            let run = sort_and_combine(job, pairs);
            result.sort_time += sort_start.elapsed();
            result.combined_pairs += run.len() as u64;
            if let Some(fw) = fw.as_mut() {
                let bytes: usize = run.iter().map(|(k, v)| k.size_hint() + v.size_hint()).sum();
                fw.on_spill(probe, n, bytes);
            }
            let write_start = Instant::now();
            let file =
                SpillFile::write_with(&self.spill_dir, task_id, attempt, *spill_seq, &run, faults)?;
            result.spill_time += write_start.elapsed();
            *spill_seq += 1;
            result.spills += 1;
            result.spill_bytes += file.bytes;
            spilled_bytes += file.bytes;
            result.spill_runs[p].push(file);
        }
        spill_span.arg("bytes", spilled_bytes);
        attach_counter_delta(&mut spill_span, before.as_ref(), probe);
        drop(spill_span);
        // Spills interrupt the map loop; attribution returns to "map"
        // for the records that follow.
        probe.phase("map");
        Ok(())
    }

    /// Shuffle-merge and reduce one partition. Inputs are borrowed so a
    /// retried attempt can re-merge the same runs; the merge clones per
    /// element either way.
    fn reduce_partition<J: Job, P: Probe + ?Sized>(
        &self,
        job: &J,
        runs: &[Vec<(J::Key, J::Value)>],
        spills: &[SpillFile],
        faults: &FaultPlan,
        probe: &mut P,
        fw: &mut Option<FrameworkModel>,
    ) -> std::io::Result<ReduceOutcome<J::Output>> {
        let mut shuffle_bytes = 0u64;
        let merge_start = Instant::now();
        probe.phase("shuffle");
        let merged = {
            let before = probe.counters();
            let mut merge_span =
                span!(self.telemetry, "mapreduce", "shuffle-merge", runs = runs.len());
            merge_span.arg("spills", spills.len());
            let mut spilled: Vec<Vec<(J::Key, J::Value)>> = Vec::with_capacity(spills.len());
            for spill in spills {
                shuffle_bytes += spill.bytes;
                spilled.push(spill.read_with(faults)?);
            }
            let slices: Vec<&[(J::Key, J::Value)]> =
                runs.iter().chain(spilled.iter()).map(Vec::as_slice).collect();
            for run in &slices {
                shuffle_bytes +=
                    run.iter().map(|(k, v)| (k.size_hint() + v.size_hint()) as u64).sum::<u64>();
            }
            let merged = merge_run_slices(&slices);
            attach_counter_delta(&mut merge_span, before.as_ref(), probe);
            merged
        };
        let merge_time = merge_start.elapsed();
        probe.phase("reduce");
        let mut out = Vec::new();
        let mut groups = 0u64;
        let mut iter = merged.into_iter().peekable();
        while let Some((key, value)) = iter.next() {
            let mut values = vec![value];
            while iter.peek().is_some_and(|(k, _)| *k == key) {
                values.push(iter.next().expect("peeked").1);
            }
            groups += 1;
            if let Some(fw) = fw.as_mut() {
                fw.on_reduce_group(probe, values.len());
            }
            job.reduce(key, values, &mut out, probe);
        }
        Ok(ReduceOutcome { outputs: out, groups, shuffle_bytes, merge_time })
    }
}

/// Copies the counter deltas accumulated since `before` onto `span` as
/// `counter.*` args, when the probe exposes simulated counters. The
/// Chrome exporter additionally renders such args as `"ph":"C"`
/// samples, giving per-phase counter tracks over the run timeline.
fn attach_counter_delta<P: Probe + ?Sized>(
    span: &mut SpanGuard<'_>,
    before: Option<&CounterSnapshot>,
    probe: &P,
) {
    let (Some(before), Some(after)) = (before, probe.counters()) else {
        return;
    };
    for (key, value) in after.delta_since(before).named_counters() {
        span.arg(key, value);
    }
}

/// Deterministic hash partitioner (FNV-1a over the encoded key).
fn partition_of<K: crate::codec::Datum>(key: &K, reducers: usize) -> usize {
    let mut buf = Vec::with_capacity(16);
    key.encode(&mut buf);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in buf {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % reducers as u64) as usize
}

/// Sorts a buffer by key and applies the job's combiner per key group.
fn sort_and_combine<J: Job>(
    job: &J,
    mut pairs: Vec<(J::Key, J::Value)>,
) -> Vec<(J::Key, J::Value)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(pairs.len());
    let mut iter = pairs.into_iter().peekable();
    while let Some((key, value)) = iter.next() {
        let mut values = vec![value];
        while iter.peek().is_some_and(|(k, _)| *k == key) {
            values.push(iter.next().expect("peeked").1);
        }
        let combined = job.combine(&key, values);
        for v in combined {
            out.push((key.clone(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};

    /// WordCount with a summing combiner.
    struct WordCount;
    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);
        fn map<P: Probe + ?Sized>(
            &self,
            line: &String,
            emit: &mut Emitter<String, u64>,
            _p: &mut P,
        ) {
            for w in line.split_whitespace() {
                emit.emit(w.to_owned(), 1);
            }
        }
        fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.into_iter().sum()]
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _p: &mut P,
        ) {
            out.push((key, values.into_iter().sum()));
        }
    }

    /// Identity sort job over u64 keys.
    struct SortJob;
    impl Job for SortJob {
        type Input = u64;
        type Key = u64;
        type Value = ();
        type Output = u64;
        fn map<P: Probe + ?Sized>(&self, x: &u64, emit: &mut Emitter<u64, ()>, _p: &mut P) {
            emit.emit(*x, ());
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            key: u64,
            values: Vec<()>,
            out: &mut Vec<u64>,
            _p: &mut P,
        ) {
            for _ in values {
                out.push(key);
            }
        }
    }

    fn lines() -> Vec<String> {
        vec![
            "the quick brown fox".to_owned(),
            "the lazy dog".to_owned(),
            "the quick dog".to_owned(),
        ]
    }

    #[test]
    fn wordcount_matches_naive() {
        let engine = Engine::builder().threads(3).reducers(2).build();
        let (mut out, stats) = engine.run(&WordCount, &lines());
        out.sort();
        let expect = vec![
            ("brown".to_owned(), 1),
            ("dog".to_owned(), 2),
            ("fox".to_owned(), 1),
            ("lazy".to_owned(), 1),
            ("quick".to_owned(), 2),
            ("the".to_owned(), 3),
        ];
        assert_eq!(out, expect);
        assert_eq!(stats.map_records, 3);
        assert_eq!(stats.map_output_pairs, 10);
        assert_eq!(stats.reduce_groups, 6);
        assert_eq!(stats.output_records, 6);
    }

    #[test]
    fn sort_outputs_sorted_within_partition_and_complete() {
        let engine = Engine::builder().threads(4).reducers(1).build();
        let inputs: Vec<u64> = (0..10_000).map(|i| (i * 2_654_435_761u64) % 100_000).collect();
        let (out, stats) = engine.run(&SortJob, &inputs);
        assert_eq!(out.len(), inputs.len());
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "single partition ⇒ totally sorted");
        assert_eq!(stats.map_records, 10_000);
        let mut expect = inputs.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn spilling_engine_still_correct() {
        // Tiny buffer forces many spills.
        let engine = Engine::builder().threads(2).reducers(2).map_buffer_bytes(1024).build();
        let inputs: Vec<u64> = (0..5000).rev().collect();
        let (mut out, stats) = engine.run(&SortJob, &inputs);
        assert!(stats.spills > 0, "should have spilled");
        assert!(stats.spill_bytes > 0);
        out.sort_unstable();
        let expect: Vec<u64> = (0..5000).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let engine_c = Engine::builder().threads(1).reducers(1).build();
        let input: Vec<String> = vec!["a a a a a a a a".to_owned(); 100];
        let (_, with_combiner) = engine_c.run(&WordCount, &input);
        // combined_pairs: one per (buffer, key) — here 1; without combine
        // it would equal map_output_pairs (800).
        assert_eq!(with_combiner.map_output_pairs, 800);
        assert_eq!(with_combiner.combined_pairs, 1);
        assert!(with_combiner.shuffle_bytes < 100);
    }

    #[test]
    fn traced_run_matches_native_output() {
        let engine = Engine::builder().reducers(2).build();
        let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
        let (mut traced, _) = engine.run_traced(&WordCount, &lines(), &mut probe);
        let (mut native, _) = engine.run(&WordCount, &lines());
        traced.sort();
        native.sort();
        assert_eq!(traced, native);
        let report = probe.finish();
        assert!(report.mix.other > 0, "framework instructions recorded");
        assert!(report.l1i.stats.accesses > 0);
    }

    #[test]
    fn traced_run_counts_framework_events() {
        let engine = Engine::builder().reducers(1).build();
        let mut probe = CountingProbe::default();
        let inputs: Vec<u64> = (0..100).collect();
        let (_, stats) = engine.run_traced(&SortJob, &inputs, &mut probe);
        assert_eq!(stats.map_records, 100);
        assert!(probe.mix().total() > 100, "at least one instruction per record");
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = Engine::default();
        let (out, stats) = engine.run(&SortJob, &[]);
        assert!(out.is_empty());
        assert_eq!(stats.map_records, 0);
        assert_eq!(stats.reduce_groups, 0);
    }

    #[test]
    fn dps_metric() {
        let stats = JobStats {
            map_time: Duration::from_millis(500),
            reduce_time: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((stats.dps(1_000_000) - 1_000_000.0).abs() < 1.0);
        assert_eq!(JobStats::default().dps(100), 0.0);
    }

    #[test]
    fn instrumented_run_emits_task_spans_and_phase_stats() {
        let telemetry = SpanRecorder::enabled();
        let metrics = MetricsRegistry::new();
        let engine = Engine::builder()
            .threads(2)
            .reducers(3)
            .map_buffer_bytes(1024) // force spills so spill spans appear
            .telemetry(telemetry.clone())
            .metrics(metrics.clone())
            .build();
        let inputs: Vec<u64> = (0..4000).rev().collect();
        let (out, stats) = engine.run(&SortJob, &inputs);
        assert_eq!(out.len(), 4000);

        let events = telemetry.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("job"), 1);
        assert_eq!(count("map-phase"), 1);
        assert_eq!(count("reduce-phase"), 1);
        assert_eq!(count("map-task"), 2, "one span per map task");
        assert_eq!(count("reduce-partition"), 3, "one span per partition");
        assert!(count("spill") > 0, "tiny buffer must spill");
        assert_eq!(count("shuffle-merge"), 3);

        // Per-phase breakdown populated and internally consistent.
        assert!(stats.spills > 0);
        assert!(stats.sort_time > Duration::ZERO);
        assert!(stats.spill_time > Duration::ZERO);
        assert!(stats.max_reduce_groups >= stats.min_reduce_groups);
        assert!(stats.reduce_skew() >= 1.0);
        let breakdown = stats.phase_breakdown();
        assert!(breakdown.contains("skew"), "breakdown: {breakdown}");

        // Counters flowed into the registry.
        assert_eq!(metrics.counter("mapreduce.map_records").get(), 4000);
        assert_eq!(metrics.counter("mapreduce.reduce_groups").get(), stats.reduce_groups);
        assert_eq!(metrics.histogram("mapreduce.map_phase_us").snapshot().count(), 1);
    }

    #[test]
    fn traced_run_attributes_counters_to_phases_and_spans() {
        let telemetry = SpanRecorder::enabled();
        let engine = Engine::builder().reducers(2).telemetry(telemetry.clone()).build();
        let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
        engine.run_traced(&WordCount, &lines(), &mut probe);
        let report = probe.finish();

        // Phase attribution: map/shuffle/reduce named, sums to totals.
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["map", "shuffle", "reduce"], "phases in first-appearance order");
        let summed: u64 = report.phases.iter().map(|p| p.counters.instructions()).sum();
        assert_eq!(summed, report.mix.total(), "phase counters sum to whole-run totals");

        // The map-phase span and each reduce-partition span carry the
        // full fixed counter-delta key set.
        let events = telemetry.events();
        let carrying: Vec<_> = events
            .iter()
            .filter(|e| e.args.iter().any(|(k, _)| k.starts_with("counter.")))
            .collect();
        assert!(carrying.len() >= 2, "counter deltas on ≥2 spans, got {}", carrying.len());
        assert!(carrying.iter().any(|e| e.name == "map-phase"));
        assert!(carrying.iter().any(|e| e.name == "reduce-partition"));
        let keys = CounterSnapshot::default().named_counters().len();
        for e in &carrying {
            let n = e.args.iter().filter(|(k, _)| k.starts_with("counter.")).count();
            assert_eq!(n, keys, "span {} carries the full key set", e.name);
        }
    }

    #[test]
    fn uninstrumented_run_records_no_spans() {
        let engine = Engine::builder().threads(2).reducers(2).build();
        let (_, stats) = engine.run(&SortJob, &(0..100u64).collect::<Vec<_>>());
        assert_eq!(stats.map_records, 100);
        assert_eq!(stats.critical_path, None, "no telemetry, no profile");
        // Disabled recorder: skew fields still populated from outcomes.
        assert!(stats.max_reduce_groups >= stats.min_reduce_groups);
    }

    #[test]
    fn instrumented_runs_carry_a_critical_path_summary() {
        let telemetry = SpanRecorder::enabled();
        let engine = Engine::builder().threads(2).reducers(2).telemetry(telemetry.clone()).build();
        let inputs: Vec<u64> = (0..2000).rev().collect();
        let (_, stats) = engine.run(&SortJob, &inputs);
        let cp = stats.critical_path.expect("telemetry attached → summary present");
        assert!(cp.wall_us > 0);
        assert!(cp.path_us <= cp.wall_us);
        assert!(
            cp.coverage > 0.9,
            "the job span covers the run, so the path covers the wall: {cp:?}"
        );
        assert!(!cp.dominant_phase.is_empty());
        assert!(cp.longest_segment_us > 0, "{cp:?}");

        // Traced (single-threaded) runs produce one too, scoped to
        // their own spans even on a recorder with prior events.
        let mut probe = NullProbe;
        let (_, traced) = engine.run_traced(&SortJob, &inputs, &mut probe);
        let cp = traced.critical_path.expect("summary on traced runs");
        assert!(cp.coverage > 0.9, "job span encloses the traced run: {cp:?}");
    }

    #[test]
    fn partitioner_is_deterministic_and_bounded() {
        for k in 0u64..1000 {
            let p = partition_of(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&k, 7));
        }
    }
}
