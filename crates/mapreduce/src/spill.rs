//! Spill files: sorted runs of intermediate pairs serialized to disk.
//!
//! Hadoop map tasks spill their sort buffer to local disk whenever it
//! fills; reducers then merge the sorted runs. We reproduce the same
//! mechanism with real temporary files so that, exactly as in the paper,
//! out-of-memory-scale inputs pay genuine I/O and Sort-style jobs slow
//! down past the memory threshold (Figure 3-2).

use crate::codec::Datum;
use bdb_faults::FaultPlan;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// A sorted run of `(key, value)` pairs persisted to a temporary file.
///
/// The file is deleted when the `SpillFile` is dropped.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    /// Number of pairs in the run.
    pub pairs: usize,
    /// Serialized size in bytes.
    pub bytes: u64,
}

impl SpillFile {
    /// Writes `pairs` (already sorted by key) to a new spill file in
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation or writing.
    pub fn write<K: Datum, V: Datum>(
        dir: &Path,
        task: usize,
        seq: usize,
        pairs: &[(K, V)],
    ) -> std::io::Result<Self> {
        Self::write_with(dir, task, 0, seq, pairs, &FaultPlan::disabled())
    }

    /// [`SpillFile::write`] for a specific task attempt, writing through
    /// the fault plan's [`crate::sites::SPILL_WRITE`] site. Attempts get
    /// distinct file names so a speculative re-execution never collides
    /// with the attempt it races. A failed write removes the partial
    /// file before returning.
    ///
    /// # Errors
    ///
    /// Propagates real and injected I/O errors from creation or writing.
    pub fn write_with<K: Datum, V: Datum>(
        dir: &Path,
        task: usize,
        attempt: u32,
        seq: usize,
        pairs: &[(K, V)],
        faults: &FaultPlan,
    ) -> std::io::Result<Self> {
        let path = dir.join(format!("bdb-spill-{}-{task}a{attempt}-{seq}.run", std::process::id()));
        let mut buf = Vec::new();
        for (k, v) in pairs {
            k.encode(&mut buf);
            v.encode(&mut buf);
        }
        let written = (|| {
            let mut w = faults.wrap_write(crate::sites::SPILL_WRITE, File::create(&path)?);
            w.write_all(&buf)?;
            w.flush()
        })();
        if let Err(e) = written {
            let _ = std::fs::remove_file(&path);
            return Err(e);
        }
        Ok(Self { path, pairs: pairs.len(), bytes: buf.len() as u64 })
    }

    /// Reads the whole run back.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on read failure, or `InvalidData` if the file
    /// does not decode to exactly `pairs` entries.
    pub fn read<K: Datum, V: Datum>(&self) -> std::io::Result<Vec<(K, V)>> {
        self.read_with(&FaultPlan::disabled())
    }

    /// [`SpillFile::read`] through the fault plan's
    /// [`crate::sites::SPILL_READ`] site.
    ///
    /// # Errors
    ///
    /// Propagates real and injected I/O errors; `InvalidData` if the
    /// file does not decode to exactly `pairs` entries.
    pub fn read_with<K: Datum, V: Datum>(
        &self,
        faults: &FaultPlan,
    ) -> std::io::Result<Vec<(K, V)>> {
        let mut bytes = Vec::with_capacity(self.bytes as usize);
        faults
            .wrap_read(crate::sites::SPILL_READ, BufReader::new(File::open(&self.path)?))
            .read_to_end(&mut bytes)?;
        let mut slice = bytes.as_slice();
        let mut out = Vec::with_capacity(self.pairs);
        for _ in 0..self.pairs {
            let k = K::decode(&mut slice).ok_or_else(corrupt)?;
            let v = V::decode(&mut slice).ok_or_else(corrupt)?;
            out.push((k, v));
        }
        if !slice.is_empty() {
            return Err(corrupt());
        }
        Ok(out)
    }
}

fn corrupt() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt spill file")
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// K-way merge of sorted runs into one sorted vector.
///
/// Each input run must be sorted by key; ties across runs keep run order
/// (stable for deterministic output).
pub fn merge_runs<K: Datum + Ord, V: Datum>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let slices: Vec<&[(K, V)]> = runs.iter().map(Vec::as_slice).collect();
    merge_run_slices(&slices)
}

/// [`merge_runs`] over borrowed runs, so a retried reduce attempt can
/// re-merge the same inputs without the engine cloning them up front
/// (the merge already clones per element).
pub fn merge_run_slices<K: Datum + Ord, V: Datum>(runs: &[&[(K, V)]]) -> Vec<(K, V)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Heap entries: (key, run index, position). We avoid cloning values
    // by indexing into the runs and taking items out in order.
    struct Entry<K> {
        key: K,
        run: usize,
        pos: usize,
    }
    impl<K: Ord> PartialEq for Entry<K> {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key && self.run == other.run
        }
    }
    impl<K: Ord> Eq for Entry<K> {}
    impl<K: Ord> PartialOrd for Entry<K> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord> Ord for Entry<K> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.key.cmp(&other.key).then(self.run.cmp(&other.run))
        }
    }

    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        if let Some((k, _)) = run.first() {
            heap.push(Reverse(Entry { key: k.clone(), run: i, pos: 0 }));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(e)) = heap.pop() {
        let run = runs[e.run];
        let v = run[e.pos].1.clone();
        out.push((e.key, v));
        let next = e.pos + 1;
        if next < run.len() {
            heap.push(Reverse(Entry { key: run[next].0.clone(), run: e.run, pos: next }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_roundtrip() {
        let dir = std::env::temp_dir();
        let pairs: Vec<(u64, String)> = (0..100).map(|i| (i, format!("v{i}"))).collect();
        let spill = SpillFile::write(&dir, 0, 0, &pairs).unwrap();
        assert_eq!(spill.pairs, 100);
        assert!(spill.bytes > 0);
        let back: Vec<(u64, String)> = spill.read().unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let dir = std::env::temp_dir();
        let pairs: Vec<(u64, u64)> = vec![(1, 2)];
        let spill = SpillFile::write(&dir, 1, 7, &pairs).unwrap();
        let path = spill.path.clone();
        assert!(path.exists());
        drop(spill);
        assert!(!path.exists());
    }

    #[test]
    fn merge_two_sorted_runs() {
        let a: Vec<(u64, u64)> = vec![(1, 10), (3, 30), (5, 50)];
        let b: Vec<(u64, u64)> = vec![(2, 20), (3, 31), (4, 40)];
        let merged = merge_runs(vec![a, b]);
        let keys: Vec<u64> = merged.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![1, 2, 3, 3, 4, 5]);
        // Stability: run 0's (3,30) precedes run 1's (3,31).
        assert_eq!(merged[2], (3, 30));
        assert_eq!(merged[3], (3, 31));
    }

    #[test]
    fn merge_handles_empty_runs() {
        let merged: Vec<(u64, u64)> = merge_runs(vec![vec![], vec![(1, 1)], vec![]]);
        assert_eq!(merged, vec![(1, 1)]);
        let empty: Vec<(u64, u64)> = merge_runs(Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_many_runs_is_sorted() {
        let mut runs = Vec::new();
        for r in 0..8u64 {
            runs.push((0..50).map(|i| (i * 8 + r, r)).collect::<Vec<_>>());
        }
        let merged = merge_runs(runs);
        assert_eq!(merged.len(), 400);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
