//! Self-describing binary serialization for keys and values.
//!
//! Hadoop's `Writable` interface makes every key/value type responsible
//! for its own wire format; [`Datum`] is the Rust analogue. The engine
//! uses it to serialize intermediate pairs into spill files and to
//! account for shuffle bytes.

/// A value that can serialize itself into a byte buffer and back.
///
/// Implementations must round-trip: `decode(encode(x)) == x` and must
/// consume exactly the bytes they produced (so data can be streamed).
///
/// # Example
///
/// ```
/// use bdb_mapreduce::Datum;
/// let mut buf = Vec::new();
/// 42u64.encode(&mut buf);
/// "hi".to_owned().encode(&mut buf);
/// let mut slice = buf.as_slice();
/// assert_eq!(u64::decode(&mut slice), Some(42));
/// assert_eq!(String::decode(&mut slice), Some("hi".to_owned()));
/// assert!(slice.is_empty());
/// ```
pub trait Datum: Sized + Clone + Send + Sync {
    /// Appends the wire representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Reads one value from the front of `input`, advancing the slice.
    /// Returns `None` on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;

    /// Approximate in-memory size in bytes, used for spill accounting.
    fn size_hint(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! int_datum {
    ($($t:ty),*) => {$(
        impl Datum for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
            fn size_hint(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

int_datum!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Datum for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f32::from_le_bytes(take(input, 4)?.try_into().ok()?))
    }
    fn size_hint(&self) -> usize {
        4
    }
}

impl Datum for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_le_bytes(take(input, 8)?.try_into().ok()?))
    }
    fn size_hint(&self) -> usize {
        8
    }
}

impl Datum for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    fn size_hint(&self) -> usize {
        4 + self.len()
    }
}

impl Datum for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        Some(take(input, len)?.to_vec())
    }
    fn size_hint(&self) -> usize {
        4 + self.len()
    }
}

impl Datum for Vec<u32> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(u32::decode(input)?);
        }
        Some(v)
    }
    fn size_hint(&self) -> usize {
        4 + self.len() * 4
    }
}

impl Datum for Vec<f64> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut v = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            v.push(f64::decode(input)?);
        }
        Some(v)
    }
    fn size_hint(&self) -> usize {
        4 + self.len() * 8
    }
}

impl Datum for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
    fn size_hint(&self) -> usize {
        0
    }
}

impl<A: Datum, B: Datum> Datum for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint()
    }
}

impl<A: Datum, B: Datum, C: Datum> Datum for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint() + self.2.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Datum + PartialEq + std::fmt::Debug>(x: T) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        assert_eq!(buf.len(), x.size_hint());
        let mut slice = buf.as_slice();
        assert_eq!(T::decode(&mut slice), Some(x));
        assert!(slice.is_empty(), "decode must consume exactly its bytes");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-0.125f64);
        roundtrip(());
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        roundtrip(String::new());
        roundtrip("héllo wörld".to_owned());
        roundtrip(vec![0u8, 1, 255]);
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(vec![1.5f64, -2.5]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((42u64, "k".to_owned()));
        roundtrip((1u32, 2.0f64, "x".to_owned()));
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = Vec::new();
        "hello".to_owned().encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert_eq!(String::decode(&mut short), None);
        let mut empty: &[u8] = &[];
        assert_eq!(u64::decode(&mut empty), None);
    }

    #[test]
    fn invalid_utf8_returns_none() {
        let mut buf = Vec::new();
        3u32.encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE, 0xFD]);
        let mut slice = buf.as_slice();
        assert_eq!(String::decode(&mut slice), None);
    }

    #[test]
    fn stream_of_mixed_values() {
        let mut buf = Vec::new();
        for i in 0..100u64 {
            i.encode(&mut buf);
            format!("v{i}").encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for i in 0..100u64 {
            assert_eq!(u64::decode(&mut slice), Some(i));
            assert_eq!(String::decode(&mut slice), Some(format!("v{i}")));
        }
        assert!(slice.is_empty());
    }
}
