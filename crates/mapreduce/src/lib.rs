//! An in-process, multi-threaded MapReduce engine — the Hadoop stand-in
//! of BigDataBench-RS.
//!
//! The paper runs most of its offline-analytics workloads (Sort, Grep,
//! WordCount, Index, PageRank, K-means, Connected Components,
//! Collaborative Filtering, Naive Bayes) on Hadoop 1.0.2. This crate
//! implements the same execution model from scratch:
//!
//! * **map** — user function over input records, emitting `(key, value)`
//!   pairs into per-partition sort buffers;
//! * **combine** — optional map-side pre-aggregation applied when a
//!   buffer is sorted (and before any spill);
//! * **spill** — when a map task's buffer exceeds its memory budget the
//!   sorted run is serialized to a temporary file, exactly the mechanism
//!   that makes Sort degrade once inputs exceed memory (paper Figure 3-2);
//! * **shuffle / merge-sort** — spilled runs and in-memory runs are
//!   merged per partition;
//! * **reduce** — user function over each key group.
//!
//! Kernels are written once, generically over [`bdb_archsim::Probe`]:
//! [`Engine::run`] executes in parallel with [`bdb_archsim::NullProbe`]
//! for throughput measurements, while [`Engine::run_traced`] executes
//! single-threaded against a machine simulator, additionally modeling the
//! framework's own instruction footprint (the "deep software stack" the
//! paper blames for big-data workloads' high L1I miss rates).
//!
//! # Example
//!
//! ```
//! use bdb_mapreduce::{Engine, Job, Emitter};
//! use bdb_archsim::Probe;
//!
//! struct WordCount;
//! impl Job for WordCount {
//!     type Input = String;
//!     type Key = String;
//!     type Value = u64;
//!     type Output = (String, u64);
//!
//!     fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, u64>, _p: &mut P) {
//!         for w in line.split_whitespace() {
//!             emit.emit(w.to_owned(), 1);
//!         }
//!     }
//!
//!     fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
//!         vec![values.into_iter().sum()]
//!     }
//!
//!     fn reduce<P: Probe + ?Sized>(&self, key: String, values: Vec<u64>, out: &mut Vec<(String, u64)>, _p: &mut P) {
//!         out.push((key, values.into_iter().sum()));
//!     }
//! }
//!
//! let engine = Engine::builder().threads(2).build();
//! let input = vec!["a b a".to_owned(), "b a".to_owned()];
//! let (mut out, stats) = engine.run(&WordCount, &input);
//! out.sort();
//! assert_eq!(out, vec![("a".to_owned(), 3), ("b".to_owned(), 2)]);
//! assert_eq!(stats.map_records, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod error;
pub mod job;
pub mod spill;
pub mod trace;

pub use bdb_profile::CriticalPathSummary;
pub use codec::Datum;
pub use engine::{Engine, EngineBuilder, JobStats};
pub use error::JobError;
pub use job::{Emitter, Job};
pub use trace::FrameworkModel;

/// Fault-injection site names consulted by the engine's parallel path
/// (traced runs are always fault-free). Pass these to a
/// [`bdb_faults::FaultPlan`] to target the matching crash point.
pub mod sites {
    /// Panic site checked at the start of every map-task attempt.
    pub const MAP_TASK: &str = "mapreduce.map.task";
    /// Straggle site checked at the start of every map-task attempt;
    /// a firing rule delays the attempt, inviting speculation.
    pub const MAP_STRAGGLER: &str = "mapreduce.map.straggler";
    /// Panic site checked at the start of every reduce-task attempt.
    pub const REDUCE_TASK: &str = "mapreduce.reduce.task";
    /// I/O site covering every spill-file write.
    pub const SPILL_WRITE: &str = "mapreduce.spill.write";
    /// I/O site covering every spill-file read during the shuffle.
    pub const SPILL_READ: &str = "mapreduce.spill.read";
}
