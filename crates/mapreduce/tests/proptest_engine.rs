//! Property-based tests: the engine against naive reference
//! implementations, the codec against round-tripping, and the merge
//! against plain sorting.

use bdb_archsim::Probe;
use bdb_mapreduce::spill::merge_runs;
use bdb_mapreduce::{Datum, Emitter, Engine, Job};
use proptest::prelude::*;
use std::collections::HashMap;

struct WordCount;
impl Job for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, u64>, _p: &mut P) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

struct SortJob;
impl Job for SortJob {
    type Input = u64;
    type Key = u64;
    type Value = ();
    type Output = u64;
    fn map<P: Probe + ?Sized>(&self, x: &u64, emit: &mut Emitter<u64, ()>, _p: &mut P) {
        emit.emit(*x, ());
    }
    fn reduce<P: Probe + ?Sized>(&self, k: u64, vs: Vec<()>, out: &mut Vec<u64>, _p: &mut P) {
        out.extend(std::iter::repeat_n(k, vs.len()));
    }
}

fn word_lines() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec("[a-e]{1,3}", 0..12).prop_map(|ws| ws.join(" ")),
        0..40,
    )
}

proptest! {
    /// WordCount through the engine equals a naive HashMap count,
    /// regardless of thread/reducer configuration.
    #[test]
    fn wordcount_matches_naive(
        lines in word_lines(),
        threads in 1usize..5,
        reducers in 1usize..5,
    ) {
        let engine = Engine::builder().threads(threads).reducers(reducers).build();
        let (out, _) = engine.run(&WordCount, &lines);
        let mut got: HashMap<String, u64> = HashMap::new();
        for (k, v) in out {
            // Each key appears exactly once across all partitions.
            prop_assert!(got.insert(k, v).is_none());
        }
        let mut expect: HashMap<String, u64> = HashMap::new();
        for line in &lines {
            for w in line.split_whitespace() {
                *expect.entry(w.to_owned()).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Sort with a single reducer totally sorts any input, even when the
    /// buffer is tiny enough to force spilling.
    #[test]
    fn sort_is_total_and_complete(
        input in proptest::collection::vec(any::<u64>(), 0..300),
        buffer in 256usize..4096,
    ) {
        let engine = Engine::builder().threads(2).reducers(1).map_buffer_bytes(buffer).build();
        let (out, stats) = engine.run(&SortJob, &input);
        let mut expect = input.clone();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
        prop_assert_eq!(stats.map_records, input.len() as u64);
        prop_assert_eq!(stats.output_records, input.len() as u64);
    }

    /// Spilling and non-spilling configurations agree.
    #[test]
    fn spill_invariance(input in proptest::collection::vec(any::<u32>(), 1..200)) {
        let input: Vec<u64> = input.into_iter().map(u64::from).collect();
        let spilly = Engine::builder().threads(1).reducers(2).map_buffer_bytes(1024).build();
        let roomy = Engine::builder().threads(1).reducers(2).map_buffer_bytes(64 << 20).build();
        let (mut a, sa) = spilly.run(&SortJob, &input);
        let (mut b, sb) = roomy.run(&SortJob, &input);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(sa.spills >= sb.spills);
    }

    /// merge_runs over pre-sorted runs equals sorting the concatenation.
    #[test]
    fn merge_equals_sort(runs in proptest::collection::vec(
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..50), 0..6)
    ) {
        let runs: Vec<Vec<(u32, u32)>> = runs
            .into_iter()
            .map(|mut r| {
                r.sort_by_key(|p| p.0);
                r
            })
            .collect();
        let mut expect: Vec<(u32, u32)> = runs.iter().flatten().copied().collect();
        let merged = merge_runs(runs);
        expect.sort_by_key(|p| p.0);
        let merged_keys: Vec<u32> = merged.iter().map(|p| p.0).collect();
        let expect_keys: Vec<u32> = expect.iter().map(|p| p.0).collect();
        prop_assert_eq!(merged_keys, expect_keys);
    }

    /// Codec: tuples of common types round-trip through encode/decode.
    #[test]
    fn codec_roundtrip(
        k in "[a-z]{0,20}",
        v in any::<u64>(),
        f in any::<f64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = Vec::new();
        (k.clone(), v).encode(&mut buf);
        f.encode(&mut buf);
        bytes.encode(&mut buf);
        let mut s = buf.as_slice();
        let pair = <(String, u64)>::decode(&mut s).expect("pair");
        prop_assert_eq!(pair.0, k);
        prop_assert_eq!(pair.1, v);
        let f2 = f64::decode(&mut s).expect("float");
        prop_assert_eq!(f.to_bits(), f2.to_bits());
        prop_assert_eq!(Vec::<u8>::decode(&mut s).expect("bytes"), bytes);
        prop_assert!(s.is_empty());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_garbage_is_safe(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut s = garbage.as_slice();
        let _ = String::decode(&mut s);
        let mut s = garbage.as_slice();
        let _ = <(u64, Vec<u8>)>::decode(&mut s);
        let mut s = garbage.as_slice();
        let _ = Vec::<u32>::decode(&mut s);
    }
}
