//! Fault-injection integration tests: with injected spill-write
//! errors, task panics, and stragglers, the engine must still produce
//! output byte-identical to a fault-free run, reporting its retries and
//! speculation in `JobStats` — the Hadoop recovery story end to end.

use bdb_faults::FaultPlan;
use bdb_mapreduce::{sites, Emitter, Engine, Job, JobError};
use bdb_telemetry::MetricsRegistry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

struct WordCount;
impl Job for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn map<P: bdb_archsim::Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<String, u64>,
        _p: &mut P,
    ) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: bdb_archsim::Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

fn lines(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("alpha beta-{} gamma delta epsilon", i % 23)).collect()
}

/// Four map tasks, spill-heavy, three reducers.
fn engine(faults: FaultPlan) -> Engine {
    Engine::builder().threads(4).reducers(3).map_buffer_bytes(1024).faults(faults).build()
}

#[test]
fn wordcount_survives_spill_error_panic_and_straggler() {
    let input = lines(400);
    let (clean, clean_stats) = engine(FaultPlan::disabled()).run(&WordCount, &input);
    assert!(clean_stats.spills > 0, "fixture must exercise the spill path");
    assert_eq!(clean_stats.map_retries, 0);

    let fault_metrics = MetricsRegistry::new();
    let plan = FaultPlan::builder(42)
        .io_error_nth(sites::SPILL_WRITE, 0)
        .panic_nth(sites::MAP_TASK, 1)
        .straggle_nth(sites::MAP_STRAGGLER, 3, Duration::from_millis(500))
        .metrics(fault_metrics.clone())
        .build();
    let engine_metrics = MetricsRegistry::new();
    let faulty_engine = Engine::builder()
        .threads(4)
        .reducers(3)
        .map_buffer_bytes(1024)
        .faults(plan.clone())
        .metrics(engine_metrics.clone())
        .build();
    let (faulty, stats) = faulty_engine.run(&WordCount, &input);

    assert_eq!(faulty, clean, "recovered run must be byte-identical to the fault-free run");
    assert!(stats.map_retries >= 2, "io error + panic each force a retry: {stats:?}");
    assert!(stats.speculative_tasks >= 1, "the straggler must be speculated: {stats:?}");
    assert!(stats.speculative_wins >= 1, "the fast copy must win: {stats:?}");
    assert!(stats.retry_backoff > Duration::ZERO, "virtual backoff accrued");
    assert!(plan.injected() >= 3, "all three rules fired: {}", plan.injected());
    assert!(plan.recovered() >= 2, "retries and the speculative win recovered");
    assert!(
        fault_metrics.counter(&format!("fault.injected.{}", sites::SPILL_WRITE)).get() >= 1,
        "injections counted per site"
    );
    assert!(engine_metrics.counter("mapreduce.map_retries").get() >= 2);
    assert!(engine_metrics.counter("mapreduce.speculative_tasks").get() >= 1);
}

#[test]
fn reduce_retries_on_spill_read_error_and_panic() {
    let input = lines(300);
    let (clean, _) = engine(FaultPlan::disabled()).run(&WordCount, &input);

    let plan = FaultPlan::builder(7)
        .io_error_nth(sites::SPILL_READ, 0)
        .panic_nth(sites::REDUCE_TASK, 1)
        .build();
    let (faulty, stats) = engine(plan.clone()).run(&WordCount, &input);
    assert_eq!(faulty, clean);
    assert!(stats.reduce_retries >= 2, "read error + panic each force a retry: {stats:?}");
    assert_eq!(plan.recovered(), plan.injected(), "every injection was recovered from");
}

#[test]
fn unrecoverable_panic_surfaces_as_structured_error() {
    let plan = FaultPlan::builder(9).panic_p(sites::MAP_TASK, 1.0).build();
    let e = Engine::builder().threads(2).reducers(2).max_task_attempts(2).faults(plan).build();
    let err = e.try_run(&WordCount, &lines(40)).unwrap_err();
    match err {
        JobError::TaskPanicked { attempt, ref message, .. } => {
            assert_eq!(attempt, 1, "budget of 2 ⇒ the final attempt is #1");
            assert!(message.contains("injected fault"), "payload preserved: {message}");
        }
        ref other => panic!("expected TaskPanicked, got {other}"),
    }
}

#[test]
fn user_code_panic_propagates_as_task_panicked() {
    struct Faulty;
    impl Job for Faulty {
        type Input = u64;
        type Key = u64;
        type Value = ();
        type Output = u64;
        fn map<P: bdb_archsim::Probe + ?Sized>(
            &self,
            x: &u64,
            emit: &mut Emitter<u64, ()>,
            _p: &mut P,
        ) {
            assert!(*x != 13, "unlucky record");
            emit.emit(*x, ());
        }
        fn reduce<P: bdb_archsim::Probe + ?Sized>(
            &self,
            key: u64,
            _v: Vec<()>,
            out: &mut Vec<u64>,
            _p: &mut P,
        ) {
            out.push(key);
        }
    }
    let e = Engine::builder().threads(2).reducers(1).max_task_attempts(2).build();
    let inputs: Vec<u64> = (0..40).collect();
    let err = e.try_run(&Faulty, &inputs).unwrap_err();
    assert!(
        matches!(err, JobError::TaskPanicked { .. }),
        "user panics become structured errors, not poisoned joins: {err}"
    );
}

#[test]
fn run_panics_with_the_structured_message() {
    let plan = FaultPlan::builder(3).panic_p(sites::MAP_TASK, 1.0).build();
    let e = Engine::builder().threads(2).reducers(1).max_task_attempts(1).faults(plan).build();
    let input = lines(10);
    let payload = catch_unwind(AssertUnwindSafe(|| e.run(&WordCount, &input))).unwrap_err();
    let message = payload.downcast_ref::<String>().expect("panic carries a message");
    assert!(message.contains("mapreduce job failed"), "got: {message}");
    assert!(message.contains("panicked on attempt 0"), "got: {message}");
}

#[test]
fn unrecoverable_spill_error_reports_task_io() {
    // Every spill write fails: the spill-heavy engine cannot finish.
    let plan = FaultPlan::builder(5).io_error_p(sites::SPILL_WRITE, 1.0).build();
    let e = Engine::builder()
        .threads(2)
        .reducers(2)
        .map_buffer_bytes(1024)
        .max_task_attempts(2)
        .faults(plan)
        .build();
    let err = e.try_run(&WordCount, &lines(200)).unwrap_err();
    match err {
        JobError::TaskIo { ref source, .. } => assert!(bdb_faults::is_injected(source)),
        ref other => panic!("expected TaskIo, got {other}"),
    }
}

#[test]
fn panicking_tasks_leave_well_formed_spans() {
    // A map task that panics unwinds through its SpanGuard, which must
    // still record a closed span (with a duration) rather than leaving
    // the stream ill-formed, and the profiler must tolerate whatever
    // instants the stream contains without unwrapping `dur_us`.
    let telemetry = bdb_telemetry::SpanRecorder::enabled();
    telemetry.instant("test", "job-submitted"); // instant: dur_us = None
    let plan = FaultPlan::builder(11).panic_nth(sites::MAP_TASK, 0).build();
    let e =
        Engine::builder().threads(2).reducers(2).faults(plan).telemetry(telemetry.clone()).build();
    let input = lines(60);
    let (out, stats) = e.run(&WordCount, &input);
    assert!(!out.is_empty());
    assert!(stats.map_retries >= 1, "the panic forced a retry: {stats:?}");

    let events = telemetry.events();
    let map_tasks: Vec<_> = events.iter().filter(|ev| ev.name == "map-task").collect();
    assert!(map_tasks.len() >= 3, "retry adds an attempt: {}", map_tasks.len());
    for ev in &map_tasks {
        assert!(ev.dur_us.is_some(), "panicked attempts still close their span: {ev:?}");
    }

    // The analyzer skips the instant instead of unwrapping it, and the
    // run still profiles end to end.
    let profile = bdb_profile::Profile::from_events(&events);
    assert_eq!(profile.forest.skipped, 1, "the instant is skipped, not fatal");
    let cp = stats.critical_path.expect("telemetry attached");
    assert!(cp.coverage > 0.9, "{cp:?}");
}

#[test]
fn disabled_plan_changes_nothing() {
    let input = lines(100);
    let (a, sa) = engine(FaultPlan::disabled()).run(&WordCount, &input);
    let (b, sb) = engine(FaultPlan::builder(1).build()).run(&WordCount, &input);
    assert_eq!(a, b);
    assert_eq!(sa.map_records, sb.map_records);
    assert_eq!(sb.map_retries, 0);
    assert_eq!(sb.speculative_tasks, 0);
}
