//! Criterion benches for BDGS: generator throughput per data flavor
//! (the "volume" V — generation must outpace the workloads consuming
//! it).

use bdb_datagen::text::TextGenerator;
use bdb_datagen::{
    EcommerceGenerator, GraphGenerator, ResumeGenerator, ReviewGenerator, RmatParams,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(20);

    group.throughput(Throughput::Bytes(256 * 1024));
    group.bench_function("text_256KiB", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            TextGenerator::wikipedia(seed).corpus(256 * 1024)
        })
    });

    group.throughput(Throughput::Elements(4096));
    group.bench_function("rmat_web_4k_nodes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            GraphGenerator::new(RmatParams::google_web(), seed).generate(4096)
        })
    });

    group.throughput(Throughput::Elements(5000));
    group.bench_function("ecommerce_5k_orders", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            EcommerceGenerator::new(seed).generate(5000)
        })
    });

    group.throughput(Throughput::Elements(5000));
    group.bench_function("reviews_5k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ReviewGenerator::new(seed).generate(5000)
        })
    });

    group.throughput(Throughput::Elements(5000));
    group.bench_function("resumes_5k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ResumeGenerator::new(seed).generate(5000)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
