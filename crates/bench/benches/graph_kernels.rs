//! Criterion benches for the graph kernels (BFS, PageRank, Connected
//! Components) over R-MAT graphs fitted to the paper's seeds.

use bdb_datagen::{GraphGenerator, RmatParams};
use bdb_graph::{bfs, cc, pagerank, CsrGraph, PageRankConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn web_graph(vertices: u32) -> CsrGraph {
    let g = GraphGenerator::new(RmatParams::google_web(), 7).generate(vertices);
    CsrGraph::from_edges(g.nodes, &g.edges)
}

fn social_graph(vertices: u32) -> CsrGraph {
    let g = GraphGenerator::new(RmatParams::facebook_social(), 7).generate(vertices);
    CsrGraph::from_edges(g.nodes, &g.edges)
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);

    for scale in [1u32 << 12, 1 << 14] {
        let g = web_graph(scale);
        group.throughput(Throughput::Elements(g.edges()));
        group.bench_with_input(BenchmarkId::new("bfs_serial", scale), &g, |b, g| {
            b.iter(|| bfs::bfs(g, 0))
        });
        group.bench_with_input(BenchmarkId::new("bfs_partitioned4", scale), &g, |b, g| {
            b.iter(|| bfs::bfs_partitioned(g, 0, 4))
        });
        group.bench_with_input(BenchmarkId::new("pagerank", scale), &g, |b, g| {
            b.iter(|| {
                pagerank::pagerank(g, PageRankConfig { max_iterations: 10, ..Default::default() })
            })
        });
        let s = social_graph(scale / 4);
        group.bench_with_input(BenchmarkId::new("cc_label_prop", scale / 4), &s, |b, s| {
            b.iter(|| cc::label_propagation(s))
        });
        group.bench_with_input(BenchmarkId::new("cc_union_find", scale / 4), &s, |b, s| {
            b.iter(|| cc::connected_components(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
