//! Criterion benches for the three online-service request handlers
//! (paper Table 6 rows 11, 14, 17): per-request cost of the Nutch-,
//! Olio- and Rubis-style servers.

use bdb_archsim::NullProbe;
use bdb_serving::auction::AuctionServer;
use bdb_serving::search::SearchServer;
use bdb_serving::server::Server;
use bdb_serving::social::SocialServer;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_services(c: &mut Criterion) {
    let mut group = c.benchmark_group("services");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));

    let mut search = SearchServer::build(2000, 1);
    let mut rng = StdRng::seed_from_u64(2);
    group.bench_function("nutch_request", |b| {
        b.iter(|| {
            let req = search.sample_request(&mut rng);
            search.handle(&req, &mut NullProbe)
        })
    });

    let mut social = SocialServer::build(2000, 20, 3);
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("olio_request", |b| {
        b.iter(|| {
            let req = social.sample_request(&mut rng);
            social.handle(&req, &mut NullProbe)
        })
    });

    let mut auction = AuctionServer::build(5000, 20, 1000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    group.bench_function("rubis_request", |b| {
        b.iter(|| {
            let req = auction.sample_request(&mut rng);
            auction.handle(&req, &mut NullProbe)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_services);
criterion_main!(benches);
