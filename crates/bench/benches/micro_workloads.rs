//! Criterion benches for the micro-benchmark workloads (paper Table 6
//! rows 1–4): native throughput of Sort, Grep, WordCount and BFS at the
//! baseline and 8x inputs. The figure-level sweeps live in the
//! `reproduce` binary; these benches track substrate performance.

use bigdatabench::{Suite, WorkloadId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_micro(c: &mut Criterion) {
    let suite = Suite::with_fraction(1.0 / 8.0);
    let mut group = c.benchmark_group("micro");
    group.sample_size(10);
    for id in [WorkloadId::Sort, WorkloadId::Grep, WorkloadId::WordCount, WorkloadId::Bfs] {
        for mult in [1u32, 8] {
            // Report throughput in input bytes (DPS, the paper's metric).
            let probe_run = suite.run_native(id, mult);
            group.throughput(Throughput::Bytes(probe_run.input_bytes.max(1)));
            group.bench_with_input(
                BenchmarkId::new(id.name(), format!("{mult}x")),
                &mult,
                |b, &m| b.iter(|| suite.run_native(id, m)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
