//! Criterion benches for the architecture simulator itself: events per
//! second through the cache hierarchy (the cost of characterization).

use bdb_archsim::{MachineConfig, MachineSim};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("archsim");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("sequential_loads_10k", |b| {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                m.data_access(base + i * 64, 8, false);
            }
            base += 10_000 * 64;
        })
    });

    group.bench_function("random_loads_10k", |b| {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        let mut x = 0x12345u64;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.data_access(x % (1 << 30), 8, false);
            }
        })
    });

    group.bench_function("ifetch_10k", |b| {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        let region = bdb_archsim::CodeRegion::sized(0x400000, 4096);
        b.iter(|| {
            for _ in 0..10_000 {
                m.ifetch(region);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
