//! Criterion benches for the relational-query workloads (paper Table 6
//! rows 8–10) over Table-3-shaped data — row-engine oracle vs. the
//! vectorized columnar engine.

use bdb_sql::exec::{aggregate, hash_join, select, Aggregation};
use bdb_sql::expr::{col, lit};
use bdb_sql::{kernel, ColumnarTable};
use bigdatabench::workloads::query::build_tables;
use bigdatabench::RunScale;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_queries(c: &mut Criterion) {
    let scale = RunScale::baseline();
    let (orders, items) = build_tables(&scale, 10_000);
    let bytes = (orders.byte_size() + items.byte_size()) as u64;
    let orders_c = ColumnarTable::from_table(&orders);
    let items_c = ColumnarTable::from_table(&items);

    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("select-row", |b| {
        b.iter(|| {
            select(&items, &col("GOODS_PRICE").gt(lit(50.0)), &["ITEM_ID", "GOODS_AMOUNT"])
                .expect("query")
        })
    });
    group.bench_function("select-columnar", |b| {
        b.iter(|| {
            kernel::select(
                &items_c,
                &col("GOODS_PRICE").gt(lit(50.0)),
                &["ITEM_ID", "GOODS_AMOUNT"],
            )
            .expect("query")
        })
    });
    group.bench_function("aggregate-row", |b| {
        b.iter(|| {
            aggregate(&items, "GOODS_ID", &[Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")])
                .expect("query")
        })
    });
    group.bench_function("aggregate-columnar", |b| {
        b.iter(|| {
            kernel::aggregate(
                &items_c,
                "GOODS_ID",
                &[Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")],
            )
            .expect("query")
        })
    });
    group.bench_function("join-row", |b| {
        b.iter(|| hash_join(&orders, "ORDER_ID", &items, "ORDER_ID").expect("join"))
    });
    group.bench_function("join-columnar", |b| {
        b.iter(|| kernel::hash_join(&orders_c, "ORDER_ID", &items_c, "ORDER_ID").expect("join"))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
