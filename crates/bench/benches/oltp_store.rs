//! Criterion benches for the LSM store: the raw operation costs behind
//! the Cloud OLTP workloads (paper Table 6 rows 5–7).

use bdb_kvstore::{Store, StoreConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fresh_store(tag: &str, preload: u32) -> (Store, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("bdb-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = Store::open_with(
        &dir,
        StoreConfig { memtable_flush_bytes: 4 << 20, max_tables: 8, ..Default::default() },
    )
    .expect("open store");
    for i in 0..preload {
        store.put(format!("row{i:08}").into_bytes(), vec![b'v'; 100]).expect("preload");
    }
    store.flush().expect("flush");
    (store, dir)
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("oltp");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    let (mut store, dir) = fresh_store("read", 20_000);
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("read", |b| {
        b.iter(|| {
            let key = format!("row{:08}", rng.gen_range(0..20_000u32));
            store.get(key.as_bytes()).expect("get")
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    let (mut store, dir) = fresh_store("write", 1000);
    let mut i = 1_000_000u64;
    group.bench_function("write", |b| {
        b.iter(|| {
            i += 1;
            store.put(format!("row{i:012}").into_bytes(), vec![b'w'; 100]).expect("put")
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    let (mut store, dir) = fresh_store("scan", 20_000);
    let mut rng = StdRng::seed_from_u64(3);
    group.throughput(Throughput::Elements(100));
    group.bench_function("scan100", |b| {
        b.iter(|| {
            let start = rng.gen_range(0..19_000u32);
            store
                .scan(
                    format!("row{start:08}").as_bytes(),
                    format!("row{:08}", start + 100).as_bytes(),
                )
                .expect("scan")
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
