//! The paper's published reference numbers, and shape checks comparing
//! our measurements against them.
//!
//! Absolute values cannot transfer (the paper measured a 14-node Xeon
//! E5645 cluster with perf counters; we run a scaled-down simulator),
//! so EXPERIMENTS.md compares *shapes*: orderings, ratios and
//! crossovers. [`shape_checks`] encodes every headline claim as a
//! pass/fail predicate over our measured figures.

use bigdatabench::characterize::{Fig2Row, Fig3Row, Fig4Row, Fig5Row, Fig6Row};

/// Paper values quoted in Section 6 (Figure 4 discussion).
pub mod fig4 {
    /// Average integer-to-FP instruction ratio of BigDataBench.
    pub const BIGDATA_INT_FP_AVG: f64 = 75.0;
    /// Maximum (Grep).
    pub const BIGDATA_INT_FP_MAX: f64 = 179.0;
    /// Minimum (Naive Bayes).
    pub const BIGDATA_INT_FP_MIN: f64 = 10.0;
    /// PARSEC / HPCC / SPECFP / SPECINT averages.
    pub const PARSEC: f64 = 1.4;
    /// HPCC average.
    pub const HPCC: f64 = 1.0;
    /// SPECFP average.
    pub const SPECFP: f64 = 0.67;
    /// SPECINT average.
    pub const SPECINT: f64 = 409.0;
}

/// Paper values for Figure 5 (operation intensity).
pub mod fig5 {
    /// BigDataBench FP intensity on E5310 / E5645.
    pub const BIGDATA_FP: (f64, f64) = (0.007, 0.05);
    /// PARSEC FP intensity on E5310 / E5645.
    pub const PARSEC_FP: (f64, f64) = (1.1, 1.2);
    /// HPCC FP intensity on E5310 / E5645.
    pub const HPCC_FP: (f64, f64) = (0.37, 3.3);
    /// SPECFP intensity on E5310 / E5645.
    pub const SPECFP_FP: (f64, f64) = (0.34, 1.4);
    /// BigDataBench integer intensity on E5310 / E5645.
    pub const BIGDATA_INT: (f64, f64) = (0.5, 1.8);
}

/// Paper values for Figure 6 (memory hierarchy MPKI averages).
pub mod fig6 {
    /// Average L1I MPKI: BigDataBench vs HPCC/PARSEC/SPECFP/SPECINT.
    pub const L1I: [(f64, &str); 5] =
        [(23.0, "BigDataBench"), (0.3, "HPCC"), (2.9, "PARSEC"), (3.1, "SPECFP"), (5.4, "SPECINT")];
    /// Average L2 MPKI per suite, same order.
    pub const L2: [(f64, &str); 5] = [
        (21.0, "BigDataBench"),
        (4.8, "HPCC"),
        (5.1, "PARSEC"),
        (14.0, "SPECFP"),
        (16.0, "SPECINT"),
    ];
    /// Average L3 MPKI per suite, same order.
    pub const L3: [(f64, &str); 5] =
        [(1.5, "BigDataBench"), (2.4, "HPCC"), (2.3, "PARSEC"), (1.4, "SPECFP"), (1.9, "SPECINT")];
    /// ITLB / DTLB averages for BigDataBench.
    pub const BIGDATA_ITLB: f64 = 0.54;
    /// DTLB average for BigDataBench.
    pub const BIGDATA_DTLB: f64 = 2.5;
    /// BFS's outlier L2 MPKI.
    pub const BFS_L2: f64 = 56.0;
    /// BFS's outlier DTLB MPKI.
    pub const BFS_DTLB: f64 = 14.0;
}

/// Paper values for the volume-sensitivity findings (Section 6.2).
pub mod volume {
    /// Grep's MIPS gap between baseline and 32X.
    pub const GREP_MIPS_GAP: f64 = 2.9;
    /// K-means' L3 MPKI gap between small and large inputs.
    pub const KMEANS_L3_GAP: f64 = 2.5;
}

/// One shape claim evaluated against our measurements.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Short identifier, e.g. `"S1-fp-intensity-gap"`.
    pub id: &'static str,
    /// Human-readable description of the paper's claim.
    pub claim: &'static str,
    /// What we measured, formatted.
    pub measured: String,
    /// Whether the shape holds in our reproduction.
    pub pass: bool,
}

fn find<'a>(rows: &'a [Fig4Row], name: &str) -> Option<&'a Fig4Row> {
    rows.iter().find(|r| r.name == name)
}

fn find5<'a>(rows: &'a [Fig5Row], name: &str) -> Option<&'a Fig5Row> {
    rows.iter().find(|r| r.name == name)
}

fn find6<'a>(rows: &'a [Fig6Row], name: &str) -> Option<&'a Fig6Row> {
    rows.iter().find(|r| r.name == name)
}

/// Evaluates every headline shape claim against the computed figures.
pub fn shape_checks(
    fig2: &[Fig2Row],
    fig3: &[Fig3Row],
    fig4: &[Fig4Row],
    fig5: &[Fig5Row],
    fig6: &[Fig6Row],
) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();

    // S1: FP operation intensity of BigDataBench far below HPCC/PARSEC/
    // SPECFP on the E5645 (paper: two orders of magnitude).
    if let (Some(bd), Some(hpcc), Some(parsec), Some(specfp)) = (
        find5(fig5, "Avg_BigData"),
        find5(fig5, "Avg_HPCC"),
        find5(fig5, "Avg_Parsec"),
        find5(fig5, "SPECFP"),
    ) {
        let traditional_min = hpcc.fp_e5645.min(parsec.fp_e5645).min(specfp.fp_e5645);
        checks.push(ShapeCheck {
            id: "S1-fp-intensity-gap",
            claim: "BigDataBench FP intensity ≪ traditional suites (E5645)",
            measured: format!(
                "BigData {:.4} vs traditional min {:.3} ({}x gap)",
                bd.fp_e5645,
                traditional_min,
                (traditional_min / bd.fp_e5645.max(1e-12)) as u64
            ),
            // The paper reports a two-order gap; at library scale the
            // compute-to-DRAM proportions compress, so we require a
            // clear (>3x) gap and record the measured factor.
            pass: bd.fp_e5645 * 3.0 < traditional_min,
        });
    }

    // S2: int:fp ratio of BigDataBench ≫ HPCC/PARSEC/SPECFP, but below
    // SPECINT; Grep near the top, Bayes near the bottom of the suite.
    if let (Some(bd), Some(parsec), Some(specint), Some(grep), Some(bayes)) = (
        find(fig4, "Avg_BigData"),
        find(fig4, "Avg_Parsec"),
        find(fig4, "SPECINT"),
        find(fig4, "Grep"),
        find(fig4, "Naive Bayes"),
    ) {
        checks.push(ShapeCheck {
            id: "S2-int-fp-ratio",
            claim: "int:fp ratio BigData ≫ PARSEC; SPECINT highest; Grep > Bayes",
            measured: format!(
                "BigData {:.0}, PARSEC {:.1}, SPECINT {:.0}, Grep {:.0}, Bayes {:.0}",
                bd.int_fp_ratio,
                parsec.int_fp_ratio,
                specint.int_fp_ratio,
                grep.int_fp_ratio,
                bayes.int_fp_ratio
            ),
            pass: bd.int_fp_ratio > parsec.int_fp_ratio * 10.0
                && specint.int_fp_ratio > bd.int_fp_ratio
                && grep.int_fp_ratio > bayes.int_fp_ratio,
        });
    }

    // S3: L1I MPKI of BigDataBench ≥ 4x every traditional suite.
    if let Some(bd) = find6(fig6, "Avg_BigData") {
        let max_trad = ["Avg_HPCC", "Avg_Parsec", "SPECFP", "SPECINT"]
            .iter()
            .filter_map(|n| find6(fig6, n))
            .map(|r| r.l1i_mpki)
            .fold(0.0f64, f64::max);
        checks.push(ShapeCheck {
            id: "S3-l1i-mpki",
            claim: "avg L1I MPKI of BigDataBench ≥ 4x traditional suites",
            measured: format!("BigData {:.1} vs max traditional {:.2}", bd.l1i_mpki, max_trad),
            pass: bd.l1i_mpki >= 4.0 * max_trad && bd.l1i_mpki > 5.0,
        });
    }

    // S4: L3 caches are effective — BigDataBench avg L3 MPKI below
    // HPCC and PARSEC (paper: 1.5 vs 2.4 / 2.3).
    if let (Some(bd), Some(hpcc), Some(parsec)) =
        (find6(fig6, "Avg_BigData"), find6(fig6, "Avg_HPCC"), find6(fig6, "Avg_Parsec"))
    {
        checks.push(ShapeCheck {
            id: "S4-l3-effective",
            claim: "avg L3 MPKI of BigDataBench below HPCC and PARSEC",
            measured: format!(
                "BigData {:.2} vs HPCC {:.2}, PARSEC {:.2}",
                bd.l3_mpki, hpcc.l3_mpki, parsec.l3_mpki
            ),
            pass: bd.l3_mpki < hpcc.l3_mpki && bd.l3_mpki < parsec.l3_mpki,
        });
    }

    // S5: volume sensitivity — MIPS and L3 MPKI shift materially across
    // the sweep for at least some workloads (paper: Grep 2.9x MIPS gap,
    // K-means 2.5x L3 gap).
    {
        let max_mips_gap =
            WORKLOADS.iter().filter_map(|w| mips_gap(fig3, w)).fold(0.0f64, f64::max);
        // K-means L3 gap across the full sweep (fig3 supporting data),
        // falling back to the fig2 small/large pair; a +0.05 MPKI floor
        // avoids 0/0 when both ends are cache-resident.
        let kmeans_l3: Vec<f64> = fig3
            .iter()
            .filter(|r| r.workload == "K-means")
            .map(|r| r.l3_mpki)
            .chain(
                fig2.iter()
                    .filter(|r| r.workload == "K-means")
                    .flat_map(|r| [r.small_l3_mpki, r.large_l3_mpki]),
            )
            .collect();
        let kmeans_gap = if kmeans_l3.is_empty() {
            0.0
        } else {
            let max = kmeans_l3.iter().cloned().fold(f64::MIN, f64::max);
            let min = kmeans_l3.iter().cloned().fold(f64::MAX, f64::min);
            (max + 0.05) / (min + 0.05)
        };
        checks.push(ShapeCheck {
            id: "S5-volume-sensitivity",
            claim: "data volume shifts micro-arch metrics (≥2x gaps exist)",
            measured: format!(
                "max MIPS gap {:.1}x, K-means L3 MPKI gap {:.1}x",
                max_mips_gap, kmeans_gap
            ),
            pass: max_mips_gap >= 1.5 && kmeans_gap >= 1.5,
        });
    }

    // S6: Sort's user-perceivable performance degrades at large inputs
    // (spill-to-disk): its speedup at 32X falls below the sweep's peak.
    {
        let sort: Vec<(u32, f64)> = fig3
            .iter()
            .filter(|r| r.workload == "Sort")
            .map(|r| (r.multiplier, r.speedup))
            .collect();
        let sort_32 = sort.iter().find(|(m, _)| *m == 32).map(|(_, s)| *s).unwrap_or(f64::INFINITY);
        let peak = sort.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
        checks.push(ShapeCheck {
            id: "S6-sort-degrades",
            claim: "Sort DPS degrades once inputs exceed the sort buffer",
            measured: format!("Sort speedup at 32X = {sort_32:.2} vs sweep peak {peak:.2}"),
            pass: sort_32 < peak * 0.95 && peak.is_finite(),
        });
    }

    // S7: BFS is the data-side outlier (highest L2 MPKI and DTLB MPKI
    // among analytics workloads, paper: 56 and 14).
    if let Some(bfs) = find6(fig6, "BFS") {
        let analytics_median = median(
            fig6.iter()
                .filter(|r| {
                    ["Sort", "Grep", "WordCount", "K-means", "PageRank"].contains(&r.name.as_str())
                })
                .map(|r| r.dtlb_mpki)
                .collect(),
        );
        checks.push(ShapeCheck {
            id: "S7-bfs-outlier",
            claim: "BFS has outlier data-side misses (DTLB ≫ other analytics)",
            measured: format!(
                "BFS DTLB {:.2} vs analytics median {:.2}",
                bfs.dtlb_mpki, analytics_median
            ),
            pass: bfs.dtlb_mpki > analytics_median * 2.0,
        });
    }

    // S8: FP intensity is higher on the E5645 than the E5310 for
    // BigDataBench (L3 absorbs traffic; paper 0.007 → 0.05).
    if let Some(bd) = find5(fig5, "Avg_BigData") {
        checks.push(ShapeCheck {
            id: "S8-l3-raises-intensity",
            claim: "BigDataBench FP intensity higher on E5645 than E5310",
            measured: format!("E5310 {:.5} vs E5645 {:.5}", bd.fp_e5310, bd.fp_e5645),
            pass: bd.fp_e5645 > bd.fp_e5310,
        });
    }

    // S9: integer intensity same order of magnitude across suites.
    if let (Some(bd), Some(hpcc)) = (find5(fig5, "Avg_BigData"), find5(fig5, "Avg_HPCC")) {
        let ratio = bd.int_e5645 / hpcc.int_e5645.max(1e-12);
        checks.push(ShapeCheck {
            id: "S9-int-intensity-same-order",
            claim: "integer intensity of BigData within ~10x of HPCC",
            measured: format!("BigData {:.3} vs HPCC {:.3}", bd.int_e5645, hpcc.int_e5645),
            pass: (0.1..=10.0).contains(&ratio),
        });
    }

    checks
}

const WORKLOADS: [&str; 19] = [
    "Sort",
    "Grep",
    "WordCount",
    "BFS",
    "Read",
    "Write",
    "Scan",
    "Select Query",
    "Aggregate Query",
    "Join Query",
    "Nutch Server",
    "PageRank",
    "Index",
    "Olio Server",
    "K-means",
    "Connected Components",
    "Rubis Server",
    "Collaborative Filtering",
    "Naive Bayes",
];

fn mips_gap(fig3: &[Fig3Row], workload: &str) -> Option<f64> {
    let vals: Vec<f64> = fig3.iter().filter(|r| r.workload == workload).map(|r| r.mips).collect();
    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
    if vals.is_empty() || min <= 0.0 {
        None
    } else {
        Some(max / min)
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper_quotes() {
        assert_eq!(fig4::BIGDATA_INT_FP_AVG, 75.0);
        assert_eq!(fig6::L1I[0].0, 23.0);
        assert_eq!(volume::GREP_MIPS_GAP, 2.9);
    }

    #[test]
    fn checks_on_empty_inputs_are_partial_not_panicking() {
        let checks = shape_checks(&[], &[], &[], &[], &[]);
        // Only the checks that need no named rows survive.
        assert!(checks.len() >= 2);
        assert!(checks.iter().any(|c| c.id == "S5-volume-sensitivity"));
    }

    #[test]
    fn median_and_gap_helpers() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![]), 0.0);
        let rows = vec![
            Fig3Row {
                workload: "X".into(),
                multiplier: 1,
                mips: 100.0,
                speedup: 1.0,
                l3_mpki: 0.0,
            },
            Fig3Row {
                workload: "X".into(),
                multiplier: 32,
                mips: 300.0,
                speedup: 2.0,
                l3_mpki: 0.0,
            },
        ];
        assert_eq!(mips_gap(&rows, "X"), Some(3.0));
        assert_eq!(mips_gap(&rows, "Y"), None);
    }
}
