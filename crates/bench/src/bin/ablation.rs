//! Ablation studies for the design choices DESIGN.md calls out, plus
//! the paper's own stated future-work experiment (swapping the software
//! stack under test).
//!
//! ```text
//! ablation [--all] [--combiner] [--bloom] [--sortbuf] [--stack]
//!          [--cache-size] [--iter-cache]
//! ```
//!
//! | flag | question answered |
//! |---|---|
//! | `--combiner` | how much shuffle volume/time does the map-side combiner save? |
//! | `--bloom` | what do SSTable bloom filters buy the read path? |
//! | `--sortbuf` | how does the sort-buffer budget move the spill knee? |
//! | `--stack` | the paper's §6.3.2 plan: same workload, MapReduce vs in-memory stack — where do the L1I misses go? |
//! | `--cache-size` | what-if architecture study: L1I and L3 sizes vs a Hadoop workload (the paper's "cache area efficiency" lesson) |
//! | `--iter-cache` | what does `cache()` buy an iterative job on the in-memory engine? |

use bdb_archsim::{CacheConfig, MachineConfig, Probe, SimProbe};
use bdb_bench::table::{fnum, TextTable};
use bdb_dataflow::Dataset;
use bdb_kvstore::{Store, StoreConfig};
use bdb_mapreduce::{Emitter, Engine, FrameworkModel, Job};
use bigdatabench::{Suite, WorkloadId};
use std::time::Instant;

struct WordCountJob {
    combiner: bool,
}

impl Job for WordCountJob {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, u64>, _p: &mut P) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        if self.combiner {
            vec![values.into_iter().sum()]
        } else {
            values
        }
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

fn corpus(bytes: usize) -> Vec<String> {
    bdb_datagen::text::TextGenerator::wikipedia(7)
        .corpus(bytes)
        .lines()
        .map(str::to_owned)
        .collect()
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

fn ablate_combiner() {
    section("A1 — map-side combiner (WordCount, 4 MiB text)");
    let lines = corpus(4 << 20);
    let mut t = TextTable::new(&["combiner", "shuffle bytes", "combined pairs", "seconds"]);
    for combiner in [false, true] {
        let engine = Engine::builder().build();
        let start = Instant::now();
        let (_, stats) = engine.run(&WordCountJob { combiner }, &lines);
        t.row(&[
            combiner.to_string(),
            stats.shuffle_bytes.to_string(),
            stats.combined_pairs.to_string(),
            format!("{:.3}", start.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_bloom() {
    section("A2 — SSTable bloom filters (20k rows, 20k random reads, 50% misses)");
    let mut t = TextTable::new(&["bloom", "bloom skips", "seconds", "ops/s"]);
    for use_bloom in [true, false] {
        let dir =
            std::env::temp_dir().join(format!("bdb-abl-bloom-{use_bloom}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 256 << 10, max_tables: 64, use_bloom },
        )
        .expect("open");
        for i in 0..20_000u32 {
            store.put(format!("row{i:08}").into_bytes(), vec![b'x'; 64]).expect("put");
        }
        store.flush().expect("flush");
        use rand::Rng;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let start = Instant::now();
        for _ in 0..20_000 {
            // Half the lookups miss entirely: bloom's best case.
            let key = format!("row{:08}", rng.gen_range(0..40_000u32));
            store.get(key.as_bytes()).expect("get");
        }
        let secs = start.elapsed().as_secs_f64();
        t.row(&[
            use_bloom.to_string(),
            store.stats().bloom_skips.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", 20_000.0 / secs),
        ]);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("{}", t.render());
}

fn ablate_sortbuf() {
    section("A3 — sort-buffer budget vs spills (Sort, 16 MiB input)");
    let lines = corpus(16 << 20);
    struct SortJob;
    impl Job for SortJob {
        type Input = String;
        type Key = String;
        type Value = ();
        type Output = String;
        fn input_size(&self, line: &String) -> usize {
            line.len()
        }
        fn map<P: Probe + ?Sized>(&self, l: &String, e: &mut Emitter<String, ()>, _p: &mut P) {
            e.emit(l.clone(), ());
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            k: String,
            v: Vec<()>,
            out: &mut Vec<String>,
            _p: &mut P,
        ) {
            out.extend(std::iter::repeat_n(k, v.len()));
        }
    }
    let mut t = TextTable::new(&["buffer MiB", "spills", "spill MiB", "seconds"]);
    for buf_mib in [1usize, 4, 16, 64] {
        let engine = Engine::builder().map_buffer_bytes(buf_mib << 20).build();
        let start = Instant::now();
        let (_, stats) = engine.run(&SortJob, &lines);
        t.row(&[
            buf_mib.to_string(),
            stats.spills.to_string(),
            format!("{:.1}", stats.spill_bytes as f64 / (1 << 20) as f64),
            format!("{:.3}", start.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_stack() {
    section("A4 — software stack swap: WordCount on MapReduce vs in-memory dataflow");
    println!("(the paper's §6.3.2 planned experiment: do the L1I misses follow the stack?)\n");
    let lines = corpus(1 << 20);
    let machine = MachineConfig::xeon_e5645();

    // MapReduce stack, warm protocol as in the suite.
    let mut probe = SimProbe::new(machine.clone());
    let engine = Engine::builder().build();
    let mut fw = FrameworkModel::new();
    fw.warm(&mut probe);
    let warm = lines.len() / 5 + 1;
    engine.run_traced_with(&WordCountJob { combiner: true }, &lines[..warm], &mut probe, &mut fw);
    probe.reset_stats();
    engine.run_traced_with(&WordCountJob { combiner: true }, &lines, &mut probe, &mut fw);
    let hadoop = probe.finish();

    // In-memory dataflow stack, same workload and input.
    let mut probe = SimProbe::new(machine);
    let wordcount = |ds: &Dataset<String>| {
        ds.flat_map(|l| l.split_whitespace().map(str::to_owned).collect())
            .key_by(|w| w.clone())
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b)
    };
    let warm_ds = Dataset::from_vec(lines[..warm].to_vec());
    wordcount(&warm_ds).collect_traced(&mut probe);
    probe.reset_stats();
    let ds = Dataset::from_vec(lines.clone());
    let (counts, _) = wordcount(&ds).collect_traced(&mut probe);
    let dataflow = probe.finish();

    let mut t = TextTable::new(&["stack", "L1I MPKI", "L2 MPKI", "L3 MPKI", "ITLB MPKI", "IPC"]);
    for (name, r) in [("MapReduce (Hadoop-like)", &hadoop), ("in-memory dataflow", &dataflow)] {
        t.row(&[
            name.to_owned(),
            fnum(r.l1i_mpki()),
            fnum(r.l2_mpki()),
            fnum(r.l3_mpki()),
            fnum(r.itlb_mpki()),
            format!("{:.2}", r.ipc()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "({} distinct words; L1I MPKI ratio {:.1}x — the deep stack carries the misses)",
        counts.len(),
        hadoop.l1i_mpki() / dataflow.l1i_mpki().max(1e-9)
    );
}

fn ablate_cache_size() {
    section("A5 — what-if hierarchy: L1I and L3 size vs WordCount (Hadoop stack)");
    let suite = Suite::with_fraction(0.25);
    let mut t = TextTable::new(&["config", "L1I MPKI", "L2 MPKI", "L3 MPKI", "IPC"]);
    let base = MachineConfig::xeon_e5645();
    let variants: Vec<(String, MachineConfig)> = vec![
        ("E5645 (32K L1I, 12M L3)".into(), base.clone()),
        ("64K L1I".into(), {
            let mut m = base.clone();
            m.l1i = CacheConfig::new("L1I", 64 * 1024, 8, 64);
            m
        }),
        ("128K L1I".into(), {
            let mut m = base.clone();
            m.l1i = CacheConfig::new("L1I", 128 * 1024, 8, 64);
            m
        }),
        ("6M L3".into(), {
            let mut m = base.clone();
            m.l3 = Some(CacheConfig::new("L3", 6 * 1024 * 1024, 16, 64));
            m
        }),
        ("24M L3".into(), {
            let mut m = base.clone();
            m.l3 = Some(CacheConfig::new("L3", 24 * 1024 * 1024, 16, 64));
            m
        }),
    ];
    for (name, machine) in variants {
        let r = suite.run_traced(WorkloadId::WordCount, 1, machine);
        t.row(&[
            name,
            fnum(r.l1i_mpki()),
            fnum(r.l2_mpki()),
            fnum(r.l3_mpki()),
            format!("{:.2}", r.ipc()),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper's lesson: L1I capacity, not LLC capacity, is the lever for big data)");
}

fn ablate_iter_cache() {
    section("A6 — iterative caching on the in-memory engine (5-iteration rank loop)");
    let edges: Vec<(u32, u32)> = {
        let g = bdb_datagen::GraphGenerator::new(bdb_datagen::RmatParams::google_web(), 3)
            .generate(4096);
        g.edges
    };
    let mut t = TextTable::new(&["edges dataset", "records processed", "cache hits", "seconds"]);
    for cached in [false, true] {
        let base = Dataset::from_vec(edges.clone()).map(|e| *e);
        let edge_ds = if cached { base.cache() } else { base };
        let mut ranks: Vec<(u32, f64)> = (0..4096).map(|v| (v, 1.0)).collect();
        let start = Instant::now();
        let mut ctx = bdb_dataflow::ExecContext::new();
        for _ in 0..5 {
            let rank_ds = Dataset::from_vec(ranks.clone());
            let contribs =
                edge_ds.join(&rank_ds).map(|(_, (dst, r))| (*dst, *r)).reduce_by_key(|a, b| a + b);
            ranks = contribs.eval(&mut ctx).as_ref().clone();
        }
        t.row(&[
            if cached { "cached" } else { "uncached" }.to_owned(),
            ctx.stats.records_processed.to_string(),
            ctx.stats.cache_hits.to_string(),
            format!("{:.3}", start.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| {
        args.iter().any(|a| a == f) || args.iter().any(|a| a == "--all") || args.is_empty()
    };
    if has("--combiner") {
        ablate_combiner();
    }
    if has("--bloom") {
        ablate_bloom();
    }
    if has("--sortbuf") {
        ablate_sortbuf();
    }
    if has("--stack") {
        ablate_stack();
    }
    if has("--cache-size") {
        ablate_cache_size();
    }
    if has("--iter-cache") {
        ablate_iter_cache();
    }
}
