//! BDGS command-line tool: generate synthetic big data to files, like
//! the paper's Big Data Generator Suite ("users can specify their
//! preferred data size", Section 5).
//!
//! ```text
//! bdgs text    --bytes N           [--seed S] [--out PATH]
//! bdgs graph   --nodes N           [--kind web|social] [--seed S] [--out PATH]
//! bdgs table   --orders N          [--seed S] [--out-orders PATH] [--out-items PATH]
//! bdgs reviews --count N           [--seed S] [--out PATH] [--format labeled|ratings]
//! bdgs resumes --count N           [--seed S] [--out PATH]
//! ```
//!
//! Output defaults to stdout-adjacent files in the working directory.

use bdb_datagen::convert;
use bdb_datagen::text::TextGenerator;
use bdb_datagen::{
    EcommerceGenerator, GraphGenerator, ResumeGenerator, ReviewGenerator, RmatParams,
};
use std::collections::HashMap;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(flavor) = args.next() else {
        usage();
    };
    let opts: HashMap<String, String> = {
        let mut m = HashMap::new();
        let rest: Vec<String> = args.collect();
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                die(&format!("expected a --flag, found `{flag}`"));
            };
            let Some(value) = it.next() else {
                die(&format!("--{name} needs a value"));
            };
            m.insert(name.to_owned(), value.clone());
        }
        m
    };
    let seed: u64 = opt_num(&opts, "seed").unwrap_or(42);
    let get_out = |default: &str| opts.get("out").cloned().unwrap_or_else(|| default.to_owned());

    match flavor.as_str() {
        "text" => {
            let bytes = opt_num(&opts, "bytes").unwrap_or_else(|| die("text needs --bytes"));
            let out = get_out("bdgs-text.txt");
            let corpus = TextGenerator::wikipedia(seed).corpus(bytes as usize);
            write_file(&out, corpus.as_bytes());
            eprintln!("wrote {} bytes of text to {out}", corpus.len());
        }
        "graph" => {
            let nodes = opt_num(&opts, "nodes").unwrap_or_else(|| die("graph needs --nodes"));
            let kind = opts.get("kind").map(String::as_str).unwrap_or("web");
            let params = match kind {
                "web" => RmatParams::google_web(),
                "social" => RmatParams::facebook_social(),
                other => die(&format!("unknown graph kind `{other}` (web|social)")),
            };
            let out = get_out("bdgs-graph.txt");
            let g = GraphGenerator::new(params, seed).generate(nodes as u32);
            write_file(&out, convert::edges_to_text(&g).as_bytes());
            eprintln!(
                "wrote {kind} graph ({} nodes, {} edges, avg degree {:.2}) to {out}",
                g.nodes,
                g.edges.len(),
                g.avg_degree()
            );
        }
        "table" => {
            let orders = opt_num(&opts, "orders").unwrap_or_else(|| die("table needs --orders"));
            let out_orders =
                opts.get("out-orders").cloned().unwrap_or_else(|| "bdgs-orders.csv".to_owned());
            let out_items =
                opts.get("out-items").cloned().unwrap_or_else(|| "bdgs-items.csv".to_owned());
            let (os, is) = EcommerceGenerator::new(seed).generate(orders);
            write_file(&out_orders, convert::orders_to_csv(&os).as_bytes());
            write_file(&out_items, convert::items_to_csv(&is).as_bytes());
            eprintln!(
                "wrote {} orders to {out_orders} and {} items to {out_items}",
                os.len(),
                is.len()
            );
        }
        "reviews" => {
            let count = opt_num(&opts, "count").unwrap_or_else(|| die("reviews needs --count"));
            let format = opts.get("format").map(String::as_str).unwrap_or("labeled");
            let out = get_out("bdgs-reviews.txt");
            let reviews = ReviewGenerator::new(seed).generate(count);
            let payload = match format {
                "labeled" => convert::reviews_to_labeled(&reviews),
                "ratings" => {
                    let mut s = String::new();
                    for (u, i, r) in convert::reviews_to_ratings(&reviews) {
                        s.push_str(&format!("{u}\t{i}\t{r}\n"));
                    }
                    s
                }
                other => die(&format!("unknown format `{other}` (labeled|ratings)")),
            };
            write_file(&out, payload.as_bytes());
            eprintln!("wrote {} reviews ({format}) to {out}", reviews.len());
        }
        "resumes" => {
            let count = opt_num(&opts, "count").unwrap_or_else(|| die("resumes needs --count"));
            let out = get_out("bdgs-resumes.txt");
            let resumes = ResumeGenerator::new(seed).generate(count);
            let mut payload = String::new();
            for (k, v) in convert::resumes_to_kv(&resumes) {
                payload.push_str(&format!("{k}\t{v}\n"));
            }
            write_file(&out, payload.as_bytes());
            eprintln!("wrote {} resumes to {out}", resumes.len());
        }
        "--help" | "-h" | "help" => usage(),
        other => die(&format!("unknown flavor `{other}`")),
    }
}

fn opt_num(opts: &HashMap<String, String>, name: &str) -> Option<u64> {
    opts.get(name).map(|v| {
        v.parse().unwrap_or_else(|_| die(&format!("--{name} must be a number, got `{v}`")))
    })
}

fn write_file(path: &str, bytes: &[u8]) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
    f.write_all(bytes).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

fn usage() -> ! {
    eprintln!(
        "BDGS — Big Data Generator Suite\n\
         usage:\n\
         \x20 bdgs text    --bytes N   [--seed S] [--out PATH]\n\
         \x20 bdgs graph   --nodes N   [--kind web|social] [--seed S] [--out PATH]\n\
         \x20 bdgs table   --orders N  [--seed S] [--out-orders P] [--out-items P]\n\
         \x20 bdgs reviews --count N   [--seed S] [--format labeled|ratings] [--out PATH]\n\
         \x20 bdgs resumes --count N   [--seed S] [--out PATH]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
