//! Regenerates every table and figure of the BigDataBench paper's
//! evaluation section.
//!
//! ```text
//! reproduce [--all] [--table2] [--table3] [--table4] [--table5] [--table6]
//!           [--fig2] [--fig3] [--fig4] [--fig5] [--fig6] [--checks]
//!           [--fraction F] [--json DIR]
//! ```
//!
//! `--fraction` shrinks the library-scale inputs (default 0.25 — a full
//! `--all` run finishes in a few minutes). `--json DIR` additionally
//! dumps each artifact as JSON for EXPERIMENTS.md bookkeeping.

use bdb_bench::paper;
use bdb_bench::table::{fnum, TextTable};
use bigdatabench::characterize::{self, Fig3Row};
use bigdatabench::{MachineConfig, Suite, WorkloadId};

#[derive(Debug, Default)]
struct Args {
    table2: bool,
    table3: bool,
    table4: bool,
    table5: bool,
    table6: bool,
    fig2: bool,
    fig3: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    checks: bool,
    fraction: f64,
    json_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args { fraction: 0.25, ..Default::default() };
    let mut it = std::env::args().skip(1);
    let mut any = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => {
                args.table2 = true;
                args.table3 = true;
                args.table4 = true;
                args.table5 = true;
                args.table6 = true;
                args.fig2 = true;
                args.fig3 = true;
                args.fig4 = true;
                args.fig5 = true;
                args.fig6 = true;
                args.checks = true;
                any = true;
            }
            "--table2" => args.table2 = true,
            "--table3" => args.table3 = true,
            "--table4" => args.table4 = true,
            "--table5" => args.table5 = true,
            "--table6" => args.table6 = true,
            "--fig2" => args.fig2 = true,
            "--fig3" => args.fig3 = true,
            "--fig4" => args.fig4 = true,
            "--fig5" => args.fig5 = true,
            "--fig6" => args.fig6 = true,
            "--checks" => args.checks = true,
            "--fraction" => {
                args.fraction = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--fraction needs a positive number"));
            }
            "--json" => {
                args.json_dir =
                    Some(it.next().unwrap_or_else(|| die("--json needs a directory")).into());
            }
            "--help" | "-h" => {
                println!(
                    "reproduce — regenerate the BigDataBench paper's tables and figures\n\
                     flags: --all --table2..6 --fig2..6 --checks --fraction F --json DIR"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
        if a != "--fraction" && a != "--json" {
            any = any || a.starts_with("--");
        }
    }
    if !any {
        // Default: everything.
        args.table2 = true;
        args.table3 = true;
        args.table4 = true;
        args.table5 = true;
        args.table6 = true;
        args.fig2 = true;
        args.fig3 = true;
        args.fig4 = true;
        args.fig5 = true;
        args.fig6 = true;
        args.checks = true;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn save_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
            .expect("write json");
        eprintln!("  wrote {}", path.display());
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

fn table2() {
    section("Table 2 — real-world seed data sets");
    let mut t = TextTable::new(&["No", "data set", "type", "source", "size", "used by"]);
    for (i, s) in bdb_datagen::SEED_DATASETS.iter().enumerate() {
        t.row(&[
            (i + 1).to_string(),
            s.kind.to_string(),
            format!("{:?}", s.data_type),
            format!("{:?}", s.source),
            s.size_description.to_owned(),
            s.used_by.join(", "),
        ]);
    }
    println!("{}", t.render());
}

fn table3() {
    section("Table 3 — e-commerce transaction schema (live from generator)");
    let suite = Suite::quick();
    let (orders, items) =
        bigdatabench::workloads::query::build_tables(&suite.scale(1), 100);
    for table in [&orders, &items] {
        println!("{}:", table.name().to_uppercase());
        for name in table.schema().names() {
            let (idx, ty) = table.schema().resolve(name).expect("own column");
            println!("  {name:<14} {:?} (col {idx})", ty);
        }
        println!("  [{} rows generated at demo scale]\n", table.len());
    }
}

fn table4() {
    section("Table 4 — the BigDataBench suite");
    let mut t = TextTable::new(&["scenario", "workload", "type", "paper stack", "our substrate"]);
    for id in WorkloadId::ALL {
        let substrate = match id.paper_stack() {
            "Hadoop (Nutch)" => "bdb-serving (search)",
            "Hadoop" => "bdb-mapreduce",
            "MPI" => "bdb-graph (partitioned)",
            "HBase" => "bdb-kvstore (LSM)",
            "Hive" => "bdb-sql",
            "MySQL" => "bdb-serving",
            other => other,
        };
        t.row(&[
            id.scenario(),
            id.name(),
            &id.application_type().to_string(),
            id.paper_stack(),
            substrate,
        ]);
    }
    println!("{}", t.render());
}

fn table5() {
    section("Tables 5 & 7 — simulated processor configurations");
    for cfg in [MachineConfig::xeon_e5645(), MachineConfig::xeon_e5310()] {
        println!(
            "{}: {} cores @ {:.2} GHz",
            cfg.name,
            cfg.cores,
            cfg.freq_mhz as f64 / 1000.0
        );
        println!(
            "  L1I/L1D {} KiB {}-way | L2 {} KiB {}-way | L3 {}",
            cfg.l1i.capacity / 1024,
            cfg.l1i.associativity,
            cfg.l2.capacity / 1024,
            cfg.l2.associativity,
            cfg.l3
                .as_ref()
                .map(|l3| format!("{} MiB {}-way", l3.capacity / (1024 * 1024), l3.associativity))
                .unwrap_or_else(|| "none".to_owned()),
        );
        println!(
            "  ITLB {}x{}-way, DTLB {}x{}-way, 4 KiB pages\n",
            cfg.itlb.entries, cfg.itlb.associativity, cfg.dtlb.entries, cfg.dtlb.associativity
        );
    }
}

fn table6() {
    section("Table 6 — workloads and inputs");
    let mut t = TextTable::new(&["ID", "workload", "stack", "paper input", "library baseline"]);
    for (i, id) in WorkloadId::ALL.iter().enumerate() {
        let lib = match id {
            WorkloadId::Sort | WorkloadId::Grep | WorkloadId::WordCount => "1 MiB text x (1..32)",
            WorkloadId::Bfs => "2^15 vertices x (1..32)",
            WorkloadId::Read | WorkloadId::Write | WorkloadId::Scan => "20k ops x (1..32)",
            WorkloadId::SelectQuery | WorkloadId::AggregateQuery | WorkloadId::JoinQuery => {
                "8k orders x (1..32)"
            }
            WorkloadId::NutchServer | WorkloadId::OlioServer | WorkloadId::RubisServer => {
                "100 req/s x (1..32)"
            }
            WorkloadId::PageRank | WorkloadId::Index => "4000 pages x (1..32)",
            WorkloadId::KMeans => "40k points x (1..32)",
            WorkloadId::ConnectedComponents => "2^15 vertices x (1..32)",
            WorkloadId::CollaborativeFiltering | WorkloadId::NaiveBayes => {
                "4k reviews x (1..32)"
            }
        };
        t.row(&[
            (i + 1).to_string(),
            id.name().to_owned(),
            id.paper_stack().to_owned(),
            id.paper_input().to_owned(),
            lib.to_owned(),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig3(rows: &[Fig3Row]) {
    section("Figure 3-1 — MIPS with data scale (timing model)");
    let mut t = TextTable::new(&["workload", "Baseline", "4X", "8X", "16X", "32X"]);
    for id in WorkloadId::ALL {
        let vals: Vec<String> = rows
            .iter()
            .filter(|r| r.workload == id.name())
            .map(|r| fnum(r.mips))
            .collect();
        let mut cells = vec![id.name().to_owned()];
        cells.extend(vals);
        t.row(&cells);
    }
    println!("{}", t.render());

    section("Figure 3-2 — speedup with data scale (native, normalized)");
    let mut t = TextTable::new(&["workload", "Baseline", "4X", "8X", "16X", "32X"]);
    for id in WorkloadId::ALL {
        let vals: Vec<String> = rows
            .iter()
            .filter(|r| r.workload == id.name())
            .map(|r| format!("{:.2}", r.speedup))
            .collect();
        let mut cells = vec![id.name().to_owned()];
        cells.extend(vals);
        t.row(&cells);
    }
    println!("{}", t.render());
}

fn main() {
    let args = parse_args();
    let suite = Suite::with_fraction(args.fraction);
    let machine = MachineConfig::xeon_e5645();
    eprintln!(
        "reproduce: fraction {} on simulated {} (paper testbed: 14 nodes)",
        args.fraction, machine.name
    );

    if args.table2 {
        table2();
    }
    if args.table3 {
        table3();
    }
    if args.table4 {
        table4();
    }
    if args.table5 {
        table5();
    }
    if args.table6 {
        table6();
    }

    let mut fig2_rows = Vec::new();
    let mut fig3_rows = Vec::new();
    let mut fig4_rows = Vec::new();
    let mut fig5_rows = Vec::new();
    let mut fig6_rows = Vec::new();

    let need_baseline = args.fig4 || args.fig6;
    let baseline = if need_baseline {
        eprintln!("characterizing all 19 workloads at baseline on {}...", machine.name);
        characterize::baseline_reports(&suite, &machine)
    } else {
        Vec::new()
    };

    if args.fig2 {
        eprintln!("figure 2: native sweeps + small/large characterization...");
        fig2_rows = characterize::figure2(&suite, &machine);
        section("Figure 2 — L3 MPKI: small vs large input");
        let mut t =
            TextTable::new(&["workload", "small (baseline)", "large (best)", "large mult"]);
        for r in &fig2_rows {
            t.row(&[
                r.workload.clone(),
                fnum(r.small_l3_mpki),
                fnum(r.large_l3_mpki),
                format!("{}X", r.large_multiplier),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig2", &fig2_rows);
    }

    if args.fig3 {
        eprintln!("figure 3: native + traced sweeps over 5 multipliers x 19 workloads...");
        fig3_rows = characterize::figure3(&suite, &machine);
        print_fig3(&fig3_rows);
        save_json(&args.json_dir, "fig3", &fig3_rows);
    }

    if args.fig4 {
        fig4_rows = characterize::figure4(&baseline, &machine);
        section("Figure 4 — instruction breakdown");
        let mut t =
            TextTable::new(&["name", "load", "store", "branch", "int", "fp", "int:fp"]);
        for r in &fig4_rows {
            t.row(&[
                r.name.clone(),
                format!("{:.1}%", r.load * 100.0),
                format!("{:.1}%", r.store * 100.0),
                format!("{:.1}%", r.branch * 100.0),
                format!("{:.1}%", r.int * 100.0),
                format!("{:.1}%", r.fp * 100.0),
                if r.int_fp_ratio.is_finite() { fnum(r.int_fp_ratio) } else { "inf".into() },
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig4", &fig4_rows);
    }

    if args.fig5 {
        eprintln!("figure 5: characterizing on both E5645 and E5310...");
        fig5_rows = characterize::figure5(&suite);
        section("Figure 5 — operation intensity (ops per DRAM byte)");
        let mut t =
            TextTable::new(&["name", "FP E5310", "FP E5645", "INT E5310", "INT E5645"]);
        for r in &fig5_rows {
            t.row(&[
                r.name.clone(),
                fnum(r.fp_e5310),
                fnum(r.fp_e5645),
                fnum(r.int_e5310),
                fnum(r.int_e5645),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig5", &fig5_rows);
    }

    if args.fig6 {
        fig6_rows = characterize::figure6(&baseline, &machine);
        section("Figure 6 — memory hierarchy MPKI");
        let mut t = TextTable::new(&["name", "L1I", "L2", "L3", "ITLB", "DTLB"]);
        for r in &fig6_rows {
            t.row(&[
                r.name.clone(),
                fnum(r.l1i_mpki),
                fnum(r.l2_mpki),
                fnum(r.l3_mpki),
                fnum(r.itlb_mpki),
                fnum(r.dtlb_mpki),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig6", &fig6_rows);
    }

    if args.checks {
        let checks =
            paper::shape_checks(&fig2_rows, &fig3_rows, &fig4_rows, &fig5_rows, &fig6_rows);
        section("Shape checks vs the paper's headline claims");
        let mut t = TextTable::new(&["check", "claim", "measured", "verdict"]);
        let mut pass = 0;
        for c in &checks {
            if c.pass {
                pass += 1;
            }
            t.row(&[c.id, c.claim, &c.measured, if c.pass { "PASS" } else { "FAIL" }]);
        }
        println!("{}", t.render());
        println!("{pass}/{} shape checks passed", checks.len());
    }
}
