//! Regenerates every table and figure of the BigDataBench paper's
//! evaluation section.
//!
//! ```text
//! reproduce [--all] [--table2] [--table3] [--table4] [--table5] [--table6]
//!           [--fig2] [--fig3] [--fig4] [--fig5] [--fig6] [--checks]
//!           [--fraction F] [--json DIR] [--trace DIR] [--profile DIR]
//!           [--charmap DIR] [--charmap-baseline PATH]
//! ```
//!
//! `--fraction` shrinks the library-scale inputs (default 0.25 — a full
//! `--all` run finishes in a few minutes). `--json DIR` additionally
//! dumps each artifact as JSON for EXPERIMENTS.md bookkeeping.
//! `--trace DIR` runs an instrumented pass of representative workloads
//! and writes one Chrome trace-event JSON (loadable in the Perfetto UI
//! / `chrome://tracing`) plus a plain-text metrics summary per workload.
//! `--profile DIR` analyzes that same pass post hoc, writing per
//! workload a collapsed-stack flamegraph (`.folded`), a critical-path
//! report with per-phase blame (`.critpath.txt`) and a worker
//! utilization timeline (`.util.txt`). `--slo DIR` runs the serving
//! workloads through the online observability pipeline (steady plus
//! shaped overload) and writes `slo_report.json` plus per-service
//! dashboards, Prometheus expositions and chain traces.

use bdb_archsim::Probe;
use bdb_bench::paper;
use bdb_bench::table::{fnum, TextTable};
use bdb_mapreduce::{Emitter, Job};
use bdb_telemetry::TraceSession;
use bigdatabench::characterize::{self, Fig3Row};
use bigdatabench::{MachineConfig, Suite, WorkloadId};

#[derive(Debug, Default)]
struct Args {
    table2: bool,
    table3: bool,
    table4: bool,
    table5: bool,
    table6: bool,
    fig2: bool,
    fig3: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    checks: bool,
    fraction: f64,
    json_dir: Option<std::path::PathBuf>,
    trace_dir: Option<std::path::PathBuf>,
    profile_dir: Option<std::path::PathBuf>,
    bench_json: Option<std::path::PathBuf>,
    bench_baseline: Option<std::path::PathBuf>,
    bench_tolerance: f64,
    bench_subset: Option<std::path::PathBuf>,
    charmap_dir: Option<std::path::PathBuf>,
    charmap_baseline: Option<std::path::PathBuf>,
    faults_seed: Option<u64>,
    slo_dir: Option<std::path::PathBuf>,
    chaos_seed: Option<u64>,
    chaos_dir: Option<std::path::PathBuf>,
    tsdb_dir: Option<std::path::PathBuf>,
}

const USAGE: &str = "\
reproduce — regenerate the BigDataBench paper's tables and figures

usage: reproduce [SELECTION...] [OPTIONS...]

selection (default: everything):
  --all                  every table, figure and shape check
  --table2..--table6     individual tables
  --fig2..--fig6         individual figures
  --checks               shape checks vs the paper's headline claims

options:
  --fraction F           scale library inputs by F (default 0.25)
  --json DIR             dump each artifact as JSON into DIR
  --trace DIR            instrumented pass: Chrome trace + metrics +
                         Prometheus text exposition per workload
  --profile DIR          profile the instrumented pass: per workload,
                         write <w>.folded (collapsed stacks for
                         inferno/flamegraph.pl/speedscope),
                         <w>.critpath.txt (critical path + phase blame)
                         and <w>.util.txt (worker utilization), and add
                         a busy-workers counter track to the trace;
                         traces land in --trace DIR when given, else DIR
  --bench-json PATH      write the versioned BENCH_RESULTS.json
                         performance artifact to PATH
  --bench-baseline PATH  compare this run against a committed
                         BENCH_RESULTS.json; exit 1 on regression
  --bench-tolerance PCT  allowed drift per gated metric (default 2.0)
  --bench-subset PATH    with --bench-baseline: gate only the
                         representative workloads listed in the
                         committed charmap.json at PATH (the ci.sh
                         --subset fast tier)
  --charmap DIR          workload characterization map: metric vectors
                         -> PCA -> clustered subset; writes DIR/
                         charmap.txt and DIR/charmap.json, exit 1 if
                         the retained variance misses the target
  --charmap-baseline PATH  validate this run's map against a committed
                         charmap.json under the subset stability rule
                         (same k, exactly one committed representative
                         per fresh cluster); exit 1 on drift
  --faults SEED          fault-injection smoke: run WordCount with an
                         injected spill-write error, map-task panic and
                         straggler; exit 1 unless the output is
                         byte-identical to the fault-free run
  --slo DIR              online observability pass over the serving
                         workloads: steady + shaped-overload phases
                         through the SLO/error-budget engine; writes
                         DIR/slo_report.json plus per service
                         <w>.dash.txt, <w>.slo.prom.txt (Prometheus
                         text with exemplar trace ids) and
                         <w>.slo.trace.json (linked request chains +
                         window counter tracks); the overload phase
                         must fire exactly one page burn-rate alert,
                         deterministically. With --bench-subset, only
                         the representative serving workload runs.
  --chaos SEED DIR       deterministic chaos campaigns: the replicated
                         Cloud-OLTP store (lost ships, torn WAL writes,
                         virtual-time node kills -> failover, read
                         repair, anti-entropy), WordCount under
                         rotating fault mixes, and an overloaded
                         serving tier — each judged by invariant
                         checkers (history safety, replica convergence,
                         byte-identical output, tail-sampled failures);
                         writes DIR/chaos_report.json (byte-identical
                         across runs for a seed) and a Chrome trace of
                         lifecycle instants per campaign
                         (<c>.chaos.trace.json); exit 1 on any checker
                         failure or if the Cloud-OLTP campaign forced
                         no failover or no read-repair.
                         With --bench-subset, runs shortened campaigns.
  --tsdb DIR             embedded time-series pass: run an OLTP chaos
                         round with traced writes plus a shaped serving
                         overload, scrape every node's metrics registry
                         into the bdb-tsdb store throughout, replay the
                         stored series through the burn-rate rules and
                         cross-check quantiles against the live window
                         ring; writes DIR/tsdb_snapshot.bin (byte-
                         deterministic for a seed), per node
                         node-<n>.dash.txt sparkline dashboards and
                         timeline.txt (failover events + reconstructed
                         write span chains); exit 1 if any traced chain
                         is causally incomplete, the stored p99 drifts
                         more than one histogram bucket from the live
                         value, or replayed alerts diverge. With
                         --bench-subset, runs a shortened scrape.
  -h, --help             this text

`--trace`/`--profile`/`--bench-json`/`--bench-baseline`/`--charmap`/
`--charmap-baseline`/`--faults`/`--slo`/`--chaos`/`--tsdb` without a
selection run only that pass.";

/// What the next raw argument is expected to be. The parser is a
/// two-state machine: flags, or the value owed to the previous flag.
enum Expecting {
    Flag,
    Value(&'static str),
    /// The seed owed to `--chaos` (which takes two values).
    ChaosSeed,
    /// The directory owed to `--chaos SEED`.
    ChaosDir,
}

fn parse_args() -> Args {
    let mut args = Args { fraction: 0.25, bench_tolerance: 2.0, ..Default::default() };
    let mut selected = false;
    let mut state = Expecting::Flag;
    for raw in std::env::args().skip(1) {
        match state {
            Expecting::Value(flag) => {
                apply_value(&mut args, flag, &raw);
                state = Expecting::Flag;
            }
            Expecting::ChaosSeed => {
                args.chaos_seed = Some(
                    raw.parse().unwrap_or_else(|_| usage_error("--chaos needs an integer seed")),
                );
                state = Expecting::ChaosDir;
            }
            Expecting::ChaosDir => {
                args.chaos_dir = Some(raw.into());
                state = Expecting::Flag;
            }
            Expecting::Flag => match raw.as_str() {
                "--all" => {
                    select_everything(&mut args);
                    selected = true;
                }
                "--table2" => (args.table2, selected) = (true, true),
                "--table3" => (args.table3, selected) = (true, true),
                "--table4" => (args.table4, selected) = (true, true),
                "--table5" => (args.table5, selected) = (true, true),
                "--table6" => (args.table6, selected) = (true, true),
                "--fig2" => (args.fig2, selected) = (true, true),
                "--fig3" => (args.fig3, selected) = (true, true),
                "--fig4" => (args.fig4, selected) = (true, true),
                "--fig5" => (args.fig5, selected) = (true, true),
                "--fig6" => (args.fig6, selected) = (true, true),
                "--checks" => (args.checks, selected) = (true, true),
                "--fraction" => state = Expecting::Value("--fraction"),
                "--json" => state = Expecting::Value("--json"),
                "--trace" => state = Expecting::Value("--trace"),
                "--profile" => state = Expecting::Value("--profile"),
                "--bench-json" => state = Expecting::Value("--bench-json"),
                "--bench-baseline" => state = Expecting::Value("--bench-baseline"),
                "--bench-tolerance" => state = Expecting::Value("--bench-tolerance"),
                "--bench-subset" => state = Expecting::Value("--bench-subset"),
                "--charmap" => state = Expecting::Value("--charmap"),
                "--charmap-baseline" => state = Expecting::Value("--charmap-baseline"),
                "--faults" => state = Expecting::Value("--faults"),
                "--slo" => state = Expecting::Value("--slo"),
                "--chaos" => state = Expecting::ChaosSeed,
                "--tsdb" => state = Expecting::Value("--tsdb"),
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => usage_error(&format!("unknown argument `{other}`")),
            },
        }
    }
    match state {
        Expecting::Flag => {}
        Expecting::Value(flag) => usage_error(&format!("{flag} needs a value")),
        Expecting::ChaosSeed | Expecting::ChaosDir => {
            usage_error("--chaos needs a seed and a directory (`--chaos SEED DIR`)")
        }
    }
    if args.bench_subset.is_some() && args.bench_baseline.is_none() {
        usage_error("--bench-subset requires --bench-baseline");
    }
    let side_pass = args.trace_dir.is_some()
        || args.profile_dir.is_some()
        || args.bench_json.is_some()
        || args.bench_baseline.is_some()
        || args.charmap_dir.is_some()
        || args.charmap_baseline.is_some()
        || args.faults_seed.is_some()
        || args.slo_dir.is_some()
        || args.chaos_seed.is_some()
        || args.tsdb_dir.is_some();
    if !selected && !side_pass {
        select_everything(&mut args);
    }
    args
}

fn apply_value(args: &mut Args, flag: &str, value: &str) {
    match flag {
        "--fraction" => {
            args.fraction = value
                .parse()
                .ok()
                .filter(|f| *f > 0.0)
                .unwrap_or_else(|| usage_error("--fraction needs a positive number"));
        }
        "--json" => args.json_dir = Some(value.into()),
        "--trace" => args.trace_dir = Some(value.into()),
        "--profile" => args.profile_dir = Some(value.into()),
        "--bench-json" => args.bench_json = Some(value.into()),
        "--bench-baseline" => args.bench_baseline = Some(value.into()),
        "--bench-tolerance" => {
            args.bench_tolerance = value
                .parse()
                .ok()
                .filter(|t| *t >= 0.0)
                .unwrap_or_else(|| usage_error("--bench-tolerance needs a percentage >= 0"));
        }
        "--bench-subset" => args.bench_subset = Some(value.into()),
        "--charmap" => args.charmap_dir = Some(value.into()),
        "--charmap-baseline" => args.charmap_baseline = Some(value.into()),
        "--faults" => {
            args.faults_seed = Some(
                value.parse().unwrap_or_else(|_| usage_error("--faults needs an integer seed")),
            );
        }
        "--slo" => args.slo_dir = Some(value.into()),
        "--tsdb" => args.tsdb_dir = Some(value.into()),
        _ => unreachable!("values are only owed to known flags"),
    }
}

fn select_everything(args: &mut Args) {
    args.table2 = true;
    args.table3 = true;
    args.table4 = true;
    args.table5 = true;
    args.table6 = true;
    args.fig2 = true;
    args.fig3 = true;
    args.fig4 = true;
    args.fig5 = true;
    args.fig6 = true;
    args.checks = true;
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn save_json<T: serde::Serialize>(dir: &Option<std::path::PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
            .expect("write json");
        eprintln!("  wrote {}", path.display());
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

fn table2() {
    section("Table 2 — real-world seed data sets");
    let mut t = TextTable::new(&["No", "data set", "type", "source", "size", "used by"]);
    for (i, s) in bdb_datagen::SEED_DATASETS.iter().enumerate() {
        t.row(&[
            (i + 1).to_string(),
            s.kind.to_string(),
            format!("{:?}", s.data_type),
            format!("{:?}", s.source),
            s.size_description.to_owned(),
            s.used_by.join(", "),
        ]);
    }
    println!("{}", t.render());
}

fn table3() {
    section("Table 3 — e-commerce transaction schema (live from generator)");
    let suite = Suite::quick();
    let (orders, items) = bigdatabench::workloads::query::build_tables(&suite.scale(1), 100);
    for table in [&orders, &items] {
        println!("{}:", table.name().to_uppercase());
        for name in table.schema().names() {
            let (idx, ty) = table.schema().resolve(name).expect("own column");
            println!("  {name:<14} {:?} (col {idx})", ty);
        }
        println!("  [{} rows generated at demo scale]\n", table.len());
    }
}

fn table4() {
    section("Table 4 — the BigDataBench suite");
    let mut t = TextTable::new(&["scenario", "workload", "type", "paper stack", "our substrate"]);
    for id in WorkloadId::ALL {
        let substrate = match id.paper_stack() {
            "Hadoop (Nutch)" => "bdb-serving (search)",
            "Hadoop" => "bdb-mapreduce",
            "MPI" => "bdb-graph (partitioned)",
            "HBase" => "bdb-kvstore (LSM)",
            "Hive" => "bdb-sql",
            "MySQL" => "bdb-serving",
            other => other,
        };
        t.row(&[
            id.scenario(),
            id.name(),
            &id.application_type().to_string(),
            id.paper_stack(),
            substrate,
        ]);
    }
    println!("{}", t.render());
}

fn table5() {
    section("Tables 5 & 7 — simulated processor configurations");
    for cfg in [MachineConfig::xeon_e5645(), MachineConfig::xeon_e5310()] {
        println!("{}: {} cores @ {:.2} GHz", cfg.name, cfg.cores, cfg.freq_mhz as f64 / 1000.0);
        println!(
            "  L1I/L1D {} KiB {}-way | L2 {} KiB {}-way | L3 {}",
            cfg.l1i.capacity / 1024,
            cfg.l1i.associativity,
            cfg.l2.capacity / 1024,
            cfg.l2.associativity,
            cfg.l3
                .as_ref()
                .map(|l3| format!("{} MiB {}-way", l3.capacity / (1024 * 1024), l3.associativity))
                .unwrap_or_else(|| "none".to_owned()),
        );
        println!(
            "  ITLB {}x{}-way, DTLB {}x{}-way, 4 KiB pages\n",
            cfg.itlb.entries, cfg.itlb.associativity, cfg.dtlb.entries, cfg.dtlb.associativity
        );
    }
}

fn table6() {
    section("Table 6 — workloads and inputs");
    let mut t = TextTable::new(&["ID", "workload", "stack", "paper input", "library baseline"]);
    for (i, id) in WorkloadId::ALL.iter().enumerate() {
        let lib = match id {
            WorkloadId::Sort | WorkloadId::Grep | WorkloadId::WordCount => "1 MiB text x (1..32)",
            WorkloadId::Bfs => "2^15 vertices x (1..32)",
            WorkloadId::Read | WorkloadId::Write | WorkloadId::Scan => "20k ops x (1..32)",
            WorkloadId::SelectQuery | WorkloadId::AggregateQuery | WorkloadId::JoinQuery => {
                "8k orders x (1..32)"
            }
            WorkloadId::NutchServer | WorkloadId::OlioServer | WorkloadId::RubisServer => {
                "100 req/s x (1..32)"
            }
            WorkloadId::PageRank | WorkloadId::Index => "4000 pages x (1..32)",
            WorkloadId::KMeans => "40k points x (1..32)",
            WorkloadId::ConnectedComponents => "2^15 vertices x (1..32)",
            WorkloadId::CollaborativeFiltering | WorkloadId::NaiveBayes => "4k reviews x (1..32)",
        };
        t.row(&[
            (i + 1).to_string(),
            id.name().to_owned(),
            id.paper_stack().to_owned(),
            id.paper_input().to_owned(),
            lib.to_owned(),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig3(rows: &[Fig3Row]) {
    section("Figure 3-1 — MIPS with data scale (timing model)");
    let mut t = TextTable::new(&["workload", "Baseline", "4X", "8X", "16X", "32X"]);
    for id in WorkloadId::ALL {
        let vals: Vec<String> =
            rows.iter().filter(|r| r.workload == id.name()).map(|r| fnum(r.mips)).collect();
        let mut cells = vec![id.name().to_owned()];
        cells.extend(vals);
        t.row(&cells);
    }
    println!("{}", t.render());

    section("Figure 3-2 — speedup with data scale (native, normalized)");
    let mut t = TextTable::new(&["workload", "Baseline", "4X", "8X", "16X", "32X"]);
    for id in WorkloadId::ALL {
        let vals: Vec<String> = rows
            .iter()
            .filter(|r| r.workload == id.name())
            .map(|r| format!("{:.2}", r.speedup))
            .collect();
        let mut cells = vec![id.name().to_owned()];
        cells.extend(vals);
        t.row(&cells);
    }
    println!("{}", t.render());
}

/// WordCount job for the instrumented `--trace` pass.
struct TraceWordCount;
impl Job for TraceWordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, u64>, _p: &mut P) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

/// TeraSort-style sort job for the instrumented `--trace` pass.
struct TraceSort;
impl Job for TraceSort {
    type Input = String;
    type Key = String;
    type Value = ();
    type Output = String;
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, ()>, _p: &mut P) {
        emit.emit(line.clone(), ());
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<()>,
        out: &mut Vec<String>,
        _p: &mut P,
    ) {
        for _ in values {
            out.push(key.clone());
        }
    }
}

/// Writes one workload's profiling artifacts — `<stem>.folded`,
/// `<stem>.critpath.txt`, `<stem>.util.txt` — next to its trace.
fn write_profile(
    session: &TraceSession,
    dir: &std::path::Path,
) -> std::io::Result<bdb_profile::Profile> {
    std::fs::create_dir_all(dir)?;
    let profile = bdb_profile::Profile::from_events(&session.recorder.events());
    let stem = bdb_telemetry::file_stem(&session.name);
    std::fs::write(dir.join(format!("{stem}.folded")), profile.folded())?;
    std::fs::write(dir.join(format!("{stem}.critpath.txt")), profile.critpath_text())?;
    std::fs::write(dir.join(format!("{stem}.util.txt")), profile.util_text())?;
    Ok(profile)
}

/// Runs an instrumented pass of representative workloads, writing a
/// Chrome trace-event JSON + plain-text metrics summary per workload
/// into `trace_dir` (loadable at <https://ui.perfetto.dev>). With
/// `profile_dir`, each workload additionally gets profiling artifacts
/// (see [`write_profile`]) and a busy-workers counter track in its
/// trace; traces fall back to `profile_dir` when `--trace` was not
/// given.
fn trace_exports(
    suite: &Suite,
    fraction: f64,
    trace_dir: Option<&std::path::Path>,
    profile_dir: Option<&std::path::Path>,
) {
    use bdb_archsim::SimProbe;
    use bdb_graph::{label_propagation_instrumented, pagerank_instrumented, PageRankConfig};
    use bdb_kvstore::{Store, StoreConfig};
    use bdb_mapreduce::Engine;
    use bdb_mlkit::KMeans;
    use bdb_serving::loadgen::{run_closed_loop_sampled, PrometheusSampler};
    use bdb_serving::search::SearchServer;
    use bdb_sql::expr::{col, lit};
    use bdb_sql::kernel::{hash_join_instrumented, select_instrumented};
    use bdb_sql::ColumnarTable;

    section("Telemetry traces — Chrome trace JSON + metrics per workload");
    let dir = trace_dir.or(profile_dir).expect("trace_exports needs a destination");
    let f = fraction.max(0.05);
    // Exports one workload's trace (and, when profiling, its artifacts
    // + busy-workers counter track); returns the profile for callers
    // that gate on it.
    let export = |session: &TraceSession, detail: &str| -> Option<bdb_profile::Profile> {
        let profile = profile_dir.map(|pdir| {
            write_profile(session, pdir)
                .unwrap_or_else(|e| die(&format!("{}: profile export failed: {e}", session.name)))
        });
        let tracks: Vec<bdb_telemetry::CounterTrack> =
            profile.iter().map(bdb_profile::Profile::concurrency_track).collect();
        match session.write_with_tracks(dir, &tracks) {
            Ok((trace, _metrics)) => {
                println!("  {:<20} {detail}", session.name);
                println!("  {:<20} -> {}", "", trace.display());
            }
            Err(e) => eprintln!("  {}: trace export failed: {e}", session.name),
        }
        if let Some(p) = &profile {
            println!("  {:<20} {}", "", p.critical_summary().render());
        }
        profile
    };

    // MapReduce micro benchmarks: WordCount and Sort.
    let text_bytes = ((1_u64 << 20) as f64 * f) as usize;
    let mut text = bdb_datagen::text::TextGenerator::wikipedia(42);
    let lines: Vec<String> = text.corpus(text_bytes).lines().map(str::to_owned).collect();

    // Traced (simulated-counter) runs: the spans carry `counter.*`
    // deltas, which the Chrome exporter renders as counter tracks.
    let machine = MachineConfig::xeon_e5645();
    let session = TraceSession::enabled("WordCount");
    let engine = Engine::builder()
        .telemetry(session.recorder.clone())
        .metrics(session.metrics.clone())
        .build();
    let mut probe = SimProbe::new(machine.clone());
    let (_, stats) = engine.run_traced(&TraceWordCount, &lines, &mut probe);
    if let Some(cp) = &stats.critical_path {
        println!("  {:<20} job: {}", "", cp.render());
    }
    if let Some(profile) = export(&session, &stats.phase_breakdown()) {
        // Profiling contract, enforced in-binary so CI catches span
        // coverage regressions: the WordCount critical path must cover
        // ≥90% of wall-clock, and the blame table must partition it.
        let s = profile.critical_summary();
        if s.coverage < 0.90 {
            die(&format!(
                "WordCount critical path covers only {:.1}% of wall (need >= 90%): \
                 span coverage regressed",
                s.coverage * 100.0
            ));
        }
        let blamed: u64 = profile.critical.blame.iter().map(|(_, us)| *us).sum();
        let drift = blamed.abs_diff(profile.critical.path_us);
        if drift * 100 > profile.critical.path_us {
            die(&format!(
                "WordCount blame table sums to {blamed} us but the critical path is {} us",
                profile.critical.path_us
            ));
        }
    }

    let session = TraceSession::enabled("Sort");
    let engine = Engine::builder()
        .map_buffer_bytes(64 << 10) // spill so the trace shows the disk path
        .telemetry(session.recorder.clone())
        .metrics(session.metrics.clone())
        .build();
    let mut probe = SimProbe::new(machine);
    let (_, stats) = engine.run_traced(&TraceSort, &lines, &mut probe);
    if let Some(cp) = &stats.critical_path {
        println!("  {:<20} job: {}", "", cp.render());
    }
    export(&session, &stats.phase_breakdown());

    // Graph analytics: PageRank and Connected Components.
    let nodes = (((4_000_f64) * f) as u32).max(256);
    let g =
        bdb_datagen::GraphGenerator::new(bdb_datagen::RmatParams::google_web(), 11).generate(nodes);
    let graph = bdb_graph::CsrGraph::from_edges(g.nodes, &g.edges);

    let session = TraceSession::enabled("PageRank");
    let (_, iters) = pagerank_instrumented(&graph, PageRankConfig::default(), &session.recorder);
    session.metrics.counter("graph.pagerank_iterations").add(u64::from(iters));
    export(&session, &format!("{} nodes | {iters} iterations", graph.nodes()));

    let session = TraceSession::enabled("ConnectedComponents");
    let (_, iters) = label_propagation_instrumented(&graph, &session.recorder);
    session.metrics.counter("graph.cc_iterations").add(u64::from(iters));
    export(&session, &format!("{} nodes | {iters} rounds", graph.nodes()));

    // Machine learning: K-means over synthetic blobs.
    let points: Vec<Vec<f64>> = (0..((20_000.0 * f) as usize).max(1_000))
        .map(|i| {
            let blob = (i % 8) as f64;
            let jitter = ((i as u64).wrapping_mul(2_654_435_761) % 1_000) as f64 / 1_000.0;
            vec![blob * 10.0 + jitter, blob * -5.0 + jitter * 0.5, jitter]
        })
        .collect();
    let session = TraceSession::enabled("KMeans");
    let model = KMeans::new(8).fit_instrumented(&points, 7, &session.recorder);
    session.metrics.counter("mlkit.kmeans_iterations").add(u64::from(model.iterations));
    export(&session, &format!("{} points | {} iterations", points.len(), model.iterations));

    // Online services: the Nutch-style search tier plus the Olio
    // social and RuBiS auction tiers, each closed loop with periodic
    // Prometheus scrapes written next to the trace.
    fn serve_with_scrapes<S: bdb_serving::Server>(
        session: &TraceSession,
        server: &mut S,
        requests: usize,
    ) -> (bdb_serving::loadgen::ServiceReport, Vec<String>) {
        let mut sampler = PrometheusSampler::every((requests / 4).max(1));
        let report = run_closed_loop_sampled(
            server,
            requests,
            7,
            &session.recorder,
            &session.metrics,
            &mut sampler,
        );
        let scrapes = sampler.finish(&session.metrics);
        (report, scrapes)
    }
    let requests = ((1_000.0 * f) as usize).max(200);
    let mut serving_runs: Vec<(TraceSession, bdb_serving::loadgen::ServiceReport, Vec<String>)> =
        Vec::new();
    {
        let session = TraceSession::enabled("NutchServer");
        let mut server = SearchServer::build(((400.0 * f) as u32).max(100), 42);
        let (report, scrapes) = serve_with_scrapes(&session, &mut server, requests);
        serving_runs.push((session, report, scrapes));
    }
    {
        let session = TraceSession::enabled("OlioServer");
        let mut server = bdb_serving::social::SocialServer::build(200, 8, 42);
        let (report, scrapes) = serve_with_scrapes(&session, &mut server, requests);
        serving_runs.push((session, report, scrapes));
    }
    {
        let session = TraceSession::enabled("RubisServer");
        let mut server = bdb_serving::auction::AuctionServer::build(200, 10, 100, 42);
        let (report, scrapes) = serve_with_scrapes(&session, &mut server, requests);
        serving_runs.push((session, report, scrapes));
    }
    for (session, report, scrapes) in &serving_runs {
        export(session, &format!("{requests} requests | {:.0} req/s", report.achieved_rps));
        let prom_path = dir.join(format!("{}.prom.txt", session.name.to_lowercase()));
        let body: String =
            scrapes.iter().enumerate().map(|(i, s)| format!("# scrape {i}\n{s}\n")).collect();
        match std::fs::write(&prom_path, body) {
            Ok(()) => println!("  {:<20} -> {}", "", prom_path.display()),
            Err(e) => eprintln!("  {}: prometheus export failed: {e}", session.name),
        }
    }

    // Cloud OLTP: LSM store write + read mix with flushes/compactions.
    let session = TraceSession::enabled("CloudOLTP");
    let kv_dir = std::env::temp_dir().join(format!("bdb-trace-kv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&kv_dir);
    let config =
        StoreConfig { memtable_flush_bytes: 64 << 10, max_tables: 4, ..Default::default() };
    match Store::open_with(&kv_dir, config) {
        Ok(mut store) => {
            store.set_telemetry(session.recorder.clone());
            store.set_metrics(&session.metrics);
            let ops = ((20_000.0 * f) as u32).max(2_000);
            let mut failed = false;
            {
                // Top-level phase spans so the profiler attributes the
                // run to load vs read instead of leaving idle gaps.
                let _load = session.recorder.span("kvstore", "oltp-load");
                for i in 0..ops {
                    let key = format!("row{i:08}").into_bytes();
                    if store.put(key, vec![b'v'; 100]).is_err() {
                        failed = true;
                        break;
                    }
                }
            }
            {
                let _read = session.recorder.span("kvstore", "oltp-read");
                for i in 0..ops {
                    // Half present, half absent — exercises the bloom filters.
                    let probe_key = format!("row{:08}", u64::from(i) * 2).into_bytes();
                    if store.get(&probe_key).is_err() {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                eprintln!("  CloudOLTP: store I/O failed; exporting partial trace");
            }
            let s = store.stats();
            export(
                &session,
                &format!(
                    "{ops} puts + {ops} gets | {} flushes, {} compactions, {} bloom skips",
                    s.flushes, s.compactions, s.bloom_skips
                ),
            );
        }
        Err(e) => eprintln!("  CloudOLTP: store open failed: {e}"),
    }
    let _ = std::fs::remove_dir_all(&kv_dir);

    // Relational query: select + hash join over e-commerce tables.
    let session = TraceSession::enabled("JoinQuery");
    let orders_n = ((8_000.0 * f) as u64).max(500);
    let (orders, items) = bigdatabench::workloads::query::build_tables(&suite.scale(1), orders_n);
    let orders_c = ColumnarTable::from_table(&orders);
    let items_c = ColumnarTable::from_table(&items);
    let query_span = session.recorder.span("sql", "query-session");
    let sel = select_instrumented(
        &orders_c,
        &col("BUYER_ID").gt(lit(0)),
        &["ORDER_ID"],
        &session.recorder,
    );
    let joined =
        hash_join_instrumented(&orders_c, "ORDER_ID", &items_c, "ORDER_ID", &session.recorder);
    drop(query_span);
    match (sel, joined) {
        (Ok(sel), Ok(joined)) => {
            session.metrics.counter("sql.select_rows").add(sel.len() as u64);
            session.metrics.counter("sql.joined_rows").add(joined.len() as u64);
            export(&session, &format!("{} orders | {} joined rows", orders.len(), joined.len()));
        }
        _ => eprintln!("  JoinQuery: query failed; trace not exported"),
    }
}

fn main() {
    let args = parse_args();
    let suite = Suite::with_fraction(args.fraction);
    let machine = MachineConfig::xeon_e5645();
    eprintln!(
        "reproduce: fraction {} on simulated {} (paper testbed: 14 nodes)",
        args.fraction, machine.name
    );

    if args.table2 {
        table2();
    }
    if args.table3 {
        table3();
    }
    if args.table4 {
        table4();
    }
    if args.table5 {
        table5();
    }
    if args.table6 {
        table6();
    }

    let mut fig2_rows = Vec::new();
    let mut fig3_rows = Vec::new();
    let mut fig4_rows = Vec::new();
    let mut fig5_rows = Vec::new();
    let mut fig6_rows = Vec::new();

    let need_baseline = args.fig4 || args.fig6;
    let baseline = if need_baseline {
        eprintln!("characterizing all 19 workloads at baseline on {}...", machine.name);
        characterize::baseline_reports(&suite, &machine)
    } else {
        Vec::new()
    };

    if args.fig2 {
        eprintln!("figure 2: native sweeps + small/large characterization...");
        fig2_rows = characterize::figure2(&suite, &machine);
        section("Figure 2 — L3 MPKI: small vs large input");
        let mut t = TextTable::new(&["workload", "small (baseline)", "large (best)", "large mult"]);
        for r in &fig2_rows {
            t.row(&[
                r.workload.clone(),
                fnum(r.small_l3_mpki),
                fnum(r.large_l3_mpki),
                format!("{}X", r.large_multiplier),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig2", &fig2_rows);
    }

    if args.fig3 {
        eprintln!("figure 3: native + traced sweeps over 5 multipliers x 19 workloads...");
        fig3_rows = characterize::figure3(&suite, &machine);
        print_fig3(&fig3_rows);
        save_json(&args.json_dir, "fig3", &fig3_rows);
    }

    if args.fig4 {
        fig4_rows = characterize::figure4(&baseline, &machine);
        section("Figure 4 — instruction breakdown");
        let mut t = TextTable::new(&["name", "load", "store", "branch", "int", "fp", "int:fp"]);
        for r in &fig4_rows {
            t.row(&[
                r.name.clone(),
                format!("{:.1}%", r.load * 100.0),
                format!("{:.1}%", r.store * 100.0),
                format!("{:.1}%", r.branch * 100.0),
                format!("{:.1}%", r.int * 100.0),
                format!("{:.1}%", r.fp * 100.0),
                if r.int_fp_ratio.is_finite() { fnum(r.int_fp_ratio) } else { "inf".into() },
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig4", &fig4_rows);
    }

    if args.fig5 {
        eprintln!("figure 5: characterizing on both E5645 and E5310...");
        fig5_rows = characterize::figure5(&suite);
        section("Figure 5 — operation intensity (ops per DRAM byte)");
        let mut t = TextTable::new(&["name", "FP E5310", "FP E5645", "INT E5310", "INT E5645"]);
        for r in &fig5_rows {
            t.row(&[
                r.name.clone(),
                fnum(r.fp_e5310),
                fnum(r.fp_e5645),
                fnum(r.int_e5310),
                fnum(r.int_e5645),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig5", &fig5_rows);
    }

    if args.fig6 {
        fig6_rows = characterize::figure6(&baseline, &machine);
        section("Figure 6 — memory hierarchy MPKI");
        let mut t = TextTable::new(&["name", "L1I", "L2", "L3", "ITLB", "DTLB"]);
        for r in &fig6_rows {
            t.row(&[
                r.name.clone(),
                fnum(r.l1i_mpki),
                fnum(r.l2_mpki),
                fnum(r.l3_mpki),
                fnum(r.itlb_mpki),
                fnum(r.dtlb_mpki),
            ]);
        }
        println!("{}", t.render());
        save_json(&args.json_dir, "fig6", &fig6_rows);
    }

    if args.checks {
        let checks =
            paper::shape_checks(&fig2_rows, &fig3_rows, &fig4_rows, &fig5_rows, &fig6_rows);
        section("Shape checks vs the paper's headline claims");
        let mut t = TextTable::new(&["check", "claim", "measured", "verdict"]);
        let mut pass = 0;
        for c in &checks {
            if c.pass {
                pass += 1;
            }
            t.row(&[c.id, c.claim, &c.measured, if c.pass { "PASS" } else { "FAIL" }]);
        }
        println!("{}", t.render());
        println!("{pass}/{} shape checks passed", checks.len());
    }

    if args.trace_dir.is_some() || args.profile_dir.is_some() {
        trace_exports(
            &suite,
            args.fraction,
            args.trace_dir.as_deref(),
            args.profile_dir.as_deref(),
        );
    }

    if args.bench_json.is_some() || args.bench_baseline.is_some() {
        bench_results(&args);
    }

    if args.charmap_dir.is_some() || args.charmap_baseline.is_some() {
        charmap_pass(&args);
    }

    if let Some(seed) = args.faults_seed {
        faults_smoke(seed);
    }

    if args.slo_dir.is_some() {
        slo_pass(&args);
    }

    if args.chaos_seed.is_some() {
        chaos_pass(&args);
    }

    if args.tsdb_dir.is_some() {
        tsdb_pass(&args);
    }
}

/// Fault-injection smoke pass: the Hadoop recovery story end to end.
/// WordCount with an injected spill-write error, a map-task panic and
/// an artificial straggler must finish with output byte-identical to
/// the fault-free run, recovering via retries and speculation. Exits 1
/// if any recovery mechanism failed to engage.
fn faults_smoke(seed: u64) {
    use bdb_faults::FaultPlan;
    use bdb_mapreduce::{sites, Engine};
    use bdb_telemetry::MetricsRegistry;
    use std::time::Duration;

    section(&format!("Fault-injection smoke — seed {seed}"));
    let mut text = bdb_datagen::text::TextGenerator::wikipedia(seed);
    let input: Vec<String> = text.corpus(96 << 10).lines().map(str::to_owned).collect();

    // Spill-heavy engine shape: four map tasks so the straggler can be
    // speculated, a tiny sort buffer so the spill path runs.
    let build = |faults: FaultPlan| {
        Engine::builder().threads(4).reducers(3).map_buffer_bytes(1024).faults(faults).build()
    };
    let (clean, clean_stats) = build(FaultPlan::disabled()).run(&TraceWordCount, &input);
    if clean_stats.spills == 0 {
        die("faults smoke: fault-free run never spilled; the spill site would not fire");
    }

    let metrics = MetricsRegistry::new();
    let plan = FaultPlan::builder(seed)
        .io_error_nth(sites::SPILL_WRITE, 0)
        .panic_nth(sites::MAP_TASK, 1)
        .straggle_nth(sites::MAP_STRAGGLER, 3, Duration::from_millis(400))
        .metrics(metrics.clone())
        .build();
    let (faulty, stats) = build(plan.clone()).run(&TraceWordCount, &input);

    let mut t = TextTable::new(&["check", "expectation", "measured", "verdict"]);
    let mut failed = false;
    let mut check = |name: &str, want: &str, got: String, pass: bool| {
        failed |= !pass;
        t.row(&[name, want, &got, if pass { "PASS" } else { "FAIL" }]);
    };
    check(
        "output",
        "byte-identical to fault-free run",
        format!("{} keys", faulty.len()),
        faulty == clean,
    );
    check("injected", ">= 3 (spill error, panic, straggler)", plan.injected().to_string(), {
        plan.injected() >= 3
    });
    check("recovered", ">= 2", plan.recovered().to_string(), plan.recovered() >= 2);
    check("map retries", ">= 2", stats.map_retries.to_string(), stats.map_retries >= 2);
    check(
        "speculative wins",
        ">= 1",
        format!("{} of {} launched", stats.speculative_wins, stats.speculative_tasks),
        stats.speculative_wins >= 1,
    );
    check(
        "retry backoff",
        "> 0 (virtual time)",
        format!("{:?}", stats.retry_backoff),
        stats.retry_backoff > Duration::ZERO,
    );
    println!("{}", t.render());
    for site in [sites::SPILL_WRITE, sites::MAP_TASK, sites::MAP_STRAGGLER] {
        println!(
            "  fault.injected.{site} = {}",
            metrics.counter(&format!("fault.injected.{site}")).get()
        );
    }
    if failed {
        die("faults smoke: a recovery mechanism failed to engage (see FAIL rows above)");
    }
    println!("\nfaults smoke PASS: all injected faults recovered, output unchanged");
}

/// Online observability pass over the serving tier. Every selected
/// serving workload runs a steady phase and a shaped overload phase
/// through the `bdb-obs` pipeline (per-request trace context,
/// sliding-window tails, SLO/error-budget engine with burn-rate
/// alerts), then writes per service a plain-text dashboard
/// (`<w>.dash.txt`), a Prometheus exposition with exemplar trace ids
/// (`<w>.slo.prom.txt`) and a Chrome trace of sampled request chains
/// plus window counter tracks (`<w>.slo.trace.json`), and one
/// machine-readable `slo_report.json` for the whole run.
///
/// The pass gates itself (exit 1 on violation): the steady phase must
/// stay alert-free with rolling tails agreeing with the whole-run
/// histogram within one log bucket; the shaped overload must fire
/// exactly one page burn-rate alert, inside the overload phase; every
/// sampled request must reconstruct to a complete linked chain
/// (loadgen → queue → handler → store); and the exposition must parse
/// under the strict Prometheus grammar. Everything runs in virtual
/// time off a fixed seed, so the report is byte-identical across runs
/// and hosts. With `--bench-subset`, only the serving workloads in the
/// committed representative subset run (falling back to Nutch when the
/// subset holds none) — the fast per-PR tier.
fn slo_pass(args: &Args) {
    use bdb_obs::{dash, report, ObsConfig, ObsPipeline, Severity};
    use bdb_serving::{QueuePolicy, QueueSim, ServiceTimeModel};
    use std::time::Duration;

    const SLO_SEED: u64 = 42;
    const WORKERS: u32 = 4;
    const THRESHOLD: Duration = Duration::from_millis(50);
    // Steady horizon = rolling span (8 × 2 s windows) so the
    // rolling-vs-whole-run gate compares the same stationary stretch.
    const STEADY: Duration = Duration::from_secs(16);
    const OVERLOAD: Duration = Duration::from_secs(8);

    section("SLO — online observability over the serving tier");
    let dir = args.slo_dir.as_ref().expect("slo_pass called without --slo");
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));

    let serving = [WorkloadId::NutchServer, WorkloadId::OlioServer, WorkloadId::RubisServer];
    let selected: Vec<WorkloadId> = match args.bench_subset.as_deref().map(load_subset) {
        Some((_, ids)) => {
            let mut in_subset: Vec<WorkloadId> =
                serving.iter().copied().filter(|id| ids.contains(id)).collect();
            if in_subset.is_empty() {
                // The committed representative subset may hold no
                // serving workload; the fast tier still needs one.
                in_subset.push(WorkloadId::NutchServer);
            }
            eprintln!(
                "subset tier: observing {}",
                in_subset.iter().map(|id| id.name()).collect::<Vec<_>>().join(", ")
            );
            in_subset
        }
        None => serving.to_vec(),
    };

    // The modeled service-time distributions come from the real server
    // implementations so the observability pass tracks their shapes.
    let model_for = |id: WorkloadId| -> ServiceTimeModel {
        match id {
            WorkloadId::NutchServer => {
                bdb_serving::search::SearchServer::build(200, SLO_SEED).service_model()
            }
            WorkloadId::OlioServer => {
                bdb_serving::social::SocialServer::build(200, 8, SLO_SEED).service_model()
            }
            WorkloadId::RubisServer => {
                bdb_serving::auction::AuctionServer::build(200, 10, 100, SLO_SEED).service_model()
            }
            other => die(&format!("{} is not a serving workload", other.name())),
        }
    };

    let mut t = TextTable::new(&[
        "service",
        "offered",
        "done",
        "shed",
        "t/out",
        "roll p99",
        "budget left",
        "alerts",
    ]);
    let mut observations = Vec::new();
    for id in selected {
        let name = id.name();
        let model = model_for(id);
        let svc_seed = SLO_SEED ^ bdb_obs::phase_salt(name);
        let times = model.sample_times(2048, svc_seed);

        let steady = QueueSim::new(WORKERS).run(400.0, STEADY, &times, svc_seed);
        let policy =
            QueuePolicy { queue_capacity: Some(64), deadline: Some(Duration::from_millis(80)) };
        let overload = QueueSim::new(WORKERS).with_policy(policy).run(
            3200.0,
            OVERLOAD,
            &times,
            svc_seed ^ 0xBEEF,
        );

        // Gate: the steady phase alone stays quiet and its rolling
        // tails agree with the whole-run histogram.
        let mut quiet = ObsPipeline::new(name, ObsConfig::default_for(THRESHOLD, svc_seed));
        quiet.ingest_phase("steady", 0, &steady.records, &model);
        let quiet = quiet.finish();
        if !quiet.alerts.is_empty() {
            die(&format!("{name}: steady phase fired {} alert(s)", quiet.alerts.len()));
        }
        for q in [0.99, 0.999] {
            let roll = quiet.rolling.percentile(q).as_micros() as u64;
            let whole = quiet.whole.percentile(q).as_micros() as u64;
            let (ri, wi) = (bdb_telemetry::bucket_index(roll), bdb_telemetry::bucket_index(whole));
            if ri.abs_diff(wi) > 1 {
                die(&format!(
                    "{name}: steady-state rolling q{q} ({roll}us) disagrees with the \
                     whole-run histogram ({whole}us) by more than one bucket"
                ));
            }
        }

        // The artifact run: steady then shaped overload on one timeline.
        let mut pipe = ObsPipeline::new(name, ObsConfig::default_for(THRESHOLD, svc_seed));
        pipe.ingest_phase("steady", 0, &steady.records, &model);
        pipe.ingest_phase("overload", STEADY.as_nanos() as u64, &overload.records, &model);
        let obs = pipe.finish();

        // Gate: the shaped overload fires exactly one page alert, and
        // it lands inside the overload phase.
        let pages: Vec<_> = obs.alerts.iter().filter(|a| a.severity == Severity::Page).collect();
        if pages.len() != 1 {
            die(&format!("{name}: expected exactly one page alert, got {:?}", obs.alerts));
        }
        if obs.alerts.iter().any(|a| a.at_ns <= STEADY.as_nanos() as u64) {
            die(&format!("{name}: an alert fired before the overload phase: {:?}", obs.alerts));
        }
        // Gate: every sampled request reconstructs to a complete,
        // correctly linked chain from the flat span stream alone.
        if obs.chains_total == 0 || obs.chains_total != obs.chains_complete {
            die(&format!(
                "{name}: only {}/{} sampled chains reconstruct completely",
                obs.chains_complete, obs.chains_total
            ));
        }
        // Gate: the exposition parses under the strict grammar.
        bdb_telemetry::assert_prometheus_grammar(&obs.prometheus);

        let stem = bdb_telemetry::file_stem(name);
        let writes = [
            (format!("{stem}.dash.txt"), dash::render(&obs)),
            (format!("{stem}.slo.prom.txt"), obs.prometheus.clone()),
            (
                format!("{stem}.slo.trace.json"),
                bdb_telemetry::chrome_trace_json_with_tracks(name, &obs.spans, None, &obs.tracks),
            ),
        ];
        for (file, text) in writes {
            let path = dir.join(&file);
            std::fs::write(&path, text)
                .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
            eprintln!("wrote {}", path.display());
        }

        t.row(&[
            name.to_owned(),
            obs.totals.offered.to_string(),
            obs.totals.completed.to_string(),
            obs.totals.shed.to_string(),
            obs.totals.timed_out.to_string(),
            format!("{:.1} ms", obs.rolling.p99().as_secs_f64() * 1e3),
            format!("{:.0}%", obs.budget.remaining() * 100.0),
            obs.alerts.len().to_string(),
        ]);
        observations.push(obs);
    }
    println!("{}", t.render());

    let path = dir.join("slo_report.json");
    std::fs::write(&path, report::render_report(SLO_SEED, &observations))
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
    println!("slo pass PASS: wrote {} ({} services observed)", path.display(), observations.len());
}

/// Deterministic chaos-campaign pass: three workload tiers under
/// seeded fault schedules, each judged by invariant checkers.
///
/// * **cloud-oltp** — the replicated sharded store: lost replication
///   ships, torn WAL appends, and virtual-time node kills that take
///   down shard primaries mid-write; checked for history safety (no
///   acknowledged write lost, no invented or stale reads), exact
///   replica convergence after full repair, and fault coverage (the
///   campaign must actually have forced failovers, read-repairs, lost
///   ships, kills and rejoins).
/// * **wordcount** — MapReduce under rotating spill errors, task
///   panics and speculated stragglers; output must stay
///   byte-identical to the fault-free baseline every round.
/// * **nutch-serving** — an overloaded service with injected
///   stragglers; fault-failed requests must always be tail-sampled,
///   exposed as exemplars, and the SLO arithmetic must stay
///   consistent.
///
/// Writes `DIR/chaos_report.json` (byte-identical across runs for a
/// given seed — CI diffs two runs directly) and one Chrome trace of
/// lifecycle instants per campaign. Exits 1 if any checker fails or
/// the Cloud-OLTP campaign did not force at least one failover and one
/// read-repair. With `--bench-subset`, runs shortened campaigns (the
/// fast per-PR tier).
fn chaos_pass(args: &Args) {
    use bdb_chaos::{oltp_campaign, serving_campaign, wordcount_campaign, OltpCampaignConfig};
    use bdb_telemetry::json::ObjectWriter;

    let seed = args.chaos_seed.expect("chaos_pass called without --chaos");
    let dir = args.chaos_dir.as_ref().expect("--chaos always parses its directory");
    section(&format!("Chaos campaigns — seed {seed}"));
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));

    let short = args.bench_subset.is_some();
    let (oltp_config, rounds) = if short {
        eprintln!("subset tier: shortened campaigns");
        (OltpCampaignConfig::short(), 2)
    } else {
        (OltpCampaignConfig::default(), 3)
    };

    // Injected task panics are the campaign's business (the engine
    // catches and retries them); keep their backtraces off the console.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("injected fault:") {
            default_hook(info);
        }
    }));

    let scratch = dir.join("cluster-scratch");
    let _ = std::fs::remove_dir_all(&scratch);
    let oltp = oltp_campaign(seed, &scratch, oltp_config)
        .unwrap_or_else(|e| die(&format!("cloud-oltp campaign: {e}")));
    std::fs::remove_dir_all(&scratch).ok();
    let wordcount = wordcount_campaign(seed, rounds);
    let serving = serving_campaign(seed, rounds);
    let _ = std::panic::take_hook();
    let reports = [&oltp, &wordcount, &serving];

    let mut t = TextTable::new(&["campaign", "checker", "verdict", "details"]);
    let mut failed = false;
    for r in reports {
        for c in &r.checkers {
            failed |= !c.pass;
            let details =
                c.details.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ");
            t.row(&[r.campaign, c.name, if c.pass { "PASS" } else { "FAIL" }, &details]);
        }
    }
    println!("{}", t.render());

    for r in reports {
        let stem = bdb_telemetry::file_stem(r.campaign);
        let path = dir.join(format!("{stem}.chaos.trace.json"));
        std::fs::write(&path, bdb_telemetry::chrome_trace_json(r.campaign, &r.spans, None))
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }

    // The combined machine-readable report: byte-deterministic, so two
    // runs of the same seed diff clean.
    let mut out = String::new();
    {
        let mut o = ObjectWriter::new(&mut out);
        o.field_str("schema", "bdb-chaos-run-v1").field_u64("seed", seed);
        o.field_u64("campaigns_run", reports.len() as u64);
        let buf = o.field_raw("campaigns");
        buf.push('[');
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(r.render_json().trim_end());
        }
        buf.push(']');
        o.finish();
    }
    out.push('\n');
    let path = dir.join("chaos_report.json");
    std::fs::write(&path, out).unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
    eprintln!("wrote {}", path.display());

    // In-binary acceptance: the Cloud-OLTP campaign must actually have
    // exercised the recovery machinery, not merely avoided breaking.
    if oltp.stat("failovers").unwrap_or(0) < 1 || oltp.stat("read_repairs").unwrap_or(0) < 1 {
        eprintln!(
            "chaos FAIL: cloud-oltp forced {} failover(s) and {} read-repair(s); need >= 1 of each",
            oltp.stat("failovers").unwrap_or(0),
            oltp.stat("read_repairs").unwrap_or(0)
        );
        std::process::exit(1);
    }
    if failed {
        eprintln!("chaos FAIL: an invariant checker failed (see FAIL rows above)");
        std::process::exit(1);
    }
    println!(
        "chaos PASS: {} campaigns, {} checkers, report {}",
        reports.len(),
        reports.iter().map(|r| r.checkers.len()).sum::<usize>(),
        dir.join("chaos_report.json").display()
    );
}

/// Embedded time-series pass: the cluster and the serving tier run
/// under scrape, every sample lands in the `bdb-tsdb` store, and the
/// stored series must reproduce what the live engines saw.
///
/// * **Cluster half** — a replicated store takes traced client writes
///   (`put_traced`) through a seeded fault schedule (a lost
///   replication ship, a mid-run primary kill, a later rejoin). Every
///   node's metrics registry is scraped each virtual tick, so
///   `cluster.replication_lag_bytes` and `cluster.quorum_ack_us`
///   become stored series. The flat span stream is rebuilt into
///   per-write chains (route → WAL append → ship → quorum ack) and
///   rendered with the membership events as `timeline.txt`.
/// * **Serving half** — the Nutch search tier runs a steady phase and
///   a shaped overload through a live [`bdb_obs::ObsPipeline`] while a
///   parallel metrics registry replays the same terminal events as
///   cumulative counters plus a latency histogram, scraped on every
///   window boundary. The stored series then answer for the live run:
///   `histogram_quantile` must land within one log bucket of the live
///   whole-run p99, and replaying the burn-rate rules over the stored
///   counters must fire exactly the live alerts.
///
/// Writes `DIR/tsdb_snapshot.bin` (byte-deterministic for a seed —
/// the snapshot of a reloaded snapshot is gated to be identical),
/// `node-<n>.dash.txt` + `serving.dash.txt` sparkline dashboards, and
/// `timeline.txt`. Exits 1 on any gate. With `--bench-subset`, the
/// scrape is shortened (the fast per-PR tier).
fn tsdb_pass(args: &Args) {
    use bdb_obs::{phase_salt, ObsConfig, ObsPipeline, TraceId};
    use bdb_serving::queue::RequestOutcome;
    use bdb_serving::{QueuePolicy, QueueSim};
    use bdb_telemetry::MetricsRegistry;
    use bdb_tsdb::{
        histogram_quantile, reconstruct_writes, render_node_dashboard, render_timeline,
        replay_burn_rules, select, Scraper, TimelineEvent, Tsdb, TsdbConfig,
    };
    use std::time::Duration;

    const TSDB_SEED: u64 = 42;
    const THRESHOLD: Duration = Duration::from_millis(50);
    const STEP_US: u64 = 500;
    const SCRAPE_US: u64 = 500_000;
    const DASH_WIDTH: usize = 40;

    section("TSDB — time-series store + cluster-wide tracing");
    let dir = args.tsdb_dir.as_ref().expect("tsdb_pass called without --tsdb");
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));

    let short = args.bench_subset.is_some();
    let (writes, steady, overload) = if short {
        eprintln!("subset tier: shortened scrape");
        (24u64, Duration::from_secs(8), Duration::from_secs(4))
    } else {
        (48u64, Duration::from_secs(16), Duration::from_secs(8))
    };

    let mut db = Tsdb::new(TsdbConfig::default());

    // --- Cluster half: traced writes under faults, scraped per tick.
    const NODES: usize = 4;
    let scratch = dir.join("cluster-scratch");
    let _ = std::fs::remove_dir_all(&scratch);
    let plan = bdb_faults::FaultPlan::builder(TSDB_SEED)
        .io_error_nth(bdb_cluster::sites::SHIP_WRITE, 2)
        .build();
    let mut cluster =
        bdb_cluster::Cluster::open(&scratch, bdb_cluster::ClusterConfig::default(), plan)
            .unwrap_or_else(|e| die(&format!("opening cluster: {e}")));
    let mut scraper = Scraper::new();
    let node_names: Vec<String> = (0..NODES).map(|n| n.to_string()).collect();
    for (n, name) in node_names.iter().enumerate() {
        scraper.add_target(&[("workload", "CloudOLTP"), ("node", name)], cluster.node_metrics(n));
    }
    let salt = phase_salt("cluster-write");
    let mut t_us = 0u64;
    for i in 0..writes {
        t_us += STEP_US;
        cluster.advance(Duration::from_micros(t_us));
        // Mid-run, the primary of the shard being written dies: the
        // write itself forces the failover and a retried span chain.
        let key = format!("row{:06}", i % 16).into_bytes();
        if i == writes / 3 {
            cluster.kill_node(cluster.primary_of_shard(cluster.shard_of(&key)));
        }
        if i == 2 * writes / 3 {
            for n in 0..NODES {
                if !cluster.alive(n) {
                    cluster
                        .rejoin_node(n)
                        .unwrap_or_else(|e| die(&format!("rejoining node {n}: {e}")));
                }
            }
        }
        let value = format!("v{i}-t{t_us}").into_bytes();
        let trace = TraceId::derive(TSDB_SEED, salt, i).0;
        cluster
            .put_traced(&key, &value, trace)
            .unwrap_or_else(|e| die(&format!("traced write {i}: {e}")));
        scraper.scrape_at(&mut db, t_us);
    }
    cluster.reconcile_all().unwrap_or_else(|e| die(&format!("final repair: {e}")));
    scraper.scrape_at(&mut db, t_us + STEP_US);

    let spans = cluster.take_trace_spans();
    let chains = reconstruct_writes(&spans);
    if chains.len() != writes as usize {
        die(&format!("tsdb: {} of {writes} traced writes left a span chain", chains.len()));
    }
    let incomplete = chains.iter().filter(|c| !c.complete).count();
    if incomplete > 0 {
        die(&format!("tsdb: {incomplete} of {writes} span chains are causally incomplete"));
    }
    let events: Vec<TimelineEvent> = cluster
        .take_events()
        .into_iter()
        .map(|e| TimelineEvent {
            at_us: e.at_us,
            kind: e.kind.to_owned(),
            node: e.node,
            shard: if e.shard == usize::MAX { -1 } else { e.shard as i64 },
        })
        .collect();
    if !events.iter().any(|e| e.kind == "failover") {
        die("tsdb: the cluster run forced no failover; the timeline would be empty of interest");
    }
    std::fs::remove_dir_all(&scratch).ok();

    // The scraped store must hold the replication telemetry the chains
    // imply: a lag gauge per node and the primary's quorum-ack
    // histogram (as expanded _bucket/_count/_sum series).
    for required in ["cluster.replication_lag_bytes", "cluster.quorum_ack_us_count"] {
        if select(&db, required, &[], 0, u64::MAX).is_empty() {
            die(&format!("tsdb: required series {required} was never scraped"));
        }
    }

    // --- Serving half: live pipeline and scraped registry in parallel.
    let svc_seed = TSDB_SEED ^ phase_salt("NutchServer");
    let model = bdb_serving::search::SearchServer::build(200, TSDB_SEED).service_model();
    let times = model.sample_times(2048, svc_seed);
    let steady_run = QueueSim::new(4).run(400.0, steady, &times, svc_seed);
    let policy =
        QueuePolicy { queue_capacity: Some(64), deadline: Some(Duration::from_millis(80)) };
    let overload_run =
        QueueSim::new(4).with_policy(policy).run(3200.0, overload, &times, svc_seed ^ 0xBEEF);

    let obs_config = ObsConfig::default_for(THRESHOLD, svc_seed);
    let (spec, rules, window_us) =
        (obs_config.spec.clone(), obs_config.rules.clone(), obs_config.window.as_micros() as u64);
    let mut pipe = ObsPipeline::new("NutchServer", obs_config);
    pipe.ingest_phase("steady", 0, &steady_run.records, &model);
    pipe.ingest_phase("overload", steady.as_nanos() as u64, &overload_run.records, &model);
    let obs = pipe.finish();

    // Replay the same terminal events into a registry, scraping on
    // every window boundary (plus a finer cadence between them), so
    // the stored cumulative counters can answer for the live run.
    // Terminal times mirror `ObsPipeline::ingest_phase`: shed at
    // arrival, timed-out at abandonment, completed at finish.
    let threshold_us = THRESHOLD.as_micros() as u64;
    // (t_ns, bad, completed latency µs) per terminal event.
    let mut terminal: Vec<(u64, bool, Option<u64>)> = Vec::new();
    for (offset_ns, records) in
        [(0u64, &steady_run.records), (steady.as_nanos() as u64, &overload_run.records)]
    {
        for r in records {
            let (t, bad, latency_us) = match r.outcome {
                RequestOutcome::Shed => (Some(r.arrival_ns), true, None),
                RequestOutcome::TimedOut => (r.start_ns, true, None),
                RequestOutcome::Completed => {
                    let us = r.latency_ns() / 1_000;
                    (r.finish_ns, us >= threshold_us, Some(us))
                }
                RequestOutcome::Unfinished => (None, false, None),
            };
            if let Some(t) = t {
                terminal.push((offset_ns + t, bad, latency_us));
            }
        }
    }
    terminal.sort_unstable();

    let serving_metrics = MetricsRegistry::new();
    let mut serving_scraper = Scraper::new();
    serving_scraper
        .add_target(&[("workload", "NutchServer"), ("node", "serving")], &serving_metrics);
    let last_t_ns = terminal.last().map_or(0, |&(t, ..)| t);
    let horizon_us = (last_t_ns / 1_000).div_ceil(window_us) * window_us;
    let mut next = terminal.iter().peekable();
    let mut scrape_t = 0u64;
    while scrape_t <= horizon_us {
        // Events exactly on a boundary belong to the next window, so
        // the boundary scrape must not see them yet.
        while let Some(&&(t_ns, bad, latency_us)) = next.peek() {
            if t_ns >= scrape_t * 1_000 {
                break;
            }
            next.next();
            serving_metrics.counter("serving.requests_total").inc();
            if bad {
                serving_metrics.counter("serving.bad_total").inc();
            }
            if let Some(us) = latency_us {
                serving_metrics.histogram("serving.request_us").record_micros(us);
            }
        }
        serving_scraper.scrape_at(&mut db, scrape_t);
        scrape_t += SCRAPE_US;
    }

    // Gate: the stored histogram answers the live whole-run p99
    // within one log bucket.
    let matchers = [("workload", "NutchServer")];
    let stored_p99 = histogram_quantile(&db, "serving.request_us", &matchers, 0.99, horizon_us)
        .unwrap_or_else(|| die("tsdb: stored serving histogram is empty"));
    let live_p99 = obs.whole.percentile(0.99).as_micros() as u64;
    let (si, li) = (bdb_telemetry::bucket_index(stored_p99), bdb_telemetry::bucket_index(live_p99));
    if si.abs_diff(li) > 1 {
        die(&format!(
            "tsdb: stored p99 ({stored_p99}us) disagrees with the live window ring \
             ({live_p99}us) by more than one histogram bucket"
        ));
    }

    // Gate: replaying the burn-rate rules over the stored counters
    // fires exactly the live alerts.
    let series_of = |name: &str| -> Vec<(u64, f64)> {
        select(&db, name, &matchers, 0, u64::MAX).into_iter().next().map_or(Vec::new(), |(_, s)| s)
    };
    let n_windows = obs.window_table.last().map_or(0, |w| w.index + 1);
    let replayed = replay_burn_rules(
        spec,
        rules,
        window_us,
        &series_of("serving.bad_total"),
        &series_of("serving.requests_total"),
        n_windows,
    );
    if replayed.len() != obs.alerts.len()
        || replayed.iter().zip(&obs.alerts).any(|(r, l)| {
            r.rule != l.rule || r.window_index != l.window_index || r.at_ns != l.at_ns
        })
    {
        die(&format!(
            "tsdb: recording-rule replay fired {:?}, the live engine fired {:?}",
            replayed.iter().map(|a| (&a.rule, a.window_index)).collect::<Vec<_>>(),
            obs.alerts.iter().map(|a| (&a.rule, a.window_index)).collect::<Vec<_>>(),
        ));
    }

    // Gate + artifact: the snapshot is self-describing — reloading it
    // and snapshotting again must reproduce the bytes exactly.
    let bytes = db.snapshot_bytes();
    let reloaded = Tsdb::from_snapshot_bytes(&bytes, TsdbConfig::default())
        .unwrap_or_else(|e| die(&format!("tsdb: snapshot does not reload: {e}")));
    if reloaded.snapshot_bytes() != bytes {
        die("tsdb: snapshot round-trip is not byte-identical");
    }
    let snap_path = dir.join("tsdb_snapshot.bin");
    std::fs::write(&snap_path, &bytes)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", snap_path.display())));
    eprintln!(
        "wrote {} ({} series, {} bytes)",
        snap_path.display(),
        db.series_count(),
        bytes.len()
    );

    for node in node_names.iter().map(String::as_str).chain(["serving"]) {
        let path = dir.join(if node == "serving" {
            "serving.dash.txt".to_owned()
        } else {
            format!("node-{node}.dash.txt")
        });
        std::fs::write(&path, render_node_dashboard(&db, node, DASH_WIDTH))
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }
    let timeline_path = dir.join("timeline.txt");
    std::fs::write(&timeline_path, render_timeline(&events, &chains))
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", timeline_path.display())));
    eprintln!("wrote {}", timeline_path.display());

    let acked = chains.iter().filter(|c| c.acked).count();
    let scrapes = series_of("serving.requests_total").len();
    println!(
        "tsdb pass PASS: {} series, {scrapes} serving scrapes, {}/{writes} chains acked, \
         stored p99 {stored_p99}us vs live {live_p99}us, {} alert(s) replayed exactly",
        db.series_count(),
        acked,
        replayed.len(),
    );
}

/// Resolves the representative subset committed in a `charmap.json`
/// into workload ids, preserving the artifact's (sorted) order.
fn load_subset(path: &std::path::Path) -> (Vec<String>, Vec<WorkloadId>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("reading subset {}: {e}", path.display())));
    let baseline = bdb_charmap::report::Baseline::parse(&text)
        .unwrap_or_else(|e| die(&format!("{}: {e}", path.display())));
    let ids = baseline
        .subset
        .iter()
        .map(|name| {
            WorkloadId::ALL
                .iter()
                .copied()
                .find(|id| id.name() == name)
                .unwrap_or_else(|| die(&format!("subset names unknown workload {name:?}")))
        })
        .collect();
    (baseline.subset, ids)
}

/// Collects the BENCH_RESULTS.json artifact and, when a baseline is
/// given, gates the run on it (exit 1 on drift beyond tolerance).
/// With `--bench-subset`, only the representative workloads from the
/// committed charmap are run and gated — the fast per-PR tier.
fn bench_results(args: &Args) {
    use bdb_bench::results::{collect, compare_json, compare_json_subset, DEFAULT_WORKLOADS};

    section("BENCH_RESULTS — simulated performance artifact");
    let subset = args.bench_subset.as_deref().map(load_subset);
    let ids: Vec<WorkloadId> = match &subset {
        Some((names, ids)) => {
            eprintln!("representative subset: {}", names.join(", "));
            ids.clone()
        }
        None => DEFAULT_WORKLOADS.to_vec(),
    };
    eprintln!("collecting {} workloads at fraction {}...", ids.len(), args.fraction);
    let results = collect(args.fraction, &ids);
    let current = results.to_json();
    let mut t = TextTable::new(&["workload", "metric", "MIPS", "L1I", "L2", "L3 MPKI", "phases"]);
    for w in &results.workloads {
        t.row(&[
            w.name.clone(),
            format!("{} {}", fnum(w.metric_value), w.metric_unit),
            fnum(w.mips),
            fnum(w.mpki[0]),
            fnum(w.mpki[2]),
            fnum(w.mpki[3]),
            w.phases.len().to_string(),
        ]);
    }
    println!("{}", t.render());

    if let Some(path) = &args.bench_json {
        match results.write(path) {
            Ok(()) => eprintln!("  wrote {}", path.display()),
            Err(e) => die(&format!("writing {}: {e}", path.display())),
        }
    }
    if let Some(path) = &args.bench_baseline {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("reading baseline {}: {e}", path.display())));
        let compared = match &subset {
            Some((names, _)) => {
                compare_json_subset(&baseline, &current, args.bench_tolerance, names)
            }
            None => compare_json(&baseline, &current, args.bench_tolerance),
        };
        match compared {
            Ok(drifts) if drifts.is_empty() => {
                println!(
                    "bench-check PASS: all gated metrics within {}% of {}{}",
                    args.bench_tolerance,
                    path.display(),
                    if subset.is_some() { " (representative subset)" } else { "" }
                );
            }
            Ok(drifts) => {
                eprintln!(
                    "bench-check FAIL: {} metric(s) drifted beyond {}% of {}:",
                    drifts.len(),
                    args.bench_tolerance,
                    path.display()
                );
                for d in &drifts {
                    eprintln!("  {d}");
                }
                std::process::exit(1);
            }
            Err(e) => die(&format!("bench-check: {e}")),
        }
    }
}

/// Workload characterization pass: metric vectors over the default
/// workload set -> PCA -> clustering -> representative subset, written
/// as `charmap.txt` + `charmap.json` into `--charmap DIR`. Gated
/// in-binary (mirroring the `--profile` contract checks) so CI catches
/// regressions without parsing the artifacts:
///
/// * the retained components must cover the variance target;
/// * the subset must be non-empty and smaller than the full set;
/// * with `--charmap-baseline`, the fresh map must satisfy the subset
///   stability rule against the committed artifact (exit 1 otherwise).
fn charmap_pass(args: &Args) {
    use bdb_bench::results::DEFAULT_WORKLOADS;
    use bdb_charmap::{analyze, validate_baseline, DEFAULT_SEED, VARIANCE_TARGET};

    section("Workload characterization map — PCA + clustering + subset");
    // Read the committed baseline up front so an unreadable path fails
    // before the expensive characterization pass, not after.
    let committed = args.charmap_baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("reading charmap baseline {}: {e}", path.display())));
        (path, text)
    });
    eprintln!(
        "characterizing {} workloads at fraction {} (seed {DEFAULT_SEED})...",
        DEFAULT_WORKLOADS.len(),
        args.fraction
    );
    let input = bdb_bench::charmap::analysis_input(args.fraction, &DEFAULT_WORKLOADS);
    let map = analyze(&input, DEFAULT_SEED).unwrap_or_else(|e| die(&format!("charmap: {e}")));

    let mut t = TextTable::new(&["cluster", "members", "representative"]);
    for (i, c) in map.clusters.iter().enumerate() {
        t.row(&[i.to_string(), c.members.join(", "), c.representative.clone()]);
    }
    println!("{}", t.render());
    println!(
        "PCA: {} of {} components retain {:.1}% of variance | k = {} \
         (silhouette {:.3}, hierarchical agreement {:.3})",
        map.retained,
        map.eigenvalues.len(),
        map.variance_retained * 100.0,
        map.k,
        map.silhouette,
        map.hier_agreement
    );

    if map.variance_retained < VARIANCE_TARGET {
        die(&format!(
            "charmap retains only {:.2}% variance (target {:.0}%)",
            map.variance_retained * 100.0,
            VARIANCE_TARGET * 100.0
        ));
    }
    if map.subset.is_empty() || map.subset.len() >= map.workloads.len() {
        die(&format!(
            "charmap subset degenerate: {} representatives for {} workloads",
            map.subset.len(),
            map.workloads.len()
        ));
    }

    if let Some(dir) = &args.charmap_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("creating {}: {e}", dir.display()));
        }
        for (name, body) in [("charmap.txt", map.to_text()), ("charmap.json", map.to_json())] {
            let path = dir.join(name);
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("  wrote {}", path.display()),
                Err(e) => die(&format!("writing {}: {e}", path.display())),
            }
        }
    }

    if let Some((path, committed)) = &committed {
        match validate_baseline(&map, committed) {
            Ok(()) => println!(
                "charmap-check PASS: subset stable against {} (k = {}, subset: {})",
                path.display(),
                map.k,
                map.subset.join(", ")
            ),
            Err(e) => {
                eprintln!("charmap-check FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
}
