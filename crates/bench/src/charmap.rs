//! Metric-vector extraction for the workload characterization map.
//!
//! Bridges the suite to `bdb-charmap`: every workload in
//! [`crate::results::DEFAULT_WORKLOADS`] is run under the architecture
//! simulator and summarized as one fixed vector — the 16 base features
//! of [`bdb_archsim::BASE_FEATURES`] (rates, MPKIs, instruction mix,
//! operation intensity) plus the [`DERIVED_FEATURES`] computed from
//! the per-phase breakdown. Phase-weighted features distinguish
//! workloads whose *aggregate* counters look alike but whose time is
//! concentrated in very different phases (e.g. a shuffle-bound sort
//! vs. a map-bound scan with similar whole-run MPKI).

use bdb_charmap::{AnalysisInput, MetricVector};
use bigdatabench::characterize::phase_rows;
use bigdatabench::{CharacterizationReport, MachineConfig, Suite, WorkloadId};

/// Features derived from the per-phase counter breakdown, appended
/// after [`bdb_archsim::BASE_FEATURES`] in every vector:
///
/// * `dominant_phase_cycle_share` — the largest single phase's share
///   of modeled cycles (1.0 for single-phase runs);
/// * `phase_weighted_mips` — per-phase MIPS weighted by cycle share;
/// * `phase_weighted_l2_mpki` / `phase_weighted_l3_mpki` — per-phase
///   MPKI weighted by *instruction* share, emphasizing the phases that
///   actually retire the work.
pub const DERIVED_FEATURES: [&str; 4] = [
    "dominant_phase_cycle_share",
    "phase_weighted_mips",
    "phase_weighted_l2_mpki",
    "phase_weighted_l3_mpki",
];

/// The full feature list, in vector order.
pub fn feature_names() -> Vec<String> {
    bdb_archsim::BASE_FEATURES
        .iter()
        .chain(DERIVED_FEATURES.iter())
        .map(|s| (*s).to_owned())
        .collect()
}

/// Builds one workload's metric vector from its traced report.
pub fn metric_vector(id: WorkloadId, report: &CharacterizationReport) -> MetricVector {
    let mut values: Vec<f64> = report.feature_vector().into_iter().map(|(_, v)| v).collect();
    let rows = phase_rows(id.name(), report);
    if rows.is_empty() {
        // No phase marks: the whole run is one phase, so the derived
        // features degrade continuously to their aggregate values.
        values.extend([1.0, report.mips(), report.l2_mpki(), report.l3_mpki()]);
    } else {
        let dominant = rows.iter().map(|r| r.cycle_share).fold(0.0, f64::max);
        let mips: f64 = rows.iter().map(|r| r.cycle_share * r.mips).sum();
        let l2: f64 = rows.iter().map(|r| r.instruction_share * r.l2_mpki).sum();
        let l3: f64 = rows.iter().map(|r| r.instruction_share * r.l3_mpki).sum();
        values.extend([dominant, mips, l2, l3]);
    }
    MetricVector { name: id.name().to_owned(), values }
}

/// Runs `ids` traced at `fraction` scale and assembles the
/// [`AnalysisInput`] for `bdb_charmap::analyze`.
pub fn analysis_input(fraction: f64, ids: &[WorkloadId]) -> AnalysisInput {
    let suite = Suite::with_fraction(fraction);
    let machine = MachineConfig::xeon_e5645();
    let vectors = ids
        .iter()
        .map(|&id| {
            let report = suite.run_traced(id, 1, machine.clone());
            metric_vector(id, &report)
        })
        .collect();
    AnalysisInput { machine: machine.name, fraction, features: feature_names(), vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_match_the_feature_list_and_are_deterministic() {
        let input = analysis_input(1.0 / 64.0, &[WorkloadId::WordCount, WorkloadId::Sort]);
        assert_eq!(input.features, feature_names());
        assert_eq!(input.features.len(), bdb_archsim::BASE_FEATURES.len() + 4);
        for v in &input.vectors {
            assert_eq!(v.values.len(), input.features.len(), "{}", v.name);
            assert!(v.values.iter().all(|x| x.is_finite()), "{}: {:?}", v.name, v.values);
        }
        // Dominant phase share is a share; weighted MIPS is positive.
        let dom = input.features.iter().position(|f| f == "dominant_phase_cycle_share").unwrap();
        let wmips = input.features.iter().position(|f| f == "phase_weighted_mips").unwrap();
        for v in &input.vectors {
            assert!(v.values[dom] > 0.0 && v.values[dom] <= 1.0, "{}: {}", v.name, v.values[dom]);
            assert!(v.values[wmips] > 0.0, "{}: {}", v.name, v.values[wmips]);
        }
        let again = analysis_input(1.0 / 64.0, &[WorkloadId::WordCount, WorkloadId::Sort]);
        for (a, b) in input.vectors.iter().zip(&again.vectors) {
            assert_eq!(a, b, "traced vectors are bit-deterministic");
        }
    }

    #[test]
    fn full_default_set_analyzes_above_the_variance_target() {
        let input = analysis_input(1.0 / 64.0, &crate::results::DEFAULT_WORKLOADS);
        assert_eq!(input.vectors.len(), 10);
        let map = bdb_charmap::analyze(&input, bdb_charmap::DEFAULT_SEED).expect("analyzes");
        assert!(map.variance_retained >= bdb_charmap::VARIANCE_TARGET);
        assert!(map.k >= 2 && map.k < 10);
        assert_eq!(map.subset.len(), map.k);
    }
}
