//! The versioned `BENCH_RESULTS.json` regression artifact.
//!
//! [`collect`] runs a fixed set of workloads natively (for the
//! user-perceivable metric and wall time) and under the architecture
//! simulator (for MIPS, MPKI, instruction mix, operation intensity and
//! the per-phase counter breakdown), then renders everything as one
//! stable JSON document. [`compare_json`] diffs two such documents and
//! reports every simulated metric that drifted beyond a tolerance —
//! the `ci.sh --bench-check` gate. Wall-clock numbers are recorded for
//! context but never gated: only deterministic simulator outputs are.
//!
//! The JSON is written by hand through [`bdb_telemetry::json`] so the
//! artifact builds identically with or without a real `serde_json`.

use bdb_telemetry::json::ObjectWriter;
use bigdatabench::{MachineConfig, Suite, WorkloadId};
use std::path::Path;
use std::time::Instant;

/// Bumped whenever the JSON layout changes incompatibly; the
/// comparator refuses to diff documents of different versions.
/// v2: `mpki` gained `branch` (mispredicts per kilo-instruction) and
/// the workload set grew from 5 to all 8 traced workloads.
/// v3: workloads gained a gated top-level `dram_bytes` counter and the
/// set grew to 10 — all three relational query workloads are tracked so
/// the vectorized engine's instruction/DRAM wins stay pinned.
pub const SCHEMA_VERSION: u64 = 3;

/// Workloads captured in the artifact: every traced workload, covering
/// each paper scenario family (micro MapReduce ×2, graph analytics ×2,
/// machine learning, relational query ×3, search serving, Cloud OLTP).
pub const DEFAULT_WORKLOADS: [WorkloadId; 10] = [
    WorkloadId::WordCount,
    WorkloadId::Sort,
    WorkloadId::PageRank,
    WorkloadId::ConnectedComponents,
    WorkloadId::KMeans,
    WorkloadId::NutchServer,
    WorkloadId::Read,
    WorkloadId::SelectQuery,
    WorkloadId::AggregateQuery,
    WorkloadId::JoinQuery,
];

/// One phase of one workload, as raw counters (not rates), so the
/// golden test can assert the phases partition the whole run.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase name (`map`, `iter-3`, `build`...), first-appearance order.
    pub name: String,
    /// Instructions retired in the phase.
    pub instructions: u64,
    /// Modeled cycles spent in the phase.
    pub cycles: u64,
    /// L2 misses within the phase.
    pub l2_misses: u64,
    /// Last-level cache misses within the phase.
    pub llc_misses: u64,
    /// Modeled DRAM traffic attributed to the phase.
    pub dram_bytes: u64,
}

/// One workload's native measurement plus simulated characterization.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name, Table 6 spelling.
    pub name: String,
    /// Native wall time of the run (context only — never gated).
    pub wall_ms: f64,
    /// Unit of the user-perceivable metric (`B/s`, `ops/s`, `req/s`).
    pub metric_unit: &'static str,
    /// The user-perceivable rate (records/bytes/requests per second).
    pub metric_value: f64,
    /// Timing-model MIPS.
    pub mips: f64,
    /// Instructions per cycle from the timing model.
    pub ipc: f64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Total modeled cycles.
    pub cycles: u64,
    /// Total modeled DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Misses per kilo-instruction: L1I, L1D, L2, L3, ITLB, DTLB, plus
    /// branch mispredicts per kilo-instruction.
    pub mpki: [f64; 7],
    /// Instruction-mix fractions: load, store, branch, int, fp.
    pub mix: [f64; 5],
    /// Integer operations per DRAM byte.
    pub int_per_dram_byte: f64,
    /// FP operations per DRAM byte.
    pub fp_per_dram_byte: f64,
    /// Per-phase counter breakdown; phases partition the whole run.
    pub phases: Vec<PhaseResult>,
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct BenchResults {
    /// Simulated machine the characterization ran on.
    pub machine: String,
    /// Input-scale fraction the suite ran at.
    pub fraction: f64,
    /// Per-workload results.
    pub workloads: Vec<WorkloadResult>,
}

/// Runs `ids` at `fraction` scale and gathers the artifact.
pub fn collect(fraction: f64, ids: &[WorkloadId]) -> BenchResults {
    let suite = Suite::with_fraction(fraction);
    let machine = MachineConfig::xeon_e5645();
    let workloads = ids
        .iter()
        .map(|&id| {
            let wall_start = Instant::now();
            let native = suite.run_native(id, 1);
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1_000.0;
            let report = suite.run_traced(id, 1, machine.clone());
            let total = report.mix.total();
            let phases = report
                .phases
                .iter()
                .map(|p| PhaseResult {
                    name: p.name.clone(),
                    instructions: p.counters.instructions(),
                    cycles: p.counters.cycles,
                    l2_misses: p.counters.l2.misses,
                    llc_misses: p.counters.llc_misses,
                    dram_bytes: p.counters.dram_bytes,
                })
                .collect();
            use bdb_archsim::metrics::InstClass;
            WorkloadResult {
                name: id.name().to_owned(),
                wall_ms,
                metric_unit: native.metric.unit(),
                metric_value: native.metric.value(),
                mips: report.mips(),
                ipc: report.ipc(),
                instructions: total,
                cycles: report.cycles,
                dram_bytes: report.dram_bytes,
                mpki: [
                    report.l1i_mpki(),
                    report.l1d.stats.mpki(total),
                    report.l2_mpki(),
                    report.l3_mpki(),
                    report.itlb_mpki(),
                    report.dtlb_mpki(),
                    report.branch_mpki(),
                ],
                mix: [
                    report.mix.fraction(InstClass::Load),
                    report.mix.fraction(InstClass::Store),
                    report.mix.fraction(InstClass::Branch),
                    report.mix.fraction(InstClass::Int),
                    report.mix.fraction(InstClass::Fp),
                ],
                int_per_dram_byte: report.int_intensity(),
                fp_per_dram_byte: report.fp_intensity(),
                phases,
            }
        })
        .collect();
    BenchResults { machine: machine.name, fraction, workloads }
}

const MPKI_KEYS: [&str; 7] = ["l1i", "l1d", "l2", "l3", "itlb", "dtlb", "branch"];
const MIX_KEYS: [&str; 5] = ["load", "store", "branch", "int", "fp"];

impl BenchResults {
    /// Renders the artifact as pretty-stable JSON (one workload per
    /// line group, keys in fixed order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut root = ObjectWriter::new(&mut out);
        root.field_u64("schema_version", SCHEMA_VERSION)
            .field_str("machine", &self.machine)
            .field_f64("fraction", self.fraction);
        {
            let buf = root.field_raw("workloads");
            buf.push('[');
            for (i, w) in self.workloads.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                buf.push_str("\n  ");
                write_workload(buf, w);
            }
            buf.push_str("\n]");
        }
        root.finish();
        out.push('\n');
        out
    }

    /// Writes [`BenchResults::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

fn write_workload(out: &mut String, w: &WorkloadResult) {
    let mut o = ObjectWriter::new(out);
    o.field_str("name", &w.name)
        .field_f64("wall_ms", w.wall_ms)
        .field_str("metric_unit", w.metric_unit)
        .field_f64("metric_value", w.metric_value)
        .field_f64("mips", w.mips)
        .field_f64("ipc", w.ipc)
        .field_u64("instructions", w.instructions)
        .field_u64("cycles", w.cycles)
        .field_u64("dram_bytes", w.dram_bytes);
    {
        let buf = o.field_raw("mpki");
        let mut m = ObjectWriter::new(buf);
        for (key, value) in MPKI_KEYS.iter().zip(w.mpki) {
            m.field_f64(key, value);
        }
        m.finish();
    }
    {
        let buf = o.field_raw("mix");
        let mut m = ObjectWriter::new(buf);
        for (key, value) in MIX_KEYS.iter().zip(w.mix) {
            m.field_f64(key, value);
        }
        m.finish();
    }
    o.field_f64("int_per_dram_byte", w.int_per_dram_byte)
        .field_f64("fp_per_dram_byte", w.fp_per_dram_byte);
    {
        let buf = o.field_raw("phases");
        buf.push('[');
        for (i, p) in w.phases.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let mut ph = ObjectWriter::new(buf);
            ph.field_str("name", &p.name)
                .field_u64("instructions", p.instructions)
                .field_u64("cycles", p.cycles)
                .field_u64("l2_misses", p.l2_misses)
                .field_u64("llc_misses", p.llc_misses)
                .field_u64("dram_bytes", p.dram_bytes);
            ph.finish();
        }
        buf.push(']');
    }
    o.finish();
}

/// One simulated metric that moved beyond tolerance between two
/// artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Workload name.
    pub workload: String,
    /// Metric path within the workload object (e.g. `mpki.l2`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (positive = increased).
    pub change_pct: f64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} -> {} ({:+.2}%)",
            self.workload, self.metric, self.baseline, self.current, self.change_pct
        )
    }
}

/// A tiny structural JSON reader for the comparator: it needs numbers
/// and strings by key path from documents *we* wrote, nothing more.
/// Hand-rolled so the gate works against any `serde_json` (including
/// offline stand-ins whose serializers are inert).
mod reader {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true`/`false`.
        Bool(bool),
        /// Any number (parsed as f64; exact for the u64s we gate on
        /// only up to 2^53, which simulated counters stay far below).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, insertion order preserved.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number, if this is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parses `text` into a [`Json`] tree.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Json::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Json::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Json::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, text: &str, v: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(text.as_bytes()) {
            *pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut s = String::new();
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("bad \\u escape at byte {pos}", pos = *pos)
                                })?;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        Some(&esc) => s.push(esc as char),
                        None => return Err("unterminated escape".to_owned()),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let ch_len = utf8_len(c);
                    let chunk = b
                        .get(*pos..*pos + ch_len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {pos}", pos = *pos))?;
                    s.push_str(chunk);
                    *pos += ch_len;
                }
            }
        }
        Err("unterminated string".to_owned())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0xF0..=0xF7 => 4,
            0xE0..=0xEF => 3,
            0xC0..=0xDF => 2,
            _ => 1,
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1; // '{'
        let mut members = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}", pos = *pos));
            }
            *pos += 1;
            members.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
            }
        }
    }
}

/// The gated metric paths: deterministic simulator outputs only.
const GATED: [&str; 5] = ["mips", "ipc", "instructions", "cycles", "dram_bytes"];

fn change_pct(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline * 100.0
    }
}

fn require_f64(v: &reader::Json, workload: &str, path: &str) -> Result<f64, String> {
    let mut node = v;
    for part in path.split('.') {
        node =
            node.get(part).ok_or_else(|| format!("workload {workload}: missing field {path}"))?;
    }
    node.as_f64().ok_or_else(|| format!("workload {workload}: field {path} is not a number"))
}

/// Diffs two artifacts, returning every gated metric whose relative
/// change exceeds `tolerance_pct` in either direction.
///
/// # Errors
///
/// Returns an explanation when the documents are not comparable:
/// malformed JSON, different schema versions, different input
/// fractions, or a baseline workload missing from the current run.
pub fn compare_json(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
) -> Result<Vec<Drift>, String> {
    compare_json_filtered(baseline, current, tolerance_pct, None)
}

/// Like [`compare_json`], but gating only the workloads named in
/// `subset` — the representative-subset fast tier (`ci.sh --subset`).
/// The current run may legitimately contain only the subset workloads;
/// baseline workloads outside the subset are skipped, not required.
///
/// # Errors
///
/// Everything [`compare_json`] rejects, plus a subset workload missing
/// from the *baseline* (a stale subset names a workload the artifact
/// no longer tracks).
pub fn compare_json_subset(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
    subset: &[String],
) -> Result<Vec<Drift>, String> {
    compare_json_filtered(baseline, current, tolerance_pct, Some(subset))
}

fn compare_json_filtered(
    baseline: &str,
    current: &str,
    tolerance_pct: f64,
    subset: Option<&[String]>,
) -> Result<Vec<Drift>, String> {
    let base = reader::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = reader::parse(current).map_err(|e| format!("current: {e}"))?;
    for (doc, label) in [(&base, "baseline"), (&cur, "current")] {
        let version = doc
            .get("schema_version")
            .and_then(reader::Json::as_f64)
            .ok_or_else(|| format!("{label}: missing schema_version"))?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "{label}: schema_version {version} != supported {SCHEMA_VERSION}; regenerate the baseline"
            ));
        }
    }
    let base_fraction = base.get("fraction").and_then(reader::Json::as_f64);
    let cur_fraction = cur.get("fraction").and_then(reader::Json::as_f64);
    if base_fraction != cur_fraction {
        return Err(format!(
            "input fractions differ (baseline {base_fraction:?}, current {cur_fraction:?}); \
             the runs are not comparable"
        ));
    }
    let empty: [reader::Json; 0] = [];
    let base_workloads = base.get("workloads").and_then(reader::Json::as_array).unwrap_or(&empty);
    let cur_workloads = cur.get("workloads").and_then(reader::Json::as_array).unwrap_or(&empty);
    if let Some(subset) = subset {
        for name in subset {
            if !base_workloads
                .iter()
                .any(|w| w.get("name").and_then(reader::Json::as_str) == Some(name))
            {
                return Err(format!(
                    "subset workload {name} missing from the baseline; \
                     regenerate BENCH_RESULTS.json or charmap.json"
                ));
            }
        }
    }
    let mut drifts = Vec::new();
    for bw in base_workloads {
        let name = bw.get("name").and_then(reader::Json::as_str).unwrap_or("?").to_owned();
        if let Some(subset) = subset {
            if !subset.contains(&name) {
                continue;
            }
        }
        let Some(cw) = cur_workloads
            .iter()
            .find(|w| w.get("name").and_then(reader::Json::as_str) == Some(&name))
        else {
            return Err(format!(
                "workload {name} present in baseline but missing from current run"
            ));
        };
        let mut paths: Vec<String> = GATED.iter().map(|m| (*m).to_owned()).collect();
        paths.extend(MPKI_KEYS.iter().map(|k| format!("mpki.{k}")));
        for path in paths {
            let b = require_f64(bw, &name, &path)?;
            let c = require_f64(cw, &name, &path)?;
            let pct = change_pct(b, c);
            if pct.abs() > tolerance_pct {
                drifts.push(Drift {
                    workload: name.clone(),
                    metric: path,
                    baseline: b,
                    current: c,
                    change_pct: pct,
                });
            }
        }
    }
    Ok(drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchResults {
        collect(1.0 / 64.0, &[WorkloadId::WordCount])
    }

    #[test]
    fn artifact_round_trips_through_own_reader() {
        let results = tiny();
        let json = results.to_json();
        let v = reader::parse(&json).expect("self-written JSON parses");
        assert_eq!(
            v.get("schema_version").and_then(reader::Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        let workloads = v.get("workloads").and_then(reader::Json::as_array).unwrap();
        assert_eq!(workloads.len(), 1);
        let w = &workloads[0];
        assert_eq!(w.get("name").and_then(reader::Json::as_str), Some("WordCount"));
        assert!(w.get("mips").and_then(reader::Json::as_f64).unwrap() > 0.0);
        let phases = w.get("phases").and_then(reader::Json::as_array).unwrap();
        assert!(!phases.is_empty(), "WordCount records map/shuffle/reduce phases");
        let phase_instructions: f64 = phases
            .iter()
            .map(|p| p.get("instructions").and_then(reader::Json::as_f64).unwrap())
            .sum();
        let total = w.get("instructions").and_then(reader::Json::as_f64).unwrap();
        assert!((phase_instructions - total).abs() < 0.5, "phases partition the run");
    }

    #[test]
    fn identical_artifacts_show_no_drift() {
        let json = tiny().to_json();
        let drifts = compare_json(&json, &json, 0.0).expect("comparable");
        assert!(drifts.is_empty(), "{drifts:?}");
    }

    #[test]
    fn drift_beyond_tolerance_is_reported() {
        let results = tiny();
        let mut moved = results.clone();
        moved.workloads[0].mips *= 1.25;
        moved.workloads[0].mpki[2] *= 0.9;
        let drifts = compare_json(&results.to_json(), &moved.to_json(), 5.0).expect("comparable");
        let metrics: Vec<&str> = drifts.iter().map(|d| d.metric.as_str()).collect();
        assert!(metrics.contains(&"mips"), "{metrics:?}");
        assert!(metrics.contains(&"mpki.l2"), "{metrics:?}");
        assert!(drifts.iter().all(|d| d.change_pct.abs() > 5.0));
        // Within tolerance the same pair is clean.
        let ok = compare_json(&results.to_json(), &moved.to_json(), 30.0).expect("comparable");
        assert!(ok.is_empty());
    }

    #[test]
    fn incompatible_documents_are_refused() {
        let json = tiny().to_json();
        let other_version = json.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert!(compare_json(&other_version, &json, 5.0).is_err());
        let other_fraction = json.replacen("\"fraction\":", "\"fraction\":0.5, \"x\":", 1);
        assert!(compare_json(&json, &other_fraction, 5.0).is_err());
        let renamed = json.replacen("\"name\":\"WordCount\"", "\"name\":\"Sort\"", 1);
        assert!(compare_json(&renamed, &json, 5.0).is_err(), "missing workload is an error");
        assert!(compare_json("not json", &json, 5.0).is_err());
    }

    #[test]
    fn subset_compare_gates_only_named_workloads() {
        let both = collect(1.0 / 64.0, &[WorkloadId::WordCount, WorkloadId::Sort]);
        let mut moved = both.clone();
        // Sort drifts wildly, WordCount stays put.
        let sort = moved.workloads.iter_mut().find(|w| w.name == "Sort").unwrap();
        sort.mips *= 2.0;
        let subset = vec!["WordCount".to_owned()];
        let drifts =
            compare_json_subset(&both.to_json(), &moved.to_json(), 1.0, &subset).expect("compares");
        assert!(drifts.is_empty(), "Sort is outside the subset: {drifts:?}");
        // The full comparator still sees the drift.
        let full = compare_json(&both.to_json(), &moved.to_json(), 1.0).expect("compares");
        assert!(full.iter().any(|d| d.workload == "Sort" && d.metric == "mips"), "{full:?}");

        // A current run holding only the subset workloads is fine...
        let only_subset = collect(1.0 / 64.0, &[WorkloadId::WordCount]);
        compare_json_subset(&both.to_json(), &only_subset.to_json(), 1.0, &subset)
            .expect("subset-only current run is comparable");
        // ...but a subset naming an untracked workload is an error.
        let stale = vec!["PageRank".to_owned()];
        let err =
            compare_json_subset(&both.to_json(), &only_subset.to_json(), 1.0, &stale).unwrap_err();
        assert!(err.contains("missing from the baseline"), "{err}");
    }

    #[test]
    fn artifact_reports_branch_mpki() {
        let json = tiny().to_json();
        let v = reader::parse(&json).expect("parses");
        let w = &v.get("workloads").and_then(reader::Json::as_array).unwrap()[0];
        let branch = w.get("mpki").and_then(|m| m.get("branch")).and_then(reader::Json::as_f64);
        assert!(branch.is_some(), "mpki.branch present");
        assert!(branch.unwrap() >= 0.0);
    }

    #[test]
    fn collect_is_deterministic_on_sim_metrics() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.workloads[0].instructions, b.workloads[0].instructions);
        assert_eq!(a.workloads[0].cycles, b.workloads[0].cycles);
        assert_eq!(a.workloads[0].mpki, b.workloads[0].mpki);
        // Only wall_ms (and possibly the native rate) may differ.
        let drifts = compare_json(&a.to_json(), &b.to_json(), 0.0).expect("comparable");
        assert!(drifts.is_empty(), "sim metrics must be bit-stable: {drifts:?}");
    }
}
