//! Shared formatting and experiment plumbing for the BigDataBench-RS
//! benchmark harness.
//!
//! The `reproduce` binary (see `src/bin/reproduce.rs`) regenerates every
//! table and figure of the paper's evaluation; the Criterion benches
//! under `benches/` measure substrate performance. This library holds
//! the text-table formatter and the paper's reference values used for
//! side-by-side reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charmap;
pub mod paper;
pub mod results;
pub mod table;

pub use results::{collect, compare_json, compare_json_subset, BenchResults, Drift};
pub use table::TextTable;
