//! Minimal text-table rendering for terminal reports.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use bdb_bench::TextTable;
/// let mut t = TextTable::new(&["name", "value"]);
/// t.row(&["alpha", "1"]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows.push(cells.iter().map(|s| s.as_ref().to_owned()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r, &widths);
        }
        out
    }
}

/// Formats a float with adaptive precision (3 significant-ish digits).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines padded to same prefix width for column 2.
        let col2_positions: Vec<usize> =
            lines.iter().filter_map(|l| l.find("1").or(l.find("22")).or(l.find("long"))).collect();
        assert_eq!(col2_positions.len(), 3, "header and both rows carry column 2");
        assert!(col2_positions.windows(2).all(|w| w[0] == w[1]), "column 2 aligned");
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1", "extra"]);
        t.row::<&str>(&[]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(0.00123), "0.00123");
    }
}
