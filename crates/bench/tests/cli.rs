//! CLI contract tests for the `reproduce` binary: unknown arguments
//! and missing values must print usage and exit 2; `--help` must
//! document every flag, including the bench-artifact ones.

use std::process::Command;

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

#[test]
fn unknown_argument_prints_usage_and_exits_2() {
    let out = reproduce().arg("--no-such-flag").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `--no-such-flag`"), "{stderr}");
    assert!(stderr.contains("usage: reproduce"), "usage text on stderr: {stderr}");
}

#[test]
fn stray_positional_is_rejected() {
    let out = reproduce().args(["--checks", "extra"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument `extra`"));
}

#[test]
fn flag_missing_its_value_is_a_usage_error() {
    for flag in [
        "--fraction",
        "--json",
        "--trace",
        "--profile",
        "--bench-json",
        "--bench-baseline",
        "--bench-subset",
        "--charmap",
        "--charmap-baseline",
        "--slo",
        "--tsdb",
    ] {
        let out = reproduce().arg(flag).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{flag} without value");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(&format!("{flag} needs a value")), "{flag}: {stderr}");
    }
}

#[test]
fn bad_numeric_values_are_usage_errors() {
    let out = reproduce().args(["--fraction", "nope"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = reproduce().args(["--bench-tolerance", "-3"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bench_subset_requires_a_bench_baseline() {
    let out = reproduce().args(["--bench-subset", "charmap.json"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bench-subset requires --bench-baseline"), "{stderr}");
}

#[test]
fn missing_charmap_baseline_file_is_an_error() {
    let out = reproduce()
        .args(["--charmap-baseline", "/no/such/charmap.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "die() on unreadable baseline");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/no/such/charmap.json"), "{stderr}");
}

#[test]
fn chaos_missing_either_value_is_a_usage_error() {
    // `--chaos` takes two values; stopping after zero or one of them is
    // a usage error naming the full shape.
    for args in [vec!["--chaos"], vec!["--chaos", "7"]] {
        let out = reproduce().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--chaos needs a seed and a directory"), "{args:?}: {stderr}");
        assert!(stderr.contains("usage: reproduce"), "{args:?}: {stderr}");
    }
}

#[test]
fn chaos_rejects_a_non_integer_seed() {
    let out = reproduce().args(["--chaos", "lucky", "/tmp/x"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--chaos needs an integer seed"), "{stderr}");
}

#[test]
fn help_documents_the_bench_flags() {
    let out = reproduce().arg("--help").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in [
        "--bench-json",
        "--bench-baseline",
        "--bench-tolerance",
        "--bench-subset",
        "--charmap",
        "--charmap-baseline",
        "--trace",
        "--profile",
        "--fraction",
        "--slo",
        "--chaos",
        "--tsdb",
    ] {
        assert!(stdout.contains(flag), "help mentions {flag}: {stdout}");
    }
    // The chaos artifacts are part of the documented contract too.
    for artifact in ["chaos_report.json", ".chaos.trace.json"] {
        assert!(stdout.contains(artifact), "help names the {artifact} artifact: {stdout}");
    }
    // The profiling artifacts are part of the documented contract.
    for artifact in [".folded", ".critpath.txt", ".util.txt"] {
        assert!(stdout.contains(artifact), "help names the {artifact} artifact: {stdout}");
    }
    // So are the observability ones.
    for artifact in ["slo_report.json", ".dash.txt", ".slo.prom.txt", ".slo.trace.json"] {
        assert!(stdout.contains(artifact), "help names the {artifact} artifact: {stdout}");
    }
    // And the time-series ones.
    for artifact in ["tsdb_snapshot.bin", "timeline.txt"] {
        assert!(stdout.contains(artifact), "help names the {artifact} artifact: {stdout}");
    }
}

#[test]
fn slo_pass_is_byte_deterministic_and_writes_all_artifacts() {
    let base = std::env::temp_dir().join(format!("bdb-slo-cli-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    for dir in [&a, &b] {
        let out = reproduce().arg("--slo").arg(dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "slo pass gates hold: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("slo pass PASS"), "{stdout}");
        // The overload phase must have fired the page rule for every
        // service — the dashboards carry it.
        for stem in ["nutch-server", "olio-server", "rubis-server"] {
            let dash = std::fs::read_to_string(dir.join(format!("{stem}.dash.txt")))
                .expect("dashboard written");
            assert!(dash.contains("[page] fast-burn"), "{stem} dashboard shows the page alert");
            for suffix in ["slo.prom.txt", "slo.trace.json"] {
                let meta = std::fs::metadata(dir.join(format!("{stem}.{suffix}")))
                    .expect("artifact written");
                assert!(meta.len() > 0, "{stem}.{suffix} is non-empty");
            }
        }
    }
    let ra = std::fs::read(a.join("slo_report.json")).expect("report a");
    let rb = std::fs::read(b.join("slo_report.json")).expect("report b");
    assert!(!ra.is_empty());
    assert_eq!(ra, rb, "same seed must produce a byte-identical slo_report.json");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn trace_pass_writes_grammatical_expositions_for_every_serving_workload() {
    let dir = std::env::temp_dir().join(format!("bdb-trace-cli-{}", std::process::id()));
    let out = reproduce()
        .args(["--fraction", "0.05", "--trace"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for stem in ["nutchserver", "olioserver", "rubisserver"] {
        let text = std::fs::read_to_string(dir.join(format!("{stem}.prom.txt")))
            .unwrap_or_else(|e| panic!("{stem}.prom.txt written: {e}"));
        // The file concatenates periodic scrapes under `# scrape N`
        // headers; every scrape must parse under the strict grammar.
        let scrapes: Vec<&str> = text.split("# scrape").filter(|s| !s.trim().is_empty()).collect();
        assert!(scrapes.len() >= 2, "{stem}: periodic plus final scrape, got {}", scrapes.len());
        for scrape in scrapes {
            let body = scrape.split_once('\n').map_or("", |x| x.1);
            bdb_telemetry::assert_prometheus_grammar(body);
        }
        assert!(text.contains("serving_requests"), "{stem}: the request counter is exposed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tsdb_pass_is_byte_deterministic_and_writes_all_artifacts() {
    let base = std::env::temp_dir().join(format!("bdb-tsdb-cli-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    for dir in [&a, &b] {
        let out = reproduce().arg("--tsdb").arg(dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "tsdb pass gates hold: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("tsdb pass PASS"), "{stdout}");
        for name in [
            "tsdb_snapshot.bin",
            "node-0.dash.txt",
            "node-1.dash.txt",
            "node-2.dash.txt",
            "node-3.dash.txt",
            "serving.dash.txt",
            "timeline.txt",
        ] {
            let meta = std::fs::metadata(dir.join(name)).expect("artifact written");
            assert!(meta.len() > 0, "{name} is non-empty");
        }
        let timeline = std::fs::read_to_string(dir.join("timeline.txt")).expect("timeline");
        assert!(timeline.contains("failover"), "the run forced a failover onto the timeline");
        assert!(timeline.contains("48 of 48 chains causally complete"), "{timeline}");
    }
    let sa = std::fs::read(a.join("tsdb_snapshot.bin")).expect("snapshot a");
    let sb = std::fs::read(b.join("tsdb_snapshot.bin")).expect("snapshot b");
    assert!(!sa.is_empty());
    assert_eq!(sa, sb, "same seed must produce a byte-identical tsdb_snapshot.bin");
    // The snapshot header is part of the contract.
    assert_eq!(&sa[..8], b"BDBTSDB1");
    let _ = std::fs::remove_dir_all(&base);
}
