//! Format-conversion tools.
//!
//! BDGS ships converters that turn generated data sets into "an
//! appropriate format capable of being used as the inputs of a specific
//! workload". These helpers do the same for our workloads: edge lists to
//! adjacency text, tables to CSV, reviews to the labeled-document format
//! the classifier workloads consume, and resumés to key/value pairs for
//! the Cloud OLTP store.

use crate::graph::EdgeList;
use crate::resume::Resume;
use crate::review::Review;
use crate::table::{OrderItemRow, OrderRow};

/// Converts an edge list to the `src<TAB>dst` text format used by the
/// SNAP distributions of the seed graphs.
pub fn edges_to_text(graph: &EdgeList) -> String {
    let mut out = String::with_capacity(graph.edges.len() * 12);
    out.push_str(&format!("# Nodes: {} Edges: {}\n", graph.nodes, graph.edges.len()));
    for &(s, d) in &graph.edges {
        out.push_str(&format!("{s}\t{d}\n"));
    }
    out
}

/// Parses the `src<TAB>dst` format back into an edge list.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn text_to_edges(text: &str) -> Result<EdgeList, String> {
    let mut edges = Vec::new();
    let mut max_node = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<u32>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_node = max_node.max(s).max(d);
        edges.push((s, d));
    }
    Ok(EdgeList { nodes: max_node + 1, edges })
}

/// Converts ORDER rows to CSV with a header, matching Table 3 columns.
pub fn orders_to_csv(rows: &[OrderRow]) -> String {
    let mut out = String::from("ORDER_ID,BUYER_ID,CREATE_DATE\n");
    for r in rows {
        out.push_str(&format!("{},{},{}\n", r.order_id, r.buyer_id, r.create_date));
    }
    out
}

/// Converts ORDER_ITEM rows to CSV with a header, matching Table 3.
pub fn items_to_csv(rows: &[OrderItemRow]) -> String {
    let mut out = String::from("ITEM_ID,ORDER_ID,GOODS_ID,GOODS_NUMBER,GOODS_PRICE,GOODS_AMOUNT\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.6}\n",
            r.item_id, r.order_id, r.goods_id, r.goods_number, r.goods_price, r.goods_amount
        ));
    }
    out
}

/// Converts reviews to the `label<TAB>text` lines the Naive Bayes
/// workload trains on (label = `pos`/`neg`, neutral 3-star dropped).
pub fn reviews_to_labeled(reviews: &[Review]) -> String {
    let mut out = String::new();
    for r in reviews {
        if r.score == 3 {
            continue;
        }
        let label = if r.is_positive() { "pos" } else { "neg" };
        out.push_str(label);
        out.push('\t');
        out.push_str(&r.text);
        out.push('\n');
    }
    out
}

/// Converts reviews to `(user, item, rating)` triples for Collaborative
/// Filtering.
pub fn reviews_to_ratings(reviews: &[Review]) -> Vec<(u64, u64, f32)> {
    reviews.iter().map(|r| (r.user_id, r.product_id, r.score as f32)).collect()
}

/// Converts resumés to `(key, value)` pairs for the Cloud OLTP store;
/// keys are zero-padded so scans are ordered.
pub fn resumes_to_kv(resumes: &[Resume]) -> Vec<(String, String)> {
    resumes.iter().map(|r| (format!("resume{:012}", r.id), r.to_record())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphGenerator, RmatParams};
    use crate::resume::ResumeGenerator;
    use crate::review::ReviewGenerator;
    use crate::table::EcommerceGenerator;

    #[test]
    fn edges_roundtrip() {
        let g = GraphGenerator::new(RmatParams::google_web(), 1).generate(128);
        let text = edges_to_text(&g);
        let back = text_to_edges(&text).unwrap();
        assert_eq!(back.edges, g.edges);
        assert!(back.nodes <= g.nodes);
    }

    #[test]
    fn malformed_edge_text_errors() {
        assert!(text_to_edges("1\tx").is_err());
        assert!(text_to_edges("1").is_err());
        assert!(text_to_edges("# comment\n\n").unwrap().edges.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (orders, items) = EcommerceGenerator::new(1).generate(10);
        let ocsv = orders_to_csv(&orders);
        let icsv = items_to_csv(&items);
        assert_eq!(ocsv.lines().count(), 11);
        assert!(ocsv.starts_with("ORDER_ID,"));
        assert_eq!(icsv.lines().count(), items.len() + 1);
        assert!(icsv.starts_with("ITEM_ID,"));
    }

    #[test]
    fn labeled_reviews_skip_neutral() {
        let reviews = ReviewGenerator::new(2).generate(500);
        let neutral = reviews.iter().filter(|r| r.score == 3).count();
        let labeled = reviews_to_labeled(&reviews);
        assert_eq!(labeled.lines().count(), 500 - neutral);
        for line in labeled.lines() {
            assert!(line.starts_with("pos\t") || line.starts_with("neg\t"));
        }
    }

    #[test]
    fn ratings_preserve_count() {
        let reviews = ReviewGenerator::new(3).generate(100);
        let ratings = reviews_to_ratings(&reviews);
        assert_eq!(ratings.len(), 100);
        assert!(ratings.iter().all(|&(_, _, s)| (1.0..=5.0).contains(&s)));
    }

    #[test]
    fn kv_keys_sorted_by_id() {
        let resumes = ResumeGenerator::new(4).generate(50);
        let kv = resumes_to_kv(&resumes);
        let mut keys: Vec<_> = kv.iter().map(|(k, _)| k.clone()).collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted, "zero-padded keys sort in id order");
    }
}
