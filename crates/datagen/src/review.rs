//! Semi-structured review generation for the Amazon movie review seed.
//!
//! The seed holds 7,911,684 reviews of 889,176 movies by 253,059 users
//! (Aug 1997 – Oct 2012). Two workloads consume it: Naive Bayes
//! (sentiment classification over review text + score) and Collaborative
//! Filtering (user×item rating matrix). The generator therefore
//! preserves: the users-per-item and reviews-per-user skew, the J-shaped
//! rating distribution typical of online reviews (many 5s, some 1s), and
//! score-correlated review text so a sentiment classifier has signal to
//! learn.

use crate::table::zipf_sample;
use crate::text::TextGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Positive sentiment words mixed into high-scoring reviews.
const POSITIVE: [&str; 12] = [
    "great",
    "excellent",
    "wonderful",
    "amazing",
    "loved",
    "perfect",
    "best",
    "brilliant",
    "beautiful",
    "superb",
    "masterpiece",
    "favorite",
];

/// Negative sentiment words mixed into low-scoring reviews.
const NEGATIVE: [&str; 12] = [
    "terrible",
    "awful",
    "boring",
    "waste",
    "worst",
    "disappointing",
    "bad",
    "poor",
    "dull",
    "horrible",
    "mess",
    "unwatchable",
];

/// One synthesized review record.
#[derive(Debug, Clone, PartialEq)]
pub struct Review {
    /// Reviewer id, Zipf-skewed (prolific reviewers exist).
    pub user_id: u64,
    /// Product (movie) id, Zipf-skewed (blockbusters exist).
    pub product_id: u64,
    /// Star rating 1..=5 with the J-shaped marginal of the seed.
    pub score: u8,
    /// Review text, sentiment-correlated with the score.
    pub text: String,
}

impl Review {
    /// Whether the review is positive (score ≥ 4), the label Naive Bayes
    /// trains against.
    pub fn is_positive(&self) -> bool {
        self.score >= 4
    }
}

/// Generator for review streams.
///
/// # Example
///
/// ```
/// use bdb_datagen::ReviewGenerator;
/// let reviews = ReviewGenerator::new(5).generate(100);
/// assert_eq!(reviews.len(), 100);
/// assert!(reviews.iter().all(|r| (1..=5).contains(&r.score)));
/// ```
#[derive(Debug)]
pub struct ReviewGenerator {
    rng: StdRng,
    text: TextGenerator,
    /// users ≈ reviews × this factor (seed: 253,059 / 7,911,684).
    users_factor: f64,
    /// products ≈ reviews × this factor (seed: 889,176 / 7,911,684).
    products_factor: f64,
}

impl ReviewGenerator {
    /// A generator with seed-fitted population ratios.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            text: TextGenerator::reviews(seed ^ 0xABCD),
            users_factor: 253_059.0 / 7_911_684.0,
            products_factor: 889_176.0 / 7_911_684.0,
        }
    }

    /// Generates `n` reviews.
    pub fn generate(&mut self, n: u64) -> Vec<Review> {
        let users = ((n as f64 * self.users_factor).ceil() as u64).max(1);
        let products = ((n as f64 * self.products_factor).ceil() as u64).max(1);
        (0..n).map(|_| self.one(users, products)).collect()
    }

    /// The J-shaped score marginal of online reviews: P(5) dominates,
    /// P(1) > P(2)..P(3).
    fn sample_score(&mut self) -> u8 {
        let u: f64 = self.rng.gen();
        match u {
            _ if u < 0.55 => 5,
            _ if u < 0.73 => 4,
            _ if u < 0.82 => 3,
            _ if u < 0.89 => 2,
            _ => 1,
        }
    }

    fn one(&mut self, users: u64, products: u64) -> Review {
        let score = self.sample_score();
        let base_len = self.rng.gen_range(30..200);
        let mut text = self.text.document(base_len);
        // Blend in sentiment vocabulary proportional to score intensity.
        let sentiment_words = 2 + base_len / 25;
        let pool: &[&str] = if score >= 4 {
            &POSITIVE
        } else if score <= 2 {
            &NEGATIVE
        } else {
            &[]
        };
        for _ in 0..sentiment_words {
            if pool.is_empty() {
                break;
            }
            text.push(' ');
            text.push_str(pool[self.rng.gen_range(0..pool.len())]);
        }
        Review {
            user_id: zipf_sample(&mut self.rng, users, 0.9),
            product_id: zipf_sample(&mut self.rng, products, 0.9),
            score,
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_marginal_is_j_shaped() {
        let reviews = ReviewGenerator::new(1).generate(20_000);
        let mut counts = [0u64; 6];
        for r in &reviews {
            counts[r.score as usize] += 1;
        }
        assert!(counts[5] > counts[4]);
        assert!(counts[4] > counts[3]);
        assert!(counts[1] > counts[3], "J shape: 1-star beats 3-star");
    }

    #[test]
    fn sentiment_correlates_with_score() {
        let reviews = ReviewGenerator::new(2).generate(2000);
        let pos_hits = |r: &Review| POSITIVE.iter().filter(|w| r.text.contains(*w)).count();
        let neg_hits = |r: &Review| NEGATIVE.iter().filter(|w| r.text.contains(*w)).count();
        let pos_in_pos: usize = reviews.iter().filter(|r| r.is_positive()).map(pos_hits).sum();
        let neg_in_pos: usize = reviews.iter().filter(|r| r.is_positive()).map(neg_hits).sum();
        assert!(pos_in_pos > neg_in_pos * 2, "positive reviews carry positive words");
    }

    #[test]
    fn population_ratios_match_seed() {
        let reviews = ReviewGenerator::new(3).generate(50_000);
        let users: std::collections::HashSet<_> = reviews.iter().map(|r| r.user_id).collect();
        let products: std::collections::HashSet<_> = reviews.iter().map(|r| r.product_id).collect();
        // Far fewer users than reviews, more products than users (as in seed).
        assert!(users.len() < reviews.len() / 10);
        assert!(products.len() > users.len());
    }

    #[test]
    fn deterministic() {
        let a = ReviewGenerator::new(7).generate(50);
        let b = ReviewGenerator::new(7).generate(50);
        assert_eq!(a, b);
    }
}
