//! BDGS — the Big Data Generator Suite of BigDataBench-RS.
//!
//! The paper's Section 5 describes a three-step data-synthesis pipeline:
//! start from representative real-world seed data sets, estimate the
//! parameters of a data model from each seed, then generate synthetic
//! data of user-chosen volume from the fitted models so the "4V"
//! properties (volume, variety, velocity, veracity) are preserved.
//!
//! We cannot redistribute the six real seed data sets (Wikipedia, Amazon
//! movie reviews, Google web graph, Facebook social graph, a proprietary
//! e-commerce transaction table pair, and ProfSearch resumés), so
//! [`seeds`] embeds *seed descriptors*: the published sizes from the
//! paper's Table 2 together with model parameters matched to the public
//! statistics of each set (Zipf exponents for vocabularies, R-MAT
//! parameters for degree distributions, schema and value distributions
//! for the tables). Every generator fits the same model family BDGS fits,
//! so the synthetic outputs preserve the *characteristics* the paper
//! cares about, which is BDGS's own definition of veracity.
//!
//! Generators are deterministic given a seed, scale linearly in the
//! requested size, and expose conversion helpers ([`convert`]) that turn
//! generated records into the input formats the workloads consume.
//!
//! # Example
//!
//! ```
//! use bdb_datagen::text::TextGenerator;
//!
//! let mut gen = TextGenerator::wikipedia(42);
//! let doc = gen.document(120);
//! assert_eq!(doc.split_whitespace().count(), 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod graph;
pub mod resume;
pub mod review;
pub mod seeds;
pub mod stats;
pub mod table;
pub mod text;

pub use graph::{EdgeList, GraphGenerator, RmatParams};
pub use resume::{Resume, ResumeGenerator};
pub use review::{Review, ReviewGenerator};
pub use seeds::{SeedDataset, SeedKind, SEED_DATASETS};
pub use table::{EcommerceGenerator, OrderItemRow, OrderRow};
pub use text::{TextGenerator, Vocabulary};
