//! Synthetic graph generation with the R-MAT / Kronecker model.
//!
//! BDGS generates graph data by fitting Kronecker initiator matrices to
//! the seed graphs; R-MAT is the standard recursive-matrix sampler for
//! that family and reproduces the heavy-tailed degree distributions of
//! web and social graphs. Two presets carry the fitted parameters:
//! [`RmatParams::google_web`] (directed, sparser, very skewed) and
//! [`RmatParams::facebook_social`] (undirected, denser, less skewed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT initiator probabilities; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant.
    pub d: f64,
    /// Average out-degree (edges = nodes × degree).
    pub avg_degree: f64,
    /// Whether generated edges are mirrored (undirected graph).
    pub undirected: bool,
}

impl RmatParams {
    /// Parameters fitted to the Google web graph seed
    /// (875,713 nodes, 5,105,039 edges ⇒ avg degree ≈ 5.83; strongly
    /// skewed in-link distribution, directed).
    pub fn google_web() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, d: 0.05, avg_degree: 5.83, undirected: false }
    }

    /// Parameters fitted to the Facebook social graph seed
    /// (4,039 nodes, 88,234 edges ⇒ avg degree ≈ 21.8; friendship is
    /// undirected and communities flatten the skew).
    pub fn facebook_social() -> Self {
        Self { a: 0.45, b: 0.22, c: 0.22, d: 0.11, avg_degree: 21.8, undirected: true }
    }

    /// Validates that probabilities form a distribution.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.a + self.b + self.c + self.d;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("quadrant probabilities sum to {sum}, expected 1"));
        }
        if [self.a, self.b, self.c, self.d].iter().any(|&p| p < 0.0) {
            return Err("negative quadrant probability".to_owned());
        }
        if self.avg_degree <= 0.0 {
            return Err("average degree must be positive".to_owned());
        }
        Ok(())
    }
}

/// An edge list with the node-count context needed by consumers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of nodes (ids are `0..nodes`).
    pub nodes: u32,
    /// Directed edges `(src, dst)`; for undirected graphs both
    /// orientations are present.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.nodes as usize];
        for &(s, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        self.out_degrees().into_iter().max().unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.nodes as f64
        }
    }
}

/// R-MAT graph generator.
///
/// # Example
///
/// ```
/// use bdb_datagen::{GraphGenerator, RmatParams};
/// let g = GraphGenerator::new(RmatParams::google_web(), 11).generate(1 << 10);
/// assert_eq!(g.nodes, 1 << 10);
/// assert!(g.avg_degree() > 4.0);
/// ```
#[derive(Debug)]
pub struct GraphGenerator {
    params: RmatParams,
    rng: StdRng,
}

impl GraphGenerator {
    /// Builds a generator with validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`RmatParams::validate`].
    pub fn new(params: RmatParams, seed: u64) -> Self {
        params.validate().expect("valid R-MAT parameters");
        Self { params, rng: StdRng::seed_from_u64(seed) }
    }

    /// The parameters this generator samples from.
    pub fn params(&self) -> &RmatParams {
        &self.params
    }

    /// Generates a graph over `nodes` vertices (rounded up to the next
    /// power of two internally, then mapped back down).
    ///
    /// Duplicate edges and self-loops are removed; for undirected
    /// parameter sets both orientations are emitted.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn generate(&mut self, nodes: u32) -> EdgeList {
        assert!(nodes > 0, "graph must have nodes");
        let scale = 32 - (nodes - 1).leading_zeros().min(31);
        let target_edges = (nodes as f64 * self.params.avg_degree
            / if self.params.undirected { 2.0 } else { 1.0 })
        .round() as usize;
        let mut set = std::collections::HashSet::with_capacity(target_edges * 2);
        let mut attempts = 0usize;
        let max_attempts = target_edges * 20 + 1000;
        while set.len() < target_edges && attempts < max_attempts {
            attempts += 1;
            let (s, d) = self.sample_edge(scale);
            let (s, d) = (s % nodes, d % nodes);
            if s == d {
                continue;
            }
            let key = if self.params.undirected && s > d { (d, s) } else { (s, d) };
            set.insert(key);
        }
        let mut edges = Vec::with_capacity(set.len() * 2);
        for (s, d) in set {
            edges.push((s, d));
            if self.params.undirected {
                edges.push((d, s));
            }
        }
        edges.sort_unstable();
        EdgeList { nodes, edges }
    }

    /// One recursive-matrix edge sample at the given scale.
    fn sample_edge(&mut self, scale: u32) -> (u32, u32) {
        let RmatParams { a, b, c, .. } = self.params;
        let mut src = 0u32;
        let mut dst = 0u32;
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            // Add a little per-level noise so the distribution isn't
            // perfectly self-similar (standard R-MAT smoothing).
            let u: f64 = self.rng.gen();
            if u < a {
                // top-left: neither bit set
            } else if u < a + b {
                dst |= 1;
            } else if u < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(RmatParams::google_web().validate().is_ok());
        assert!(RmatParams::facebook_social().validate().is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = RmatParams::google_web();
        p.a += 0.5;
        assert!(p.validate().is_err());
        p = RmatParams::google_web();
        p.avg_degree = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn web_graph_degree_matches_seed() {
        let g = GraphGenerator::new(RmatParams::google_web(), 1).generate(4096);
        let d = g.avg_degree();
        assert!(d > 4.5 && d < 6.5, "avg degree {d} should be near 5.83");
    }

    #[test]
    fn web_graph_is_heavy_tailed() {
        let g = GraphGenerator::new(RmatParams::google_web(), 2).generate(4096);
        let avg = g.avg_degree();
        let max = g.max_degree() as f64;
        assert!(max > avg * 8.0, "R-MAT should produce hubs: max {max}, avg {avg}");
    }

    #[test]
    fn social_graph_is_symmetric() {
        let g = GraphGenerator::new(RmatParams::facebook_social(), 3).generate(512);
        let set: std::collections::HashSet<_> = g.edges.iter().copied().collect();
        for &(s, d) in &g.edges {
            assert!(set.contains(&(d, s)), "undirected edge missing reverse");
        }
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = GraphGenerator::new(RmatParams::google_web(), 4).generate(1024);
        let mut seen = std::collections::HashSet::new();
        for &(s, d) in &g.edges {
            assert_ne!(s, d, "self loop");
            assert!(seen.insert((s, d)), "duplicate edge");
            assert!(s < g.nodes && d < g.nodes, "edge out of range");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GraphGenerator::new(RmatParams::google_web(), 9).generate(256);
        let b = GraphGenerator::new(RmatParams::google_web(), 9).generate(256);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_with_node_count() {
        let small = GraphGenerator::new(RmatParams::google_web(), 5).generate(256);
        let large = GraphGenerator::new(RmatParams::google_web(), 5).generate(2048);
        assert!(large.edges.len() > small.edges.len() * 4);
    }
}
