//! Distribution-shape estimation used to validate generator veracity.
//!
//! BDGS's pitch is that synthetic data must *preserve the characteristics
//! of the seed*. These helpers quantify the characteristics we preserve —
//! Zipf exponents of frequency distributions and power-law tails of
//! degree distributions — so tests (and users) can check generated data
//! against the seed statistics instead of taking it on faith.

use std::collections::HashMap;
use std::hash::Hash;

/// Counts occurrences and returns frequencies sorted descending.
pub fn rank_frequencies<T: Eq + Hash, I: IntoIterator<Item = T>>(items: I) -> Vec<u64> {
    let mut counts: HashMap<T, u64> = HashMap::new();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    let mut freqs: Vec<u64> = counts.into_values().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    freqs
}

/// Estimates the Zipf exponent of a rank/frequency curve by least-squares
/// regression of log(freq) on log(rank) over the head of the ranking.
///
/// Returns `None` when fewer than 8 distinct ranks are available.
pub fn estimate_zipf_exponent(freqs: &[u64]) -> Option<f64> {
    let head = freqs.iter().take(1000).filter(|&&f| f > 0).count();
    if head < 8 {
        return None;
    }
    let pts: Vec<(f64, f64)> = freqs
        .iter()
        .take(head)
        .enumerate()
        .map(|(i, &f)| (((i + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    let slope = linear_slope(&pts)?;
    Some(-slope)
}

/// Estimates the power-law exponent alpha of a degree distribution using
/// the discrete maximum-likelihood estimator (Clauset et al.) with
/// `x_min = 1`: `alpha ≈ 1 + n / Σ ln(x_i / (x_min - 0.5))`.
///
/// Returns `None` when there are fewer than 8 positive degrees.
pub fn estimate_power_law_alpha(degrees: &[u32]) -> Option<f64> {
    let xs: Vec<f64> = degrees.iter().filter(|&&d| d > 0).map(|&d| d as f64).collect();
    if xs.len() < 8 {
        return None;
    }
    let sum: f64 = xs.iter().map(|x| (x / 0.5).ln()).sum();
    Some(1.0 + xs.len() as f64 / sum)
}

/// Least-squares slope of `y` on `x`. Returns `None` for degenerate input.
pub fn linear_slope(points: &[(f64, f64)]) -> Option<f64> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Shannon entropy (bits) of a frequency vector — a scale-free summary
/// used to compare generated vs. seed diversity.
pub fn entropy_bits(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::Vocabulary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_frequencies_sorted() {
        let f = rank_frequencies(vec!["a", "b", "a", "c", "a", "b"]);
        assert_eq!(f, vec![3, 2, 1]);
    }

    #[test]
    fn slope_of_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((linear_slope(&pts).unwrap() - 2.0).abs() < 1e-9);
        assert!(linear_slope(&[(1.0, 1.0)]).is_none());
    }

    #[test]
    fn recovers_zipf_exponent_from_samples() {
        let v = Vocabulary::new(2000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<usize> = (0..200_000).map(|_| v.sample_rank(&mut rng)).collect();
        let freqs = rank_frequencies(samples);
        let s = estimate_zipf_exponent(&freqs).unwrap();
        assert!((s - 1.0).abs() < 0.25, "estimated exponent {s} should be near 1.0");
    }

    #[test]
    fn zipf_estimator_needs_data() {
        assert!(estimate_zipf_exponent(&[5, 3]).is_none());
    }

    #[test]
    fn power_law_alpha_reasonable() {
        // Degrees drawn from a discrete power law-ish set.
        let mut degrees = Vec::new();
        for d in 1u32..=100 {
            let copies = (10_000.0 / (d as f64).powf(2.0)) as usize;
            degrees.extend(std::iter::repeat_n(d, copies));
        }
        let alpha = estimate_power_law_alpha(&degrees).unwrap();
        assert!(alpha > 1.5 && alpha < 3.0, "alpha = {alpha}");
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let e = entropy_bits(&[10, 10, 10, 10]);
        assert!((e - 2.0).abs() < 1e-9);
        assert_eq!(entropy_bits(&[]), 0.0);
    }
}
