//! Descriptors for the six real-world seed data sets of the paper's
//! Table 2, with the fitted model parameters our generators use.
//!
//! The paper collects six seeds spanning three data types (structured,
//! semi-structured, unstructured) and three sources (text, graph, table).
//! We embed their published sizes plus the statistics our model fitting
//! targets; [`SeedDataset::check`] lets tests verify a generator actually
//! reproduces its seed's shape.

use std::fmt;

/// Which of the paper's six seeds a descriptor stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedKind {
    /// Seed 1: 4,300,000 English Wikipedia articles (unstructured text).
    WikipediaEntries,
    /// Seed 2: 7,911,684 Amazon movie reviews (semi-structured text).
    AmazonMovieReviews,
    /// Seed 3: Google web graph, 875,713 nodes / 5,105,039 edges
    /// (unstructured, directed graph).
    GoogleWebGraph,
    /// Seed 4: Facebook social graph, 4,039 nodes / 88,234 edges
    /// (unstructured, undirected graph).
    FacebookSocialGraph,
    /// Seed 5: proprietary e-commerce transaction tables
    /// (structured; ORDER 4 cols × 38,658 rows, ITEM 6 cols × 242,735 rows).
    EcommerceTransactions,
    /// Seed 6: 278,956 ProfSearch person resumés (semi-structured).
    ProfSearchResumes,
}

impl SeedKind {
    /// All six seeds in Table 2 order.
    pub const ALL: [SeedKind; 6] = [
        SeedKind::WikipediaEntries,
        SeedKind::AmazonMovieReviews,
        SeedKind::GoogleWebGraph,
        SeedKind::FacebookSocialGraph,
        SeedKind::EcommerceTransactions,
        SeedKind::ProfSearchResumes,
    ];
}

impl fmt::Display for SeedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SeedKind::WikipediaEntries => "Wikipedia Entries",
            SeedKind::AmazonMovieReviews => "Amazon Movie Reviews",
            SeedKind::GoogleWebGraph => "Google Web Graph",
            SeedKind::FacebookSocialGraph => "Facebook Social Network",
            SeedKind::EcommerceTransactions => "E-commerce Transaction Data",
            SeedKind::ProfSearchResumes => "ProfSearch Person Resumes",
        };
        f.write_str(s)
    }
}

/// Data type taxonomy from the paper's methodology (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Fixed-schema relational data.
    Structured,
    /// Tagged/keyed but flexible records.
    SemiStructured,
    /// Free text or raw graphs.
    Unstructured,
}

/// Data source taxonomy from the paper's methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Natural-language text.
    Text,
    /// Vertices and edges.
    Graph,
    /// Rows and columns.
    Table,
}

/// One seed data set: published size plus fitted model parameters.
#[derive(Debug, Clone)]
pub struct SeedDataset {
    /// Which seed this is.
    pub kind: SeedKind,
    /// Data type dimension.
    pub data_type: DataType,
    /// Data source dimension.
    pub source: DataSource,
    /// The size description printed in Table 2.
    pub size_description: &'static str,
    /// Workloads that consume this seed (paper Section 4.2).
    pub used_by: &'static [&'static str],
    /// Zipf exponent for vocabularies / key popularity fitted to the
    /// seed's published statistics (0 when not applicable).
    pub zipf_exponent: f64,
    /// Approximate record count in the real seed.
    pub records: u64,
}

/// The six seed descriptors, Table 2 order.
pub const SEED_DATASETS: [SeedDataset; 6] = [
    SeedDataset {
        kind: SeedKind::WikipediaEntries,
        data_type: DataType::Unstructured,
        source: DataSource::Text,
        size_description: "4,300,000 English articles",
        used_by: &["Sort", "Grep", "WordCount", "Index"],
        zipf_exponent: 1.0, // classic Zipf's law for English word frequency
        records: 4_300_000,
    },
    SeedDataset {
        kind: SeedKind::AmazonMovieReviews,
        data_type: DataType::SemiStructured,
        source: DataSource::Text,
        size_description: "7,911,684 reviews",
        used_by: &["Naive Bayes", "Collaborative Filtering"],
        zipf_exponent: 0.9, // product popularity skew
        records: 7_911_684,
    },
    SeedDataset {
        kind: SeedKind::GoogleWebGraph,
        data_type: DataType::Unstructured,
        source: DataSource::Graph,
        size_description: "875,713 nodes, 5,105,039 edges",
        used_by: &["PageRank"],
        zipf_exponent: 0.0,
        records: 875_713,
    },
    SeedDataset {
        kind: SeedKind::FacebookSocialGraph,
        data_type: DataType::Unstructured,
        source: DataSource::Graph,
        size_description: "4,039 nodes, 88,234 edges",
        used_by: &["Connected Components"],
        zipf_exponent: 0.0,
        records: 4_039,
    },
    SeedDataset {
        kind: SeedKind::EcommerceTransactions,
        data_type: DataType::Structured,
        source: DataSource::Table,
        size_description: "ORDER: 4 cols x 38,658 rows; ITEM: 6 cols x 242,735 rows",
        used_by: &["Select Query", "Aggregate Query", "Join Query"],
        zipf_exponent: 0.8, // buyer/goods popularity skew
        records: 38_658,
    },
    SeedDataset {
        kind: SeedKind::ProfSearchResumes,
        data_type: DataType::SemiStructured,
        source: DataSource::Table,
        size_description: "278,956 resumes",
        used_by: &["Read", "Write", "Scan"],
        zipf_exponent: 0.7, // affiliation popularity skew
        records: 278_956,
    },
];

/// Looks up the descriptor for `kind`.
pub fn seed(kind: SeedKind) -> &'static SeedDataset {
    SEED_DATASETS.iter().find(|s| s.kind == kind).expect("all kinds are present")
}

/// Average edges per node of the Google web graph seed (≈5.83).
pub fn google_web_avg_degree() -> f64 {
    5_105_039.0 / 875_713.0
}

/// Average edges per node of the Facebook seed (≈21.8, undirected).
pub fn facebook_avg_degree() -> f64 {
    88_234.0 / 4_039.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_seeds_cover_all_types_and_sources() {
        use std::collections::HashSet;
        let types: HashSet<_> = SEED_DATASETS.iter().map(|s| s.data_type).collect();
        let sources: HashSet<_> = SEED_DATASETS.iter().map(|s| s.source).collect();
        assert_eq!(types.len(), 3, "structured, semi-structured, unstructured");
        assert_eq!(sources.len(), 3, "text, graph, table");
    }

    #[test]
    fn lookup_by_kind() {
        for kind in SeedKind::ALL {
            assert_eq!(seed(kind).kind, kind);
        }
    }

    #[test]
    fn table2_sizes() {
        assert_eq!(seed(SeedKind::WikipediaEntries).records, 4_300_000);
        assert_eq!(seed(SeedKind::GoogleWebGraph).records, 875_713);
        assert_eq!(seed(SeedKind::FacebookSocialGraph).records, 4_039);
        assert_eq!(seed(SeedKind::ProfSearchResumes).records, 278_956);
    }

    #[test]
    fn degrees_match_published_counts() {
        assert!((google_web_avg_degree() - 5.83).abs() < 0.01);
        assert!((facebook_avg_degree() - 21.84).abs() < 0.01);
    }

    #[test]
    fn display_names_are_nonempty() {
        for kind in SeedKind::ALL {
            assert!(!kind.to_string().is_empty());
        }
    }
}
