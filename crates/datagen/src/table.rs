//! Structured-table generation for the e-commerce transaction seed.
//!
//! The paper's Table 3 gives the exact schema: an `ORDER` table
//! (ORDER_ID, BUYER_ID, CREATE_DATE) and an `ORDER_ITEM` table (ITEM_ID,
//! ORDER_ID, GOODS_ID, GOODS_NUMBER, GOODS_PRICE, GOODS_AMOUNT). The
//! seed ratio is 242,735 items / 38,658 orders ≈ 6.3 items per order.
//! Buyer and goods popularity are Zipf-skewed, as in any marketplace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row of the `ORDER` table (paper Table 3, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderRow {
    /// Primary key.
    pub order_id: u64,
    /// Foreign key to the (implicit) buyer dimension; Zipf-skewed.
    pub buyer_id: u64,
    /// Days since epoch of the data set start.
    pub create_date: u32,
}

/// A row of the `ORDER_ITEM` table (paper Table 3, right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderItemRow {
    /// Primary key.
    pub item_id: u64,
    /// Foreign key into `ORDER`.
    pub order_id: u64,
    /// Foreign key to the goods dimension; Zipf-skewed.
    pub goods_id: u64,
    /// Quantity purchased — NUMBER(10,2) in the seed schema.
    pub goods_number: f64,
    /// Unit price — NUMBER(10,2).
    pub goods_price: f64,
    /// Line total — NUMBER(14,6); equals number × price.
    pub goods_amount: f64,
}

/// Generates the ORDER / ORDER_ITEM pair with seed-matched shape.
///
/// # Example
///
/// ```
/// use bdb_datagen::EcommerceGenerator;
/// let (orders, items) = EcommerceGenerator::new(17).generate(1000);
/// assert_eq!(orders.len(), 1000);
/// // Seed ratio: ≈6.3 items per order.
/// assert!(items.len() > 5000 && items.len() < 8000);
/// ```
#[derive(Debug)]
pub struct EcommerceGenerator {
    rng: StdRng,
    /// Number of distinct buyers (scales with order volume).
    buyers_per_order: f64,
    /// Number of distinct goods.
    goods_per_item: f64,
    /// Zipf exponent for buyer/goods popularity.
    skew: f64,
    /// Mean items per order from the seed (242735 / 38658).
    items_per_order: f64,
    /// Date range in days covered by the data set.
    date_range_days: u32,
}

impl EcommerceGenerator {
    /// A generator with parameters fitted to the Table 2/3 seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            buyers_per_order: 0.4,
            goods_per_item: 0.1,
            skew: 0.8,
            items_per_order: 242_735.0 / 38_658.0,
            date_range_days: 730,
        }
    }

    /// Generates `orders` ORDER rows plus their ORDER_ITEM children.
    pub fn generate(&mut self, orders: u64) -> (Vec<OrderRow>, Vec<OrderItemRow>) {
        let buyers = ((orders as f64 * self.buyers_per_order) as u64).max(1);
        let mut order_rows = Vec::with_capacity(orders as usize);
        let mut item_rows = Vec::with_capacity((orders as f64 * self.items_per_order) as usize);
        let mut next_item_id = 1u64;
        for order_id in 1..=orders {
            let buyer_id = zipf_sample(&mut self.rng, buyers, self.skew);
            let create_date = self.rng.gen_range(0..self.date_range_days);
            order_rows.push(OrderRow { order_id, buyer_id, create_date });
            let n_items = self.sample_items_per_order();
            let goods =
                ((orders as f64 * self.items_per_order * self.goods_per_item) as u64).max(1);
            for _ in 0..n_items {
                let goods_id = zipf_sample(&mut self.rng, goods, self.skew);
                let goods_number = f64::from(self.rng.gen_range(1..=5_u32));
                let goods_price = round2(self.rng.gen_range(0.5_f64..500.0).powf(0.8) + 0.99);
                let goods_amount = round6(goods_number * goods_price);
                item_rows.push(OrderItemRow {
                    item_id: next_item_id,
                    order_id,
                    goods_id,
                    goods_number,
                    goods_price,
                    goods_amount,
                });
                next_item_id += 1;
            }
        }
        (order_rows, item_rows)
    }

    /// Samples items-per-order with the seed mean (≈6.3), min 1.
    fn sample_items_per_order(&mut self) -> u32 {
        // Geometric-ish around the mean: 1 + Poisson-approx via sum of
        // two uniforms to keep it dependency-free.
        let m = self.items_per_order - 1.0;
        let u: f64 = self.rng.gen();
        let v: f64 = self.rng.gen();
        (1.0 + (u + v) * m).round().max(1.0) as u32
    }
}

/// Samples from `1..=n` with Zipf exponent `s` via rejection-inversion
/// (fast approximation adequate for data synthesis).
pub fn zipf_sample<R: Rng>(rng: &mut R, n: u64, s: f64) -> u64 {
    if n <= 1 {
        return 1;
    }
    // Inverse-CDF approximation for the continuous power-law, clamped.
    let u: f64 = rng.gen::<f64>().max(1e-12);
    if (s - 1.0).abs() < 1e-9 {
        let x = (n as f64).powf(u);
        (x as u64).clamp(1, n)
    } else {
        let t = 1.0 - s;
        let x = ((n as f64).powf(t) * u + (1.0 - u)).powf(1.0 / t);
        (x as u64).clamp(1, n)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_ratio_matches_seed() {
        let (orders, items) = EcommerceGenerator::new(1).generate(2000);
        let ratio = items.len() as f64 / orders.len() as f64;
        assert!((ratio - 6.3).abs() < 0.8, "items/order {ratio} should be near 6.3");
    }

    #[test]
    fn amounts_are_consistent() {
        let (_, items) = EcommerceGenerator::new(2).generate(500);
        for it in &items {
            assert!((it.goods_amount - it.goods_number * it.goods_price).abs() < 1e-6);
            assert!(it.goods_price > 0.0);
            assert!(it.goods_number >= 1.0);
        }
    }

    #[test]
    fn foreign_keys_reference_orders() {
        let (orders, items) = EcommerceGenerator::new(3).generate(300);
        let max_order = orders.last().unwrap().order_id;
        for it in &items {
            assert!(it.order_id >= 1 && it.order_id <= max_order);
        }
    }

    #[test]
    fn buyers_are_skewed() {
        let (orders, _) = EcommerceGenerator::new(4).generate(5000);
        let mut counts = std::collections::HashMap::new();
        for o in &orders {
            *counts.entry(o.buyer_id).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        let distinct = counts.len() as u64;
        // With Zipf skew the hottest buyer places far more orders than
        // the uniform expectation.
        assert!(max > 3 * (5000 / distinct).max(1), "max={max} distinct={distinct}");
    }

    #[test]
    fn deterministic() {
        let a = EcommerceGenerator::new(9).generate(100);
        let b = EcommerceGenerator::new(9).generate(100);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.len(), b.1.len());
    }

    #[test]
    fn zipf_sample_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = zipf_sample(&mut rng, 100, 0.8);
            assert!((1..=100).contains(&x));
        }
        assert_eq!(zipf_sample(&mut rng, 1, 0.8), 1);
    }

    #[test]
    fn zipf_rank1_dominates() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ones = 0;
        let n = 20_000;
        for _ in 0..n {
            if zipf_sample(&mut rng, 1000, 1.0) == 1 {
                ones += 1;
            }
        }
        assert!(ones > n / 50, "rank 1 should be common under Zipf(1): {ones}");
    }

    #[test]
    fn dates_within_range() {
        let (orders, _) = EcommerceGenerator::new(5).generate(1000);
        assert!(orders.iter().all(|o| o.create_date < 730));
    }
}
