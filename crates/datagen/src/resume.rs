//! Semi-structured resumé generation for the ProfSearch seed.
//!
//! The seed holds 278,956 researcher resumés extracted from ~20M web
//! pages of ~200 universities and institutions; the paper uses them as
//! the row payload of the "Cloud OLTP" workloads (HBase Read / Write /
//! Scan). What matters for those workloads is the record shape: a
//! primary key plus a handful of variable-length fields of realistic
//! sizes, with affiliation popularity following the ~200-institution
//! skew.

use crate::table::zipf_sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIELDS_OF_STUDY: [&str; 16] = [
    "computer architecture",
    "distributed systems",
    "databases",
    "machine learning",
    "operating systems",
    "compilers",
    "networking",
    "security",
    "graphics",
    "hci",
    "theory",
    "bioinformatics",
    "robotics",
    "quantum computing",
    "storage systems",
    "programming languages",
];

const GIVEN: [&str; 16] = [
    "wei", "lei", "jian", "yu", "min", "hao", "ling", "chen", "anna", "james", "maria", "david",
    "sofia", "omar", "ravi", "elena",
];

const SURNAME: [&str; 16] = [
    "wang", "zhang", "li", "chen", "liu", "smith", "garcia", "kumar", "mueller", "tanaka",
    "ivanov", "rossi", "kim", "nguyen", "silva", "dubois",
];

/// One synthesized resumé record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resume {
    /// Stable primary key (row key in the Cloud OLTP store).
    pub id: u64,
    /// Person name.
    pub name: String,
    /// Institution id in `1..=200` (Zipf-skewed popularity).
    pub institution: u64,
    /// Research interests, 1–4 fields.
    pub interests: Vec<&'static str>,
    /// Publication count (heavy-tailed).
    pub publications: u32,
    /// Free-form biography text sized like a real resumé abstract.
    pub bio: String,
}

impl Resume {
    /// Serializes to the tagged key/value line format the Cloud OLTP
    /// workloads store as the cell value.
    pub fn to_record(&self) -> String {
        format!(
            "name={};inst={};interests={};pubs={};bio={}",
            self.name,
            self.institution,
            self.interests.join(","),
            self.publications,
            self.bio
        )
    }
}

/// Generator for resumé streams.
///
/// # Example
///
/// ```
/// use bdb_datagen::ResumeGenerator;
/// let rs = ResumeGenerator::new(3).generate(10);
/// assert_eq!(rs.len(), 10);
/// assert!(rs[0].to_record().contains("inst="));
/// ```
#[derive(Debug)]
pub struct ResumeGenerator {
    rng: StdRng,
    next_id: u64,
}

impl ResumeGenerator {
    /// A generator fitted to the ProfSearch seed (~200 institutions).
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), next_id: 1 }
    }

    /// Generates `n` resumés with sequential ids.
    pub fn generate(&mut self, n: u64) -> Vec<Resume> {
        (0..n).map(|_| self.one()).collect()
    }

    fn one(&mut self) -> Resume {
        let id = self.next_id;
        self.next_id += 1;
        let name = format!(
            "{} {}",
            GIVEN[self.rng.gen_range(0..GIVEN.len())],
            SURNAME[self.rng.gen_range(0..SURNAME.len())]
        );
        let n_interests = self.rng.gen_range(1..=4);
        let mut interests = Vec::with_capacity(n_interests);
        for _ in 0..n_interests {
            let f = FIELDS_OF_STUDY[self.rng.gen_range(0..FIELDS_OF_STUDY.len())];
            if !interests.contains(&f) {
                interests.push(f);
            }
        }
        // Heavy-tailed publication counts: most have few, some have many.
        let publications = (zipf_sample(&mut self.rng, 400, 1.1) - 1) as u32;
        let bio_words = self.rng.gen_range(20..120);
        let mut bio = String::new();
        for w in 0..bio_words {
            if w > 0 {
                bio.push(' ');
            }
            bio.push_str(
                FIELDS_OF_STUDY[self.rng.gen_range(0..FIELDS_OF_STUDY.len())]
                    .split(' ')
                    .next()
                    .unwrap(),
            );
        }
        Resume {
            id,
            name,
            institution: zipf_sample(&mut self.rng, 200, 0.7),
            interests,
            publications,
            bio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let rs = ResumeGenerator::new(1).generate(100);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.id, i as u64 + 1);
        }
    }

    #[test]
    fn institutions_bounded_and_skewed() {
        let rs = ResumeGenerator::new(2).generate(10_000);
        assert!(rs.iter().all(|r| (1..=200).contains(&r.institution)));
        let top = rs.iter().filter(|r| r.institution == 1).count();
        assert!(top > 10_000 / 200, "institution 1 should be over-represented");
    }

    #[test]
    fn record_format_roundtrip_fields() {
        let rs = ResumeGenerator::new(3).generate(5);
        for r in &rs {
            let rec = r.to_record();
            assert!(rec.contains(&format!("inst={}", r.institution)));
            assert!(rec.contains(&format!("pubs={}", r.publications)));
        }
    }

    #[test]
    fn variable_record_sizes() {
        let rs = ResumeGenerator::new(4).generate(500);
        let min = rs.iter().map(|r| r.to_record().len()).min().unwrap();
        let max = rs.iter().map(|r| r.to_record().len()).max().unwrap();
        assert!(max > min * 2, "records should vary in size: {min}..{max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(ResumeGenerator::new(9).generate(20), ResumeGenerator::new(9).generate(20));
    }
}
