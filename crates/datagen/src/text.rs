//! Synthetic text generation with a Zipfian vocabulary model.
//!
//! BDGS's text generator fits a latent-topic/word-frequency model to the
//! Wikipedia seed and samples documents from it. The dominant
//! characteristic for the micro benchmarks (Sort, Grep, WordCount,
//! Index) is the word-frequency distribution — English famously follows
//! Zipf's law with exponent ≈ 1 — together with realistic document
//! lengths. [`TextGenerator`] reproduces both: a [`Vocabulary`] of real
//! high-frequency English words plus a synthetically pronounceable tail,
//! sampled under Zipf(s), assembled into sentences and documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The most frequent English words, used for the head of the vocabulary
/// so generated text looks like (and tokenizes like) natural language.
const COMMON_WORDS: [&str; 96] = [
    "the", "of", "and", "a", "to", "in", "is", "was", "he", "for", "it", "with", "as", "his", "on",
    "be", "at", "by", "i", "this", "had", "not", "are", "but", "from", "or", "have", "an", "they",
    "which", "one", "you", "were", "her", "all", "she", "there", "would", "their", "we", "him",
    "been", "has", "when", "who", "will", "more", "no", "if", "out", "so", "said", "what", "up",
    "its", "about", "into", "than", "them", "can", "only", "other", "new", "some", "could", "time",
    "these", "two", "may", "then", "do", "first", "any", "my", "now", "such", "like", "our",
    "over", "man", "me", "even", "most", "made", "after", "also", "did", "many", "before", "must",
    "through", "years", "where", "much", "your", "way",
];

const SYLLABLES: [&str; 24] = [
    "ka", "ri", "to", "mu", "sel", "dor", "vin", "pa", "lo", "za", "qui", "fer", "gan", "hel",
    "ixi", "jor", "ken", "lum", "nar", "ost", "pra", "rus", "tev", "wor",
];

/// A ranked vocabulary with Zipfian sampling.
///
/// # Example
///
/// ```
/// use bdb_datagen::Vocabulary;
/// let v = Vocabulary::new(1000, 1.0);
/// assert_eq!(v.len(), 1000);
/// assert_eq!(v.word(0), "the"); // rank 0 is the most common English word
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative unnormalized Zipf weights for binary-search sampling.
    cumulative: Vec<f64>,
    exponent: f64,
}

impl Vocabulary {
    /// Builds a vocabulary of `size` words under Zipf exponent `s`.
    ///
    /// The head of the ranking reuses real English high-frequency words;
    /// the tail is synthesized from syllables, deterministically per rank.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `s` is negative.
    pub fn new(size: usize, s: f64) -> Self {
        assert!(size > 0, "vocabulary must be non-empty");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut words = Vec::with_capacity(size);
        for rank in 0..size {
            match COMMON_WORDS.get(rank) {
                Some(w) => words.push((*w).to_owned()),
                None => words.push(synth_word(rank)),
            }
        }
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for rank in 0..size {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { words, cumulative, exponent: s }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The Zipf exponent the vocabulary was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The word at `rank` (0 = most frequent).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of bounds.
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Samples a rank according to the Zipf distribution.
    pub fn sample_rank<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u).min(self.words.len() - 1)
    }

    /// Samples a word according to the Zipf distribution.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R) -> &'a str {
        let rank = self.sample_rank(rng);
        &self.words[rank]
    }
}

/// Deterministically synthesizes a pronounceable word for `rank` by
/// encoding the rank in base-24 syllable digits (injective, so tail
/// words never collide).
fn synth_word(rank: usize) -> String {
    let mut x = rank as u64;
    let mut w = String::new();
    loop {
        w.push_str(SYLLABLES[(x % SYLLABLES.len() as u64) as usize]);
        x /= SYLLABLES.len() as u64;
        if x == 0 {
            break;
        }
    }
    w
}

/// Generates documents of Zipf-sampled words with sentence structure.
///
/// # Example
///
/// ```
/// use bdb_datagen::TextGenerator;
/// let mut g = TextGenerator::wikipedia(7);
/// let a = g.document(50);
/// let mut g2 = TextGenerator::wikipedia(7);
/// let b = g2.document(50);
/// assert_eq!(a, b, "same seed, same text");
/// ```
#[derive(Debug)]
pub struct TextGenerator {
    vocabulary: Vocabulary,
    rng: StdRng,
    /// Mean document length in words (geometric-ish around this mean).
    mean_doc_words: usize,
}

impl TextGenerator {
    /// A generator fitted to the Wikipedia seed: Zipf exponent 1.0,
    /// 40,000-word vocabulary, mean article length ≈ 430 words.
    pub fn wikipedia(seed: u64) -> Self {
        Self::new(40_000, 1.0, 430, seed)
    }

    /// A generator fitted to review text (shorter docs, slightly flatter
    /// vocabulary, matching the Amazon movie review seed).
    pub fn reviews(seed: u64) -> Self {
        Self::new(20_000, 0.9, 120, seed)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` or `mean_doc_words` is zero.
    pub fn new(vocab_size: usize, zipf_s: f64, mean_doc_words: usize, seed: u64) -> Self {
        assert!(mean_doc_words > 0);
        Self {
            vocabulary: Vocabulary::new(vocab_size, zipf_s),
            rng: StdRng::seed_from_u64(seed),
            mean_doc_words,
        }
    }

    /// The underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Generates a document of exactly `words` words.
    pub fn document(&mut self, words: usize) -> String {
        let mut out = String::with_capacity(words * 6);
        let mut sentence_left = self.rng.gen_range(5..20);
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            let rank = self.vocabulary.sample_rank(&mut self.rng);
            out.push_str(self.vocabulary.word(rank));
            sentence_left -= 1;
            if sentence_left == 0 {
                out.push('.');
                sentence_left = self.rng.gen_range(5..20);
            }
        }
        out
    }

    /// Generates a document with a length sampled around the configured
    /// mean (uniform in `[mean/2, 3*mean/2]`).
    pub fn document_natural(&mut self) -> String {
        let lo = (self.mean_doc_words / 2).max(1);
        let hi = self.mean_doc_words * 3 / 2;
        let words = self.rng.gen_range(lo..=hi);
        self.document(words)
    }

    /// Generates approximately `bytes` of text as newline-separated
    /// documents. Returns the corpus; its length is within one document
    /// of the request.
    pub fn corpus(&mut self, bytes: usize) -> String {
        let mut out = String::with_capacity(bytes + 1024);
        while out.len() < bytes {
            out.push_str(&self.document_natural());
            out.push('\n');
        }
        out
    }

    /// Streams `n` documents through a callback without materializing the
    /// corpus — BDGS's "parallelism-bounded" volume story at library
    /// scale.
    pub fn documents<F: FnMut(String)>(&mut self, n: usize, mut f: F) {
        for _ in 0..n {
            f(self.document_natural());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn vocabulary_head_is_english() {
        let v = Vocabulary::new(200, 1.0);
        assert_eq!(v.word(0), "the");
        assert_eq!(v.word(1), "of");
        assert!(v.word(150).len() >= 4, "tail words are synthesized");
    }

    #[test]
    fn synth_words_are_unique_enough() {
        let v = Vocabulary::new(5000, 1.0);
        let mut seen = std::collections::HashSet::new();
        for r in 96..5000 {
            assert!(seen.insert(v.word(r).to_owned()), "duplicate tail word {}", v.word(r));
        }
    }

    #[test]
    fn zipf_sampling_is_skewed() {
        let v = Vocabulary::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(v.sample_rank(&mut rng)).or_insert(0u64) += 1;
        }
        let top = counts.get(&0).copied().unwrap_or(0);
        let mid = counts.get(&100).copied().unwrap_or(0);
        // Zipf(1): rank 0 should be ~100x rank 100.
        assert!(top > mid * 20, "rank0={top} rank100={mid}");
    }

    #[test]
    fn uniform_exponent_is_flat() {
        let v = Vocabulary::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[v.sample_rank(&mut rng)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "uniform sampling should be flat");
    }

    #[test]
    fn document_word_count_exact() {
        let mut g = TextGenerator::wikipedia(3);
        let d = g.document(77);
        assert_eq!(d.split_whitespace().count(), 77);
    }

    #[test]
    fn corpus_reaches_requested_bytes() {
        let mut g = TextGenerator::wikipedia(4);
        let c = g.corpus(10_000);
        assert!(c.len() >= 10_000);
        assert!(c.len() < 10_000 + 10_000); // within one doc of target
        assert!(c.ends_with('\n'));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TextGenerator::new(500, 1.0, 50, 99);
        let mut b = TextGenerator::new(500, 1.0, 50, 99);
        assert_eq!(a.corpus(2000), b.corpus(2000));
    }

    #[test]
    fn documents_callback_count() {
        let mut g = TextGenerator::reviews(5);
        let mut n = 0;
        g.documents(10, |_| n += 1);
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocabulary_panics() {
        Vocabulary::new(0, 1.0);
    }
}
