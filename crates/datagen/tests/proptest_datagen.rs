//! Property-based tests for the BDGS generators: determinism, bounds
//! and shape preservation under arbitrary seeds and sizes.

use bdb_datagen::convert::{edges_to_text, text_to_edges};
use bdb_datagen::table::zipf_sample;
use bdb_datagen::text::{TextGenerator, Vocabulary};
use bdb_datagen::{
    EcommerceGenerator, GraphGenerator, ResumeGenerator, ReviewGenerator, RmatParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Text generation is deterministic per seed and exact in length.
    #[test]
    fn text_deterministic_and_exact(seed in any::<u64>(), words in 1usize..300) {
        let a = TextGenerator::new(500, 1.0, 50, seed).document(words);
        let b = TextGenerator::new(500, 1.0, 50, seed).document(words);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.split_whitespace().count(), words);
    }

    /// Vocabulary sampling stays in bounds for any exponent.
    #[test]
    fn vocab_sampling_bounded(seed in any::<u64>(), s in 0.0f64..2.5, size in 1usize..2000) {
        let v = Vocabulary::new(size, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(v.sample_rank(&mut rng) < size);
        }
    }

    /// Zipf sampling is always within `1..=n`.
    #[test]
    fn zipf_bounds(seed in any::<u64>(), n in 1u64..10_000, s in 0.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = zipf_sample(&mut rng, n, s);
            prop_assert!((1..=n).contains(&x));
        }
    }

    /// Graph generation: edges in range, no self loops, deterministic.
    #[test]
    fn graph_well_formed(seed in any::<u64>(), nodes in 8u32..512) {
        let g1 = GraphGenerator::new(RmatParams::google_web(), seed).generate(nodes);
        let g2 = GraphGenerator::new(RmatParams::google_web(), seed).generate(nodes);
        prop_assert_eq!(&g1, &g2);
        for &(s, d) in &g1.edges {
            prop_assert!(s < nodes && d < nodes);
            prop_assert_ne!(s, d);
        }
    }

    /// Edge-list text round-trips.
    #[test]
    fn edge_text_roundtrip(seed in any::<u64>(), nodes in 8u32..128) {
        let g = GraphGenerator::new(RmatParams::facebook_social(), seed).generate(nodes);
        let text = edges_to_text(&g);
        let back = text_to_edges(&text).expect("own format parses");
        prop_assert_eq!(back.edges, g.edges);
    }

    /// E-commerce: line totals always equal number x price; foreign keys
    /// always resolve.
    #[test]
    fn ecommerce_consistent(seed in any::<u64>(), orders in 1u64..300) {
        let (os, is) = EcommerceGenerator::new(seed).generate(orders);
        prop_assert_eq!(os.len() as u64, orders);
        for it in &is {
            prop_assert!((it.goods_amount - it.goods_number * it.goods_price).abs() < 1e-6);
            prop_assert!(it.order_id >= 1 && it.order_id <= orders);
        }
    }

    /// Reviews: scores in 1..=5, non-empty text, deterministic.
    #[test]
    fn reviews_well_formed(seed in any::<u64>(), n in 1u64..200) {
        let a = ReviewGenerator::new(seed).generate(n);
        let b = ReviewGenerator::new(seed).generate(n);
        prop_assert_eq!(a.len() as u64, n);
        prop_assert_eq!(&a, &b);
        for r in &a {
            prop_assert!((1..=5).contains(&r.score));
            prop_assert!(!r.text.is_empty());
        }
    }

    /// Resumés: ids sequential, institutions in 1..=200, records parse.
    #[test]
    fn resumes_well_formed(seed in any::<u64>(), n in 1u64..200) {
        let rs = ResumeGenerator::new(seed).generate(n);
        for (i, r) in rs.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64 + 1);
            prop_assert!((1..=200).contains(&r.institution));
            let record = r.to_record();
            prop_assert!(record.contains("name=") && record.contains(";bio="));
        }
    }
}
