//! Range queries over stored series: label-matcher selects, counter
//! rates, `sum by(label)` aggregation, and histogram-series quantiles.

use crate::store::{SeriesKey, Tsdb};
use std::collections::BTreeMap;

/// Selects every series named `name` whose labels include all of
/// `matchers` (equality matches), returning `(key, samples in
/// [t0, t1])` pairs in deterministic key order.
#[must_use]
pub fn select(
    db: &Tsdb,
    name: &str,
    matchers: &[(&str, &str)],
    t0: u64,
    t1: u64,
) -> Vec<(SeriesKey, Vec<(u64, f64)>)> {
    let keys: Vec<SeriesKey> = db
        .keys()
        .filter(|k| k.name == name && matchers.iter().all(|&(mk, mv)| k.label(mk) == Some(mv)))
        .cloned()
        .collect();
    keys.into_iter()
        .map(|k| {
            let samples = db.samples(&k, t0, t1);
            (k, samples)
        })
        .collect()
}

/// The value of the last sample at or before `t_us`, if any.
#[must_use]
pub fn value_at(samples: &[(u64, f64)], t_us: u64) -> Option<f64> {
    samples.iter().rev().find(|&&(t, _)| t <= t_us).map(|&(_, v)| v)
}

/// Per-second increase rate between consecutive samples of a counter
/// series. Decreases (counter resets) and zero-width intervals clamp
/// to a rate of 0. Output has one fewer point than the input, stamped
/// at each interval's end.
#[must_use]
pub fn rate(samples: &[(u64, f64)]) -> Vec<(u64, f64)> {
    samples
        .windows(2)
        .map(|w| {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            let dt_s = (t1.saturating_sub(t0)) as f64 / 1_000_000.0;
            let r = if v1 >= v0 && dt_s > 0.0 { (v1 - v0) / dt_s } else { 0.0 };
            (t1, r)
        })
        .collect()
}

/// `sum by(label)` over every series named `name` matching `matchers`:
/// series sharing a value of `label` are summed pointwise at aligned
/// timestamps (every timestamp any member has; absent members
/// contribute their last known value, or 0 before their first sample).
#[must_use]
pub fn sum_by(
    db: &Tsdb,
    name: &str,
    label: &str,
    matchers: &[(&str, &str)],
    t0: u64,
    t1: u64,
) -> Vec<(String, Vec<(u64, f64)>)> {
    let mut groups: BTreeMap<String, Vec<Vec<(u64, f64)>>> = BTreeMap::new();
    for (key, samples) in select(db, name, matchers, t0, t1) {
        let group = key.label(label).unwrap_or("").to_owned();
        groups.entry(group).or_default().push(samples);
    }
    groups
        .into_iter()
        .map(|(group, members)| {
            let mut times: Vec<u64> = members.iter().flatten().map(|&(t, _)| t).collect();
            times.sort_unstable();
            times.dedup();
            let summed = times
                .iter()
                .map(|&t| {
                    let total: f64 = members.iter().filter_map(|m| value_at(m, t)).sum();
                    (t, total)
                })
                .collect();
            (group, summed)
        })
        .collect()
}

/// Quantile of a scraped histogram at virtual time `t_us`, re-derived
/// purely from stored `{name}_bucket` series (one per `le` bound) the
/// way [`bdb_telemetry::LatencyHistogram::percentile`] walks its
/// buckets: the answer is the upper bound (in microseconds) of the
/// bucket containing the target rank. Returns `None` when no bucket
/// series match or the histogram is empty at `t_us`.
#[must_use]
pub fn histogram_quantile(
    db: &Tsdb,
    name: &str,
    matchers: &[(&str, &str)],
    q: f64,
    t_us: u64,
) -> Option<u64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let bucket_name = format!("{name}_bucket");
    let mut bounds: Vec<(u64, f64)> = select(db, &bucket_name, matchers, 0, t_us)
        .into_iter()
        .filter_map(|(key, samples)| {
            let bound: u64 = key.label("le")?.parse().ok()?;
            Some((bound, value_at(&samples, t_us)?))
        })
        .collect();
    bounds.sort_by_key(|&(b, _)| b);
    let total = bounds.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let target = (q * total).ceil().max(1.0);
    bounds.iter().find(|&&(_, c)| c >= target).map(|&(b, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::Scraper;
    use crate::store::TsdbConfig;
    use bdb_telemetry::MetricsRegistry;

    type SeriesSpec<'a> = (&'a str, &'a [(&'a str, &'a str)], &'a [(u64, f64)]);

    fn db_with(series: &[SeriesSpec]) -> Tsdb {
        let mut db = Tsdb::new(TsdbConfig::default());
        for (name, labels, samples) in series {
            let key = SeriesKey::new(name, labels);
            for &(t, v) in *samples {
                db.append(&key, t, v);
            }
        }
        db
    }

    #[test]
    fn select_matches_on_name_and_labels() {
        let db = db_with(&[
            ("m", &[("node", "a"), ("phase", "x")], &[(1, 1.0)]),
            ("m", &[("node", "b"), ("phase", "x")], &[(1, 2.0)]),
            ("other", &[("node", "a")], &[(1, 3.0)]),
        ]);
        assert_eq!(select(&db, "m", &[], 0, 10).len(), 2);
        let only_a = select(&db, "m", &[("node", "a")], 0, 10);
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a[0].1, vec![(1, 1.0)]);
        assert!(select(&db, "m", &[("node", "z")], 0, 10).is_empty());
    }

    #[test]
    fn value_at_takes_the_last_sample_not_after_t() {
        let samples = [(10, 1.0), (20, 2.0), (30, 3.0)];
        assert_eq!(value_at(&samples, 5), None);
        assert_eq!(value_at(&samples, 10), Some(1.0));
        assert_eq!(value_at(&samples, 29), Some(2.0));
        assert_eq!(value_at(&samples, 1_000), Some(3.0));
    }

    #[test]
    fn rate_is_per_second_and_clamps_resets() {
        let samples = [
            (0, 0.0),
            (1_000_000, 10.0), // +10 over 1s
            (3_000_000, 14.0), // +4 over 2s
            (4_000_000, 2.0),  // reset
        ];
        assert_eq!(rate(&samples), vec![(1_000_000, 10.0), (3_000_000, 2.0), (4_000_000, 0.0),]);
    }

    #[test]
    fn sum_by_groups_and_aligns_timestamps() {
        let db = db_with(&[
            ("w", &[("node", "a"), ("shard", "0")], &[(10, 1.0), (20, 2.0)]),
            ("w", &[("node", "a"), ("shard", "1")], &[(20, 5.0)]),
            ("w", &[("node", "b"), ("shard", "2")], &[(10, 7.0)]),
        ]);
        let grouped = sum_by(&db, "w", "node", &[], 0, 100);
        assert_eq!(grouped.len(), 2);
        // node a: at t=10 only shard 0 exists (1.0); at t=20 both (2+5).
        assert_eq!(grouped[0], ("a".to_owned(), vec![(10, 1.0), (20, 7.0)]));
        assert_eq!(grouped[1], ("b".to_owned(), vec![(10, 7.0)]));
    }

    #[test]
    fn histogram_quantile_matches_the_live_histogram_bucket() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("req_us");
        for us in [100, 200, 300, 400, 90_000] {
            hist.record_micros(us);
        }
        let mut scraper = Scraper::new();
        scraper.add_target(&[("node", "n0")], &registry);
        let mut db = Tsdb::new(TsdbConfig::default());
        scraper.scrape_at(&mut db, 1_000);

        let snapshot = registry.histogram_snapshots().remove(0).1;
        for q in [0.5, 0.9, 0.99] {
            let stored = histogram_quantile(&db, "req_us", &[], q, 1_000)
                .expect("quantile answerable from stored buckets");
            let live = snapshot.percentile(q).as_micros() as u64;
            // The stored answer is a bucket's upper edge; the live
            // percentile clamps to the observed max — agreement within
            // one log bucket is the contract.
            let (si, li) = (bdb_telemetry::bucket_index(stored), bdb_telemetry::bucket_index(live));
            assert!(si.abs_diff(li) <= 1, "q={q}: stored bound {stored} vs live {live}");
        }
        assert_eq!(histogram_quantile(&db, "req_us", &[], 0.5, 5), None, "before first scrape");
        assert_eq!(histogram_quantile(&db, "missing", &[], 0.5, 1_000), None);
    }
}
