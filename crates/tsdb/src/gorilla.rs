//! Gorilla-style series compression: delta-of-delta varint timestamps
//! and XOR-compressed IEEE-754 values, packed into one bit stream.
//!
//! The scheme follows Facebook's Gorilla paper as adapted by
//! Prometheus' TSDB chunks. Timestamps (virtual-time microseconds)
//! are stored as a varint start, a varint first delta, then zigzag
//! varint delta-of-deltas — metronomic scrapes collapse to one byte
//! per sample. Values store the XOR against the previous value: an
//! unchanged value costs a single bit, a value sharing the previous
//! sample's leading/trailing-zero window costs only its meaningful
//! bits, and everything else pays 12 control bits plus the meaningful
//! bits. The round trip is bit-exact for every finite `f64`, including
//! `-0.0` and subnormals — the codec never interprets the bits, it
//! only moves them.

/// Bit-granular append-only writer (MSB-first within each byte).
#[derive(Debug, Default)]
struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte of `buf` (0 means the last
    /// byte is full or the buffer is empty).
    used: u8,
}

impl BitWriter {
    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
            self.used = 8;
        }
        if bit {
            let last = self.buf.last_mut().expect("just pushed");
            *last |= 1 << (self.used - 1);
        }
        self.used -= 1;
    }

    /// Writes the low `n` bits of `value`, most significant first.
    fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// LEB128 varint through the bit stream.
    fn write_varint(&mut self, mut v: u64) {
        loop {
            let byte = v & 0x7F;
            v >>= 7;
            if v == 0 {
                self.write_bits(byte, 8);
                break;
            }
            self.write_bits(byte | 0x80, 8);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bit-granular reader over an encoded block.
#[derive(Debug)]
struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn read_bit(&mut self) -> bool {
        let byte = self.data.get(self.pos / 8).copied().expect("gorilla: truncated block");
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        bit
    }

    fn read_bits(&mut self, n: u8) -> u64 {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    fn read_varint(&mut self) -> u64 {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_bits(8);
            v |= (byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return v;
            }
            shift += 7;
            assert!(shift < 64, "gorilla: varint overruns 64 bits");
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a series of `(timestamp_us, value)` samples. Timestamps
/// must be non-decreasing (virtual time never runs backwards).
///
/// # Panics
///
/// Panics if timestamps decrease.
#[must_use]
pub fn encode(samples: &[(u64, f64)]) -> Vec<u8> {
    let mut w = BitWriter::default();
    let mut prev_t = 0u64;
    let mut prev_delta = 0i64;
    let mut prev_bits = 0u64;
    let mut prev_leading = 0u8;
    let mut prev_trailing = 0u8;
    for (i, &(t, v)) in samples.iter().enumerate() {
        // Timestamp: start varint, then first delta, then zigzagged
        // delta-of-delta.
        if i == 0 {
            w.write_varint(t);
        } else {
            assert!(t >= prev_t, "gorilla: timestamps must be non-decreasing");
            let delta = i64::try_from(t - prev_t).expect("gorilla: timestamp delta overflows i64");
            if i == 1 {
                w.write_varint(zigzag(delta));
            } else {
                w.write_varint(zigzag(delta - prev_delta));
            }
            prev_delta = delta;
        }
        prev_t = t;

        // Value: raw for the first sample, XOR-compressed after.
        let bits = v.to_bits();
        if i == 0 {
            w.write_bits(bits, 64);
        } else {
            let xor = bits ^ prev_bits;
            if xor == 0 {
                w.write_bit(false);
            } else {
                w.write_bit(true);
                let leading = (xor.leading_zeros() as u8).min(63);
                let trailing = xor.trailing_zeros() as u8;
                let fits_prev_window = prev_leading + prev_trailing > 0
                    && leading >= prev_leading
                    && trailing >= prev_trailing;
                if fits_prev_window {
                    w.write_bit(false);
                    let meaningful = 64 - prev_leading - prev_trailing;
                    w.write_bits(xor >> prev_trailing, meaningful);
                } else {
                    w.write_bit(true);
                    let meaningful = 64 - leading - trailing;
                    w.write_bits(u64::from(leading), 6);
                    w.write_bits(u64::from(meaningful - 1), 6);
                    w.write_bits(xor >> trailing, meaningful);
                    prev_leading = leading;
                    prev_trailing = trailing;
                }
            }
        }
        prev_bits = bits;
    }
    w.finish()
}

/// Decodes `count` samples from a block produced by [`encode`].
///
/// # Panics
///
/// Panics on truncated or malformed data.
#[must_use]
pub fn decode(data: &[u8], count: usize) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return out;
    }
    let mut r = BitReader::new(data);
    let mut t = 0u64;
    let mut delta = 0i64;
    let mut bits = 0u64;
    let mut leading = 0u8;
    let mut trailing = 0u8;
    for i in 0..count {
        if i == 0 {
            t = r.read_varint();
        } else {
            if i == 1 {
                delta = unzigzag(r.read_varint());
            } else {
                delta += unzigzag(r.read_varint());
            }
            t = t.checked_add_signed(delta).expect("gorilla: decoded timestamp overflows u64");
        }
        if i == 0 {
            bits = r.read_bits(64);
        } else if r.read_bit() {
            if r.read_bit() {
                leading = r.read_bits(6) as u8;
                let meaningful = r.read_bits(6) as u8 + 1;
                trailing = 64 - leading - meaningful;
                bits ^= r.read_bits(meaningful) << trailing;
            } else {
                let meaningful = 64 - leading - trailing;
                bits ^= r.read_bits(meaningful) << trailing;
            }
        }
        out.push((t, f64::from_bits(bits)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(samples: &[(u64, f64)]) {
        let enc = encode(samples);
        let dec = decode(&enc, samples.len());
        assert_eq!(dec.len(), samples.len());
        for (i, (&(t, v), &(dt, dv))) in samples.iter().zip(&dec).enumerate() {
            assert_eq!(t, dt, "timestamp {i}");
            assert_eq!(v.to_bits(), dv.to_bits(), "value bits {i}: {v} vs {dv}");
        }
    }

    #[test]
    fn empty_and_single_sample_round_trip() {
        roundtrip(&[]);
        assert!(encode(&[]).is_empty());
        roundtrip(&[(0, 0.0)]);
        roundtrip(&[(u64::MAX / 2, -1234.5678)]);
    }

    #[test]
    fn constant_values_hit_the_zero_xor_path() {
        let samples: Vec<(u64, f64)> = (0..200).map(|i| (i * 500, 42.0)).collect();
        let enc = encode(&samples);
        // 199 repeated values cost one bit each; the whole block must
        // be far below the 8 bytes/sample raw cost.
        assert!(enc.len() < samples.len() * 3, "{} bytes for {} samples", enc.len(), samples.len());
        roundtrip(&samples);
    }

    #[test]
    fn signed_zero_and_subnormals_survive() {
        roundtrip(&[
            (0, 0.0),
            (1, -0.0),
            (2, 0.0),
            (3, f64::MIN_POSITIVE / 4.0), // subnormal
            (4, -f64::MIN_POSITIVE / 2.0),
            (5, f64::from_bits(1)), // smallest subnormal
            (6, f64::MAX),
            (7, f64::MIN),
        ]);
    }

    #[test]
    fn irregular_and_repeated_timestamps_round_trip() {
        roundtrip(&[(5, 1.0), (5, 2.0), (6, 3.0), (1_000_000, 4.0), (1_000_001, 5.0)]);
    }

    #[test]
    fn metronomic_timestamps_compress_to_about_a_byte_each() {
        let samples: Vec<(u64, f64)> = (0..512).map(|i| (i * 1_000, (i % 7) as f64)).collect();
        let enc = encode(&samples);
        // dod = 0 after the second sample: one varint byte + a few
        // value bits per sample.
        assert!(enc.len() < 512 * 4, "{} bytes", enc.len());
        roundtrip(&samples);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_timestamps_panic() {
        let _ = encode(&[(10, 1.0), (5, 2.0)]);
    }

    /// Strategy: arbitrary finite f64 (NaN/inf folded to a finite
    /// value derived from the same bits, so ±0.0, subnormals and full
    /// mantissas all appear).
    fn finite_f64() -> impl Strategy<Value = f64> {
        any::<u64>().prop_map(|b| {
            let v = f64::from_bits(b);
            if v.is_finite() {
                v
            } else {
                (b >> 12) as f64
            }
        })
    }

    proptest! {
        #[test]
        fn roundtrips_arbitrary_monotone_series(
            start in 0u64..1_000_000_000_000,
            steps in proptest::collection::vec(
                (0u64..2_000_000, finite_f64()), 0..200),
            repeat_every in 1usize..8,
        ) {
            // Monotone timestamps from deltas; every `repeat_every`-th
            // value repeats its predecessor to exercise the XOR-zero
            // path inside otherwise-random data.
            let mut t = start;
            let mut samples: Vec<(u64, f64)> = Vec::with_capacity(steps.len());
            for (i, (dt, v)) in steps.into_iter().enumerate() {
                t += dt;
                let v = if i > 0 && i % repeat_every == 0 {
                    samples[i - 1].1
                } else {
                    v
                };
                samples.push((t, v));
            }
            let enc = encode(&samples);
            let dec = decode(&enc, samples.len());
            prop_assert_eq!(dec.len(), samples.len());
            for (&(at, av), &(bt, bv)) in samples.iter().zip(&dec) {
                prop_assert_eq!(at, bt);
                prop_assert_eq!(av.to_bits(), bv.to_bits());
            }
        }
    }
}
