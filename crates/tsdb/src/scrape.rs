//! Virtual-time scraping: periodically samples every registered
//! [`MetricsRegistry`] into labeled series.
//!
//! Counters and gauges become one series each; histograms expand to
//! `{name}_bucket` series per occupied cumulative bucket (labeled
//! `le="<bound>"`), plus `{name}_count` and `{name}_sum` — the same
//! shape Prometheus stores, so histogram quantiles can be re-derived
//! from the stored series alone.

use crate::store::{SeriesKey, Tsdb};
use bdb_telemetry::MetricsRegistry;

/// One scrape target: a shared registry plus the identity labels its
/// series carry (`workload`, `node`, `phase`, ...).
#[derive(Debug)]
struct Target {
    labels: Vec<(String, String)>,
    registry: MetricsRegistry,
}

/// Samples registries into a [`Tsdb`] at caller-chosen virtual times.
#[derive(Debug, Default)]
pub struct Scraper {
    targets: Vec<Target>,
}

impl Scraper {
    /// An empty scraper.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `registry` (shared handle; live values are read at
    /// each scrape) under identity `labels`.
    pub fn add_target(&mut self, labels: &[(&str, &str)], registry: &MetricsRegistry) {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        labels.sort();
        self.targets.push(Target { labels, registry: registry.clone() });
    }

    /// Registered targets.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Scrapes every target once at virtual time `t_us`, appending one
    /// sample per live metric into `store`.
    pub fn scrape_at(&self, store: &mut Tsdb, t_us: u64) {
        for target in &self.targets {
            let key = |name: &str, extra: Option<(&str, String)>| {
                let mut labels = target.labels.clone();
                if let Some((k, v)) = extra {
                    labels.push((k.to_owned(), v));
                }
                labels.sort();
                SeriesKey { name: name.to_owned(), labels }
            };
            for (name, value) in target.registry.counter_values() {
                store.append(&key(&name, None), t_us, value as f64);
            }
            for (name, value) in target.registry.gauge_values() {
                store.append(&key(&name, None), t_us, value as f64);
            }
            for (name, hist) in target.registry.histogram_snapshots() {
                for (bound, cumulative) in hist.cumulative_buckets() {
                    let k = key(&format!("{name}_bucket"), Some(("le", bound.to_string())));
                    store.append(&k, t_us, cumulative as f64);
                }
                store.append(&key(&format!("{name}_count"), None), t_us, hist.count() as f64);
                store.append(&key(&format!("{name}_sum"), None), t_us, hist.sum_micros() as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TsdbConfig;

    #[test]
    fn scrapes_counters_gauges_and_histograms_into_labeled_series() {
        let registry = MetricsRegistry::new();
        registry.counter("reqs.total").add(5);
        registry.gauge("lag.bytes").set(-7);
        let hist = registry.histogram("req_us");
        hist.record_micros(120);
        hist.record_micros(90_000);

        let mut scraper = Scraper::new();
        scraper.add_target(&[("workload", "oltp"), ("node", "node-2")], &registry);
        assert_eq!(scraper.target_count(), 1);

        let mut db = Tsdb::new(TsdbConfig::default());
        scraper.scrape_at(&mut db, 1_000);
        registry.counter("reqs.total").add(3);
        scraper.scrape_at(&mut db, 2_000);

        let base = [("workload", "oltp"), ("node", "node-2")];
        let counter = db.samples(&SeriesKey::new("reqs.total", &base), 0, u64::MAX);
        assert_eq!(counter, vec![(1_000, 5.0), (2_000, 8.0)]);
        let gauge = db.samples(&SeriesKey::new("lag.bytes", &base), 0, u64::MAX);
        assert_eq!(gauge, vec![(1_000, -7.0), (2_000, -7.0)]);
        let count = db.samples(&SeriesKey::new("req_us_count", &base), 0, u64::MAX);
        assert_eq!(count, vec![(1_000, 2.0), (2_000, 2.0)]);
        let sum = db.samples(&SeriesKey::new("req_us_sum", &base), 0, u64::MAX);
        assert_eq!(sum, vec![(1_000, 90_120.0), (2_000, 90_120.0)]);

        // Bucket series carry the `le` label and cumulate correctly:
        // the last (largest) occupied bound covers both recordings.
        let buckets: Vec<&SeriesKey> = db.keys().filter(|k| k.name == "req_us_bucket").collect();
        assert!(!buckets.is_empty(), "histogram expanded to bucket series");
        for k in &buckets {
            assert!(k.label("le").is_some(), "bucket series missing le: {}", k.render());
        }
        let top =
            buckets.iter().max_by_key(|k| k.label("le").unwrap().parse::<u64>().unwrap()).unwrap();
        let top_samples = db.samples(top, 0, u64::MAX);
        assert_eq!(top_samples.last(), Some(&(2_000, 2.0)));
    }
}
