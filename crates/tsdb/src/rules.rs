//! Recording rules: re-evaluates [`SloEngine`] burn-rate rules over
//! *stored* series instead of the live window stream.
//!
//! The evaluator reconstructs per-window `(bad, total)` increments
//! from two scraped cumulative counters and feeds them through a real
//! [`SloEngine`] — the burn arithmetic, rising-edge latching, and
//! multi-window gating are the production code paths, not a copy. As
//! long as the counters were scraped at (at least) every window
//! boundary, the replay fires the same alerts at the same window
//! indices as the engine that watched the run live.

use crate::query::value_at;
use bdb_obs::{AlertEvent, BurnRateRule, SloEngine, SloSpec, WindowStats};
use bdb_telemetry::LatencyHistogram;
use std::time::Duration;

/// Replays `rules` for `spec` over stored cumulative counters.
///
/// `bad` and `total` are scraped samples of the cumulative bad-event
/// and total-event counters; windows tile `[0, n_windows * width_us)`.
/// The counter value at each boundary is the last sample at or before
/// it (0 before the first sample), so scrapes must land on every
/// boundary for an exact replay.
#[must_use]
pub fn replay_burn_rules(
    spec: SloSpec,
    rules: Vec<BurnRateRule>,
    width_us: u64,
    bad: &[(u64, f64)],
    total: &[(u64, f64)],
    n_windows: u64,
) -> Vec<AlertEvent> {
    let mut engine = SloEngine::new(spec, rules, Duration::from_micros(width_us));
    let counter_at = |samples: &[(u64, f64)], t: u64| value_at(samples, t).unwrap_or(0.0) as u64;
    for index in 0..n_windows {
        let (t0, t1) = (index * width_us, (index + 1) * width_us);
        let bad_inc = counter_at(bad, t1).saturating_sub(counter_at(bad, t0));
        let total_inc = counter_at(total, t1).saturating_sub(counter_at(total, t0));
        // A synthetic window whose bad()/total() equal the increments:
        // sheds are always bad, completions under threshold are good.
        let window = WindowStats {
            index,
            offered: total_inc,
            completed: total_inc.saturating_sub(bad_inc),
            shed: bad_inc.min(total_inc),
            timed_out: 0,
            slow: 0,
            hist: LatencyHistogram::new(),
        };
        engine.on_window_close(&window);
    }
    engine.alerts().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_obs::Severity;

    fn spec() -> SloSpec {
        SloSpec {
            name: "replayed-99".into(),
            objective: 0.99,
            threshold: Duration::from_millis(50),
        }
    }

    /// A live engine and the stored-series replay must agree on every
    /// alert when counters are scraped on the window boundaries.
    #[test]
    fn replay_matches_a_live_engine() {
        const WIDTH_US: u64 = 2_000_000;
        const WINDOWS: u64 = 40;
        // Per-window traffic: clean, then a 25%-bad incident, then
        // clean again (so rules latch, reset, and could re-arm).
        let traffic: Vec<(u64, u64)> = (0..WINDOWS)
            .map(|i| if (12..20).contains(&i) { (25, 100) } else { (0, 100) })
            .collect();

        let mut live =
            SloEngine::new(spec(), BurnRateRule::standard_pair(), Duration::from_micros(WIDTH_US));
        let (mut bad_series, mut total_series) = (Vec::new(), Vec::new());
        let (mut bad_c, mut total_c) = (0u64, 0u64);
        for (i, &(bad, total)) in traffic.iter().enumerate() {
            live.on_window_close(&WindowStats {
                index: i as u64,
                offered: total,
                completed: total - bad,
                shed: bad,
                timed_out: 0,
                slow: 0,
                hist: LatencyHistogram::new(),
            });
            bad_c += bad;
            total_c += total;
            // Scrape lands exactly on the close boundary (plus an
            // off-boundary extra scrape the replay must ignore).
            let t = (i as u64 + 1) * WIDTH_US;
            bad_series.push((t, bad_c as f64));
            total_series.push((t, total_c as f64));
            bad_series.push((t + WIDTH_US / 4, bad_c as f64));
            total_series.push((t + WIDTH_US / 4, total_c as f64));
        }

        let replayed = replay_burn_rules(
            spec(),
            BurnRateRule::standard_pair(),
            WIDTH_US,
            &bad_series,
            &total_series,
            WINDOWS,
        );
        let live_alerts = live.alerts();
        assert!(!live_alerts.is_empty(), "the incident must fire at least one rule");
        assert_eq!(replayed.len(), live_alerts.len());
        for (r, l) in replayed.iter().zip(live_alerts) {
            assert_eq!(r.rule, l.rule);
            assert_eq!(r.window_index, l.window_index);
            assert_eq!(r.at_ns, l.at_ns);
            assert!((r.long_burn - l.long_burn).abs() < 1e-12);
            assert!((r.short_burn - l.short_burn).abs() < 1e-12);
        }
        assert!(replayed.iter().any(|a| a.severity == Severity::Page));
    }

    #[test]
    fn empty_series_replay_quietly() {
        let alerts =
            replay_burn_rules(spec(), BurnRateRule::standard_pair(), 1_000_000, &[], &[], 20);
        assert!(alerts.is_empty());
    }
}
