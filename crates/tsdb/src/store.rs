//! The labeled series store: append-only Gorilla blocks per series,
//! retention with 10:1 downsampling into summary blocks, and a
//! byte-deterministic snapshot format.

use crate::gorilla;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A series identity: metric name plus a sorted label set. Labels are
/// sorted and deduplicated on construction so equal label sets always
/// compare (and serialize) identically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name (e.g. `cluster.replication_lag_bytes`).
    pub name: String,
    /// Sorted `(key, value)` labels (e.g. `node`, `workload`, `phase`).
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// A key for `name` with `labels` (sorted internally).
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        labels.sort();
        labels.dedup();
        Self { name: name.to_owned(), labels }
    }

    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// `name{k="v",...}` rendering for dashboards and debugging.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }
}

/// One sealed, compressed run of samples.
#[derive(Debug, Clone)]
pub struct Block {
    /// Timestamp of the first sample, microseconds.
    pub start_us: u64,
    /// Timestamp of the last sample, microseconds.
    pub end_us: u64,
    /// Samples in the block.
    pub count: u32,
    /// Gorilla-encoded payload.
    pub data: Vec<u8>,
}

impl Block {
    fn seal(samples: &[(u64, f64)]) -> Self {
        Self {
            start_us: samples.first().map_or(0, |s| s.0),
            end_us: samples.last().map_or(0, |s| s.0),
            count: samples.len() as u32,
            data: gorilla::encode(samples),
        }
    }

    fn samples(&self) -> Vec<(u64, f64)> {
        gorilla::decode(&self.data, self.count as usize)
    }
}

#[derive(Debug, Default)]
struct Series {
    /// Downsampled history (10:1), oldest first.
    summary: Vec<Block>,
    /// Open downsampled samples not yet sealed into a summary block.
    summary_open: Vec<(u64, f64)>,
    /// Raw sealed blocks, oldest first.
    raw: Vec<Block>,
    /// Open raw samples not yet sealed.
    open: Vec<(u64, f64)>,
    last_us: Option<u64>,
}

impl Series {
    fn all_samples(&self, t0: u64, t1: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let in_range = |s: &(u64, f64)| s.0 >= t0 && s.0 <= t1;
        for block in self.summary.iter().chain(self.raw.iter()) {
            if block.end_us < t0 || block.start_us > t1 {
                continue;
            }
            out.extend(block.samples().into_iter().filter(in_range));
        }
        out.extend(self.summary_open.iter().copied().filter(in_range));
        out.extend(self.open.iter().copied().filter(in_range));
        out.sort_by_key(|&(t, _)| t);
        out
    }
}

/// Sizing and retention policy.
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Samples per sealed block.
    pub block_samples: usize,
    /// Raw samples older than this (relative to the newest observed
    /// time) are downsampled into summary blocks. `None` keeps raw
    /// samples forever.
    pub retention_us: Option<u64>,
    /// Raw samples folded into each summary sample.
    pub downsample: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self { block_samples: 120, retention_us: None, downsample: 10 }
    }
}

/// The embedded time-series database: a deterministic map of
/// [`SeriesKey`] → compressed sample history.
#[derive(Debug, Default)]
pub struct Tsdb {
    config: TsdbConfig,
    series: BTreeMap<SeriesKey, Series>,
    now_us: u64,
}

/// Snapshot magic + version.
const MAGIC: &[u8; 8] = b"BDBTSDB1";

impl Tsdb {
    /// An empty store under `config`.
    #[must_use]
    pub fn new(config: TsdbConfig) -> Self {
        Self { config, series: BTreeMap::new(), now_us: 0 }
    }

    /// Series currently stored.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Every stored series key, in deterministic (sorted) order.
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.series.keys()
    }

    /// Appends one sample. Timestamps must be non-decreasing per
    /// series; equal timestamps overwrite nothing and append in order.
    ///
    /// # Panics
    ///
    /// Panics if `t_us` precedes the series' newest sample.
    pub fn append(&mut self, key: &SeriesKey, t_us: u64, value: f64) {
        self.now_us = self.now_us.max(t_us);
        let block_samples = self.config.block_samples;
        let series = self.series.entry(key.clone()).or_default();
        if let Some(last) = series.last_us {
            assert!(t_us >= last, "tsdb: series {} fed out of time order", key.render());
        }
        series.last_us = Some(t_us);
        series.open.push((t_us, value));
        if series.open.len() >= block_samples {
            series.raw.push(Block::seal(&series.open));
            series.open.clear();
        }
    }

    /// All samples of `key` in `[t0, t1]`, oldest first (summary
    /// history followed by raw, merged on the timeline).
    #[must_use]
    pub fn samples(&self, key: &SeriesKey, t0: u64, t1: u64) -> Vec<(u64, f64)> {
        self.series.get(key).map(|s| s.all_samples(t0, t1)).unwrap_or_default()
    }

    /// Applies the retention policy: raw blocks wholly older than
    /// `retention_us` (relative to the newest appended timestamp) are
    /// folded `downsample`:1 into summary samples — each group of
    /// `downsample` raw samples becomes one summary sample holding the
    /// group mean at the group's last timestamp.
    pub fn enforce_retention(&mut self) {
        let Some(retention) = self.config.retention_us else {
            return;
        };
        let horizon = self.now_us.saturating_sub(retention);
        let factor = self.config.downsample.max(1);
        let block_samples = self.config.block_samples;
        for series in self.series.values_mut() {
            while series.raw.first().is_some_and(|b| b.end_us < horizon) {
                let block = series.raw.remove(0);
                for group in block.samples().chunks(factor) {
                    let mean = group.iter().map(|&(_, v)| v).sum::<f64>() / group.len() as f64;
                    let t = group.last().expect("chunks are non-empty").0;
                    series.summary_open.push((t, mean));
                    if series.summary_open.len() >= block_samples {
                        series.summary.push(Block::seal(&series.summary_open));
                        series.summary_open.clear();
                    }
                }
            }
        }
    }

    /// Raw and summary block counts across all series (diagnostics).
    #[must_use]
    pub fn block_counts(&self) -> (usize, usize) {
        let raw = self.series.values().map(|s| s.raw.len()).sum();
        let summary = self.series.values().map(|s| s.summary.len()).sum();
        (raw, summary)
    }

    /// Serializes the store to the byte-deterministic snapshot format:
    /// a fixed magic, then every series in sorted key order with its
    /// summary and raw blocks (open sample runs are sealed into final
    /// blocks on the way out; the store itself is not mutated). Two
    /// stores with equal contents produce identical bytes on any host.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, self.series.len() as u32);
        for (key, series) in &self.series {
            write_str(&mut out, &key.name);
            write_u32(&mut out, key.labels.len() as u32);
            for (k, v) in &key.labels {
                write_str(&mut out, k);
                write_str(&mut out, v);
            }
            for (blocks, open) in
                [(&series.summary, &series.summary_open), (&series.raw, &series.open)]
            {
                let sealed_open = (!open.is_empty()).then(|| Block::seal(open));
                write_u32(&mut out, (blocks.len() + usize::from(sealed_open.is_some())) as u32);
                for block in blocks.iter().chain(sealed_open.iter()) {
                    write_u64(&mut out, block.start_us);
                    write_u64(&mut out, block.end_us);
                    write_u32(&mut out, block.count);
                    write_u32(&mut out, block.data.len() as u32);
                    out.extend_from_slice(&block.data);
                }
            }
        }
        out
    }

    /// Parses a snapshot produced by [`Tsdb::snapshot_bytes`]. The
    /// loaded store queries identically and re-snapshots to the exact
    /// same bytes.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic or truncated payload.
    pub fn from_snapshot_bytes(bytes: &[u8], config: TsdbConfig) -> std::io::Result<Self> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> std::io::Result<&[u8]> {
            let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| bad("tsdb snapshot: truncated"))?;
            let slice = &bytes[*pos..end];
            *pos = end;
            Ok(slice)
        };
        if take(&mut pos, MAGIC.len())? != MAGIC {
            return Err(bad("tsdb snapshot: bad magic"));
        }
        let read_u32 = |pos: &mut usize| -> std::io::Result<u32> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4 bytes")))
        };
        let read_u64 = |pos: &mut usize| -> std::io::Result<u64> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().expect("8 bytes")))
        };
        let read_str = |pos: &mut usize| -> std::io::Result<String> {
            let len = read_u32(pos)? as usize;
            String::from_utf8(take(pos, len)?.to_vec())
                .map_err(|_| bad("tsdb snapshot: invalid utf-8"))
        };
        let mut db = Tsdb::new(config);
        let n_series = read_u32(&mut pos)?;
        for _ in 0..n_series {
            let name = read_str(&mut pos)?;
            let n_labels = read_u32(&mut pos)?;
            let mut labels = Vec::with_capacity(n_labels as usize);
            for _ in 0..n_labels {
                labels.push((read_str(&mut pos)?, read_str(&mut pos)?));
            }
            let key = SeriesKey { name, labels };
            let mut series = Series::default();
            for which in 0..2 {
                let n_blocks = read_u32(&mut pos)?;
                for _ in 0..n_blocks {
                    let start_us = read_u64(&mut pos)?;
                    let end_us = read_u64(&mut pos)?;
                    let count = read_u32(&mut pos)?;
                    let len = read_u32(&mut pos)? as usize;
                    let data = take(&mut pos, len)?.to_vec();
                    let block = Block { start_us, end_us, count, data };
                    if which == 0 {
                        series.summary.push(block);
                    } else {
                        series.last_us = Some(end_us);
                        db.now_us = db.now_us.max(end_us);
                        series.raw.push(block);
                    }
                }
            }
            db.series.insert(key, series);
        }
        if pos != bytes.len() {
            return Err(bad("tsdb snapshot: trailing bytes"));
        }
        Ok(db)
    }
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, node: &str) -> SeriesKey {
        SeriesKey::new(name, &[("node", node), ("workload", "test")])
    }

    #[test]
    fn label_sets_are_canonicalized() {
        let a = SeriesKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = SeriesKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(a.label("b"), Some("2"));
        assert_eq!(a.label("c"), None);
    }

    #[test]
    fn append_seals_blocks_and_queries_ranges() {
        let mut db = Tsdb::new(TsdbConfig { block_samples: 16, ..Default::default() });
        let k = key("m", "node-0");
        for i in 0..50u64 {
            db.append(&k, i * 100, i as f64);
        }
        let (raw, summary) = db.block_counts();
        assert_eq!(raw, 3, "48 samples sealed at 16/block");
        assert_eq!(summary, 0);
        let all = db.samples(&k, 0, u64::MAX);
        assert_eq!(all.len(), 50, "sealed + open samples all visible");
        let mid = db.samples(&k, 1_000, 2_000);
        assert_eq!(mid.len(), 11);
        assert_eq!(mid[0], (1_000, 10.0));
        assert_eq!(mid[10], (2_000, 20.0));
    }

    #[test]
    fn retention_downsamples_ten_to_one() {
        let mut db =
            Tsdb::new(TsdbConfig { block_samples: 20, retention_us: Some(1_000), downsample: 10 });
        let k = key("m", "node-1");
        for i in 0..100u64 {
            db.append(&k, i * 100, i as f64);
        }
        db.enforce_retention();
        // now = 9_900, horizon = 8_900: raw blocks ending before that
        // (four of them: 80 samples) fold to 8 summary samples.
        let (raw, _) = db.block_counts();
        assert_eq!(raw, 1, "old raw blocks were downsampled away");
        let summary = db.samples(&k, 0, 7_999);
        assert_eq!(summary.len(), 8, "80 raw samples -> 8 summary samples");
        // First summary sample: mean of values 0..=9 at t = 900.
        assert_eq!(summary[0], (900, 4.5));
        // Recent raw samples are untouched.
        let recent = db.samples(&k, 8_000, u64::MAX);
        assert_eq!(recent.first(), Some(&(8_000, 80.0)));
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let build = || {
            let mut db = Tsdb::new(TsdbConfig {
                block_samples: 8,
                retention_us: Some(2_000),
                downsample: 10,
            });
            for node in ["node-0", "node-1"] {
                let k = key("cluster.applies_total", node);
                for i in 0..40u64 {
                    db.append(&k, i * 250, (i * 3) as f64);
                }
            }
            db.enforce_retention();
            db
        };
        let a = build().snapshot_bytes();
        let b = build().snapshot_bytes();
        assert_eq!(a, b, "same inputs snapshot to identical bytes");

        let loaded = Tsdb::from_snapshot_bytes(&a, TsdbConfig::default()).expect("parses");
        assert_eq!(loaded.snapshot_bytes(), a, "load + re-snapshot is identity");
        let k = key("cluster.applies_total", "node-0");
        assert_eq!(loaded.samples(&k, 0, u64::MAX), build().samples(&k, 0, u64::MAX));
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Tsdb::from_snapshot_bytes(b"nonsense", TsdbConfig::default()).is_err());
        let mut ok = Tsdb::new(TsdbConfig::default()).snapshot_bytes();
        ok.push(0xFF);
        assert!(Tsdb::from_snapshot_bytes(&ok, TsdbConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_appends_panic() {
        let mut db = Tsdb::new(TsdbConfig::default());
        let k = key("m", "n");
        db.append(&k, 100, 1.0);
        db.append(&k, 50, 2.0);
    }
}
