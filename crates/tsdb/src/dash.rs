//! ASCII sparkline dashboards rendered from stored series — one
//! `node-N.dash.txt` per cluster node, entirely from the tsdb (no
//! live state), so the same snapshot always renders the same wall.

use crate::query::{rate, select};
use crate::store::Tsdb;
use std::fmt::Write as _;

/// Density ramp from quiet to loud.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `values` as a fixed-`width` sparkline: values are bucketed
/// into `width` columns (column mean; empty columns repeat the last
/// seen level) and scaled min..max onto the ASCII ramp.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    if values.is_empty() {
        return " ".repeat(width);
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    let mut out = String::with_capacity(width);
    for col in 0..width {
        // Columns partition the sample index range; every column maps
        // to at least one sample (repeating samples when width > len).
        let a = (col * values.len() / width).min(values.len() - 1);
        let b = (((col + 1) * values.len()).div_ceil(width)).clamp(a + 1, values.len());
        let slice = &values[a..b];
        let v = slice.iter().sum::<f64>() / slice.len() as f64;
        let level = if span > 0.0 {
            (((v - lo) / span) * (RAMP.len() - 1) as f64).round() as usize
        } else {
            RAMP.len() / 2
        };
        out.push(RAMP[level.min(RAMP.len() - 1)] as char);
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Renders the dashboard for one node: every non-bucket series
/// carrying `node="<node>"`, with counters (`*_total`) shown as
/// per-second rates and everything else shown raw. `width` is the
/// sparkline width in columns.
#[must_use]
pub fn render_node_dashboard(db: &Tsdb, node: &str, width: usize) -> String {
    let mut out = format!("== {node} · tsdb dashboard ==\n");
    let names: Vec<String> = {
        let mut names: Vec<String> = db
            .keys()
            .filter(|k| k.label("node") == Some(node) && !k.name.ends_with("_bucket"))
            .map(|k| k.name.clone())
            .collect();
        names.dedup();
        names
    };
    for name in names {
        for (key, samples) in select(db, &name, &[("node", node)], 0, u64::MAX) {
            if samples.is_empty() {
                continue;
            }
            let (kind, values): (&str, Vec<f64>) = if name.ends_with("_total") {
                ("rate/s", rate(&samples).into_iter().map(|(_, v)| v).collect())
            } else {
                ("value", samples.iter().map(|&(_, v)| v).collect())
            };
            let (lo, hi) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
            let (lo, hi) = if values.is_empty() { (0.0, 0.0) } else { (lo, hi) };
            let _ = writeln!(
                out,
                "{:<44} |{}| {} min {} max {}",
                key.render(),
                sparkline(&values, width),
                kind,
                fmt_value(lo),
                fmt_value(hi),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SeriesKey, TsdbConfig};

    #[test]
    fn sparkline_scales_and_pads() {
        assert_eq!(sparkline(&[], 8), "        ");
        assert_eq!(sparkline(&[5.0], 4).len(), 4);
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 10);
        assert_eq!(ramp, " .:-=+*#%@", "monotone data walks the whole ramp");
        // Constant series sit mid-ramp rather than at an extreme.
        let flat = sparkline(&[3.0; 6], 6);
        assert!(flat.chars().all(|c| c == RAMP[RAMP.len() / 2] as char));
        assert_eq!(sparkline(&[1.0, 2.0], 0), "");
    }

    #[test]
    fn dashboard_lists_only_the_nodes_series() {
        let mut db = Tsdb::new(TsdbConfig::default());
        let mine = SeriesKey::new("cluster.applies_total", &[("node", "node-0")]);
        let gauge = SeriesKey::new("cluster.replication_lag_bytes", &[("node", "node-0")]);
        let theirs = SeriesKey::new("cluster.applies_total", &[("node", "node-1")]);
        let bucket = SeriesKey::new("req_us_bucket", &[("node", "node-0"), ("le", "100")]);
        for i in 0..20u64 {
            db.append(&mine, i * 1_000_000, (i * 5) as f64);
            db.append(&gauge, i * 1_000_000, (i % 4) as f64 * 64.0);
            db.append(&theirs, i * 1_000_000, (i * 2) as f64);
            db.append(&bucket, i * 1_000_000, i as f64);
        }
        let dash = render_node_dashboard(&db, "node-0", 24);
        assert!(dash.contains("node-0 · tsdb dashboard"));
        assert!(dash.contains("cluster.applies_total"));
        assert!(dash.contains("rate/s"), "counter rendered as a rate");
        assert!(dash.contains("cluster.replication_lag_bytes"));
        assert!(!dash.contains("node-1"), "other nodes' series excluded");
        assert!(!dash.contains("_bucket"), "bucket series excluded");
        // Deterministic: same store renders the same text.
        assert_eq!(dash, render_node_dashboard(&db, "node-0", 24));
    }
}
