//! `bdb-tsdb` — embedded time-series database and cluster
//! observability plane for BigDataBench-RS.
//!
//! The paper treats internet-service workloads as *long-running*
//! services whose behavior must be judged over time — tails, overload
//! episodes, failover and recovery — not from point-in-time counter
//! dumps. This crate supplies the missing timeline:
//!
//! - [`gorilla`]: Gorilla-style block compression — delta-of-delta
//!   varint timestamps (virtual time) and XOR-compressed f64 values,
//!   bit-exact for every finite float.
//! - [`store`]: labeled series ([`SeriesKey`]) in append-only blocks
//!   with retention, 10:1 downsampling into summary blocks, and a
//!   byte-deterministic snapshot format ([`Tsdb::snapshot_bytes`]).
//! - [`scrape`]: a virtual-time [`Scraper`] sampling every registered
//!   [`bdb_telemetry::MetricsRegistry`] into series.
//! - [`query`]: range selects by label matchers with [`query::rate`],
//!   [`query::sum_by`], and [`query::histogram_quantile`] re-derived
//!   from scraped bucket series.
//! - [`rules`]: a recording-rule evaluator that replays the live
//!   [`bdb_obs::SloEngine`] burn-rate rules over stored series.
//! - [`dash`]: ASCII sparkline dashboards per node.
//! - [`timeline`]: Dapper-style write-chain reconstruction (route →
//!   WAL append → replica ship → quorum ack) from a flat span stream,
//!   rendered as a failover timeline.
//!
//! Everything is deterministic in virtual time: the same seed
//! produces byte-identical snapshots, dashboards, and timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dash;
pub mod gorilla;
pub mod query;
pub mod rules;
pub mod scrape;
pub mod store;
pub mod timeline;

pub use dash::{render_node_dashboard, sparkline};
pub use query::{histogram_quantile, rate, select, sum_by, value_at};
pub use rules::replay_burn_rules;
pub use scrape::Scraper;
pub use store::{Block, SeriesKey, Tsdb, TsdbConfig};
pub use timeline::{reconstruct_writes, render_timeline, TimelineEvent, WriteChain};
