//! Cross-node write-chain reconstruction and failover timelines.
//!
//! `bdb-cluster` emits each traced client write as a flat stream of
//! Dapper-style spans — `cluster.route` (root) → `cluster.wal_append`
//! → one `cluster.ship` per replica → `cluster.quorum_ack` — linked
//! only by `trace_id` / `span_id` / `parent_span_id` args (the same
//! convention `bdb-obs::chain` uses for service traces). This module
//! rebuilds the per-write causal chain from that flat stream and
//! renders it against the cluster's membership events as a plain-text
//! failover timeline.

use bdb_telemetry::{ArgValue, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A cluster membership/recovery event on the timeline (converted by
/// the caller from its event source, e.g. `bdb-cluster`'s event log).
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Virtual time, microseconds.
    pub at_us: u64,
    /// Event kind (`failover`, `node_down`, `rejoin`, ...).
    pub kind: String,
    /// Node involved.
    pub node: usize,
    /// Shard involved, or -1.
    pub shard: i64,
}

/// One reconstructed client write: its spans in causal order plus the
/// facts recovered from them.
#[derive(Debug, Clone)]
pub struct WriteChain {
    /// Trace id (16 lowercase hex chars).
    pub trace: String,
    /// Shard the write routed to (-1 if unrecoverable).
    pub shard: i64,
    /// Whether the write reached quorum.
    pub acked: bool,
    /// Spans sorted by span id (root first).
    pub spans: Vec<SpanEvent>,
    /// Whether the chain is causally complete: a root route span, a
    /// WAL append under it, every span's parent present and started
    /// no later than the child, and a quorum-ack span iff acked.
    pub complete: bool,
    /// Route-to-quorum latency recovered from the ack span, µs.
    pub quorum_ack_us: Option<u64>,
}

fn arg_int(span: &SpanEvent, key: &str) -> Option<i64> {
    span.args.iter().find_map(|(k, v)| match v {
        ArgValue::Int(i) if *k == key => Some(*i),
        _ => None,
    })
}

fn arg_str<'a>(span: &'a SpanEvent, key: &str) -> Option<&'a str> {
    span.args.iter().find_map(|(k, v)| match v {
        ArgValue::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Rebuilds every `cluster.*` write chain from a flat span stream
/// (non-cluster spans are ignored). Chains come back in trace-id
/// order, deterministically.
#[must_use]
pub fn reconstruct_writes(spans: &[SpanEvent]) -> Vec<WriteChain> {
    let mut by_trace: BTreeMap<String, Vec<SpanEvent>> = BTreeMap::new();
    for span in spans {
        if span.cat != "cluster" {
            continue;
        }
        if let Some(trace) = arg_str(span, "trace_id") {
            by_trace.entry(trace.to_owned()).or_default().push(span.clone());
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, mut spans)| {
            spans.sort_by_key(|s| arg_int(s, "span_id").unwrap_or(i64::MAX));
            let root = spans.iter().find(|s| s.name == "cluster.route");
            let shard = root.and_then(|s| arg_int(s, "shard")).unwrap_or(-1);
            let acked = root.and_then(|s| arg_int(s, "acked")) == Some(1);
            let ack_span = spans.iter().find(|s| s.name == "cluster.quorum_ack");
            let quorum_ack_us =
                ack_span.zip(root).map(|(ack, root)| ack.start_us.saturating_sub(root.start_us));
            let complete = chain_is_complete(&spans, acked);
            WriteChain { trace, shard, acked, spans, complete, quorum_ack_us }
        })
        .collect()
}

fn chain_is_complete(spans: &[SpanEvent], acked: bool) -> bool {
    let mut ids: BTreeMap<i64, u64> = BTreeMap::new();
    for span in spans {
        let Some(id) = arg_int(span, "span_id") else { return false };
        ids.insert(id, span.start_us);
    }
    let has = |name: &str| spans.iter().any(|s| s.name == name);
    if !has("cluster.route") || !has("cluster.wal_append") {
        return false;
    }
    if acked != has("cluster.quorum_ack") {
        return false;
    }
    // Causal links: every non-root parent exists and starts no later
    // than its child.
    spans.iter().all(|span| match arg_int(span, "parent_span_id") {
        None | Some(0) => span.name == "cluster.route",
        Some(parent) => ids.get(&parent).is_some_and(|&p_start| p_start <= span.start_us),
    })
}

/// Renders the failover timeline: cluster events interleaved
/// chronologically, then a per-chain write ledger and a completeness
/// summary. Pure function of its inputs.
#[must_use]
pub fn render_timeline(events: &[TimelineEvent], chains: &[WriteChain]) -> String {
    let mut out = String::from("== cluster timeline (reconstructed from trace stream) ==\n");
    let mut events: Vec<&TimelineEvent> = events.iter().collect();
    events.sort_by_key(|e| (e.at_us, e.node, e.shard));
    for e in &events {
        let _ = write!(out, "{:>12}us  {:<14} node-{}", e.at_us, e.kind, e.node);
        if e.shard >= 0 {
            let _ = write!(out, " shard {}", e.shard);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "\n-- traced writes: {} --", chains.len());
    for c in chains {
        let hops: Vec<String> = c
            .spans
            .iter()
            .map(|s| {
                let node = arg_int(s, "node").map_or(String::new(), |n| format!("@n{n}"));
                let lost = if arg_str(s, "outcome") == Some("lost") { "!" } else { "" };
                format!("{}{node}{lost}", s.name.trim_start_matches("cluster."))
            })
            .collect();
        let _ = writeln!(
            out,
            "trace {}  shard {}  {}  {}  [{}]",
            c.trace,
            c.shard,
            if c.acked { "acked" } else { "UNACKED" },
            c.quorum_ack_us.map_or("-".to_owned(), |us| format!("{us}us")),
            hops.join(" -> "),
        );
    }
    let complete = chains.iter().filter(|c| c.complete).count();
    let _ = writeln!(out, "\n{complete} of {} chains causally complete", chains.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &'static str,
        start_us: u64,
        trace: &str,
        span_id: i64,
        parent: i64,
        extra: &[(&'static str, i64)],
    ) -> SpanEvent {
        let mut args = vec![
            ("trace_id", ArgValue::Str(trace.to_owned())),
            ("span_id", ArgValue::Int(span_id)),
        ];
        if parent != 0 {
            args.push(("parent_span_id", ArgValue::Int(parent)));
        }
        for &(k, v) in extra {
            args.push((k, ArgValue::Int(v)));
        }
        SpanEvent { name, cat: "cluster", start_us, dur_us: Some(10), tid: 0, args }
    }

    fn full_chain(trace: &str, t0: u64) -> Vec<SpanEvent> {
        vec![
            span("cluster.route", t0, trace, 1, 0, &[("shard", 3), ("acked", 1)]),
            span("cluster.wal_append", t0 + 10, trace, 2, 1, &[("node", 1)]),
            span("cluster.ship", t0 + 40, trace, 3, 2, &[("node", 2)]),
            span("cluster.ship", t0 + 70, trace, 4, 2, &[("node", 3)]),
            span("cluster.quorum_ack", t0 + 60, trace, 5, 1, &[]),
        ]
    }

    #[test]
    fn reconstructs_a_complete_acked_chain() {
        // Interleave two writes to prove grouping by trace id works on
        // a flat, time-ordered stream.
        let mut stream = full_chain("00000000000000aa", 100);
        stream.extend(full_chain("00000000000000bb", 130));
        stream.sort_by_key(|s| s.start_us);

        let chains = reconstruct_writes(&stream);
        assert_eq!(chains.len(), 2);
        for c in &chains {
            assert!(c.complete, "chain {} must be causally complete", c.trace);
            assert!(c.acked);
            assert_eq!(c.shard, 3);
            assert_eq!(c.quorum_ack_us, Some(60));
            assert_eq!(c.spans.len(), 5);
            assert_eq!(c.spans[0].name, "cluster.route");
        }
        assert_eq!(chains[0].trace, "00000000000000aa", "trace order is deterministic");
    }

    #[test]
    fn broken_chains_are_flagged_not_dropped() {
        // Missing WAL append: incomplete.
        let mut spans = full_chain("00000000000000cc", 0);
        spans.remove(1);
        // wal_append's children now dangle on parent 2.
        let chains = reconstruct_writes(&spans);
        assert_eq!(chains.len(), 1);
        assert!(!chains[0].complete);

        // Acked chain without a quorum-ack span: incomplete.
        let mut spans = full_chain("00000000000000dd", 0);
        spans.retain(|s| s.name != "cluster.quorum_ack");
        assert!(!reconstruct_writes(&spans)[0].complete);

        // Unacked chain without an ack span: complete as-is.
        let spans = vec![
            span("cluster.route", 0, "00000000000000ee", 1, 0, &[("shard", 1), ("acked", 0)]),
            span("cluster.wal_append", 10, "00000000000000ee", 2, 1, &[("node", 0)]),
        ];
        let c = &reconstruct_writes(&spans)[0];
        assert!(c.complete);
        assert!(!c.acked);
        assert_eq!(c.quorum_ack_us, None);
    }

    #[test]
    fn non_cluster_spans_are_ignored() {
        let mut spans = full_chain("00000000000000ff", 0);
        spans.push(SpanEvent {
            name: "serve",
            cat: "serving",
            start_us: 5,
            dur_us: Some(1),
            tid: 0,
            args: vec![("trace_id", ArgValue::Str("00000000000000ff".into()))],
        });
        let chains = reconstruct_writes(&spans);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].spans.len(), 5);
    }

    #[test]
    fn timeline_renders_events_and_chains_deterministically() {
        let events = vec![
            TimelineEvent { at_us: 5_000, kind: "node_down".into(), node: 2, shard: -1 },
            TimelineEvent { at_us: 5_500, kind: "failover".into(), node: 3, shard: 4 },
            TimelineEvent { at_us: 1_000, kind: "rejoin".into(), node: 1, shard: -1 },
        ];
        let chains = reconstruct_writes(&full_chain("0000000000000001", 100));
        let text = render_timeline(&events, &chains);
        assert!(text.contains("node_down"));
        assert!(text.contains("failover"));
        assert!(text.contains("shard 4"));
        assert!(text.contains("trace 0000000000000001"));
        assert!(text.contains("wal_append@n1"), "hop rendering includes nodes");
        assert!(text.contains("1 of 1 chains causally complete"));
        let rejoin = text.find("rejoin").unwrap();
        let down = text.find("node_down").unwrap();
        assert!(rejoin < down, "events sort by time");
        assert_eq!(text, render_timeline(&events, &chains));
    }
}
