//! Microbenchmarks for the vectorized columnar query kernels.
//!
//! Where the suite-level workloads measure the three fixed paper
//! queries, these sweeps isolate each kernel and vary the one parameter
//! that dominates its behaviour:
//!
//! * **filter** — predicate selectivity (how many rows survive and pay
//!   for late materialization);
//! * **aggregation** — group cardinality (hash-table footprint from a
//!   handful of hot groups up to one group per row);
//! * **join** — build/probe ratio (a small dimension table probed by a
//!   large fact table vs. the reverse);
//! * **scan** — column count (pure streaming bandwidth of the scan
//!   kernel with a pass-everything predicate).
//!
//! All sweeps run the real [`bdb_sql::kernel`] traced paths on a fresh
//! [`SimProbe`] per point, with the warm/reset/measure protocol the
//! suite uses, so points are directly comparable to workload-level
//! characterizations.

use bdb_archsim::{CharacterizationReport, MachineConfig, SimProbe};
use bdb_sql::expr::{col, lit};
use bdb_sql::kernel;
use bdb_sql::{Aggregation, ColumnType, ColumnarTable, Schema, SqlTraceModel, Table, Value};

/// One sweep point: the parameter value and the measured report.
#[derive(Debug)]
pub struct SweepPoint<T> {
    /// Swept parameter value (selectivity, cardinality, ...).
    pub param: T,
    /// Characterization of the kernel at this parameter.
    pub report: CharacterizationReport,
}

/// Deterministic table: `v` cycles `0..1000`, `g` cycles `0..groups`.
fn synth_table(name: &str, rows: usize, groups: usize) -> ColumnarTable {
    let mut t = Table::new(
        name,
        Schema::new(&[("id", ColumnType::Int), ("g", ColumnType::Int), ("v", ColumnType::Float)]),
    );
    let mut h: u64 = 0x9E37_79B9;
    for i in 0..rows {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Int((h % groups.max(1) as u64) as i64),
            Value::Float((h >> 32) as f64 % 1000.0),
        ])
        .expect("schema");
    }
    ColumnarTable::from_table(&t)
}

/// Warm/reset/measure protocol around one traced kernel invocation.
fn measure(
    machine: MachineConfig,
    tables: &[&ColumnarTable],
    run: impl Fn(&mut SimProbe, &mut Option<SqlTraceModel>),
) -> CharacterizationReport {
    let mut probe = SimProbe::new(machine);
    let mut trace = Some(SqlTraceModel::new());
    for t in tables {
        trace.as_mut().expect("set").register_columnar(t);
    }
    trace.as_mut().expect("set").warm(&mut probe);
    run(&mut probe, &mut trace);
    probe.reset_stats();
    run(&mut probe, &mut trace);
    probe.finish()
}

/// Filter kernel vs. predicate selectivity: `v < 1000 * s` passes a
/// fraction `s` of rows, so instruction count grows with `s` through
/// the late-materialization gathers while scan traffic stays flat.
pub fn filter_selectivity_sweep(
    rows: usize,
    selectivities: &[f64],
    machine: MachineConfig,
) -> Vec<SweepPoint<f64>> {
    let t = synth_table("filter_sweep", rows, 64);
    selectivities
        .iter()
        .map(|&s| SweepPoint {
            param: s,
            report: measure(machine.clone(), &[&t], |p, tr| {
                kernel::select_traced(&t, &col("v").lt(lit(1000.0 * s)), &["id"], p, tr)
                    .expect("query");
            }),
        })
        .collect()
}

/// Aggregation kernel vs. group cardinality: few groups keep the hash
/// table cache-resident; one group per row scatters it.
pub fn agg_cardinality_sweep(
    rows: usize,
    cardinalities: &[usize],
    machine: MachineConfig,
) -> Vec<SweepPoint<usize>> {
    cardinalities
        .iter()
        .map(|&groups| {
            let t = synth_table("agg_sweep", rows, groups);
            SweepPoint {
                param: groups,
                report: measure(machine.clone(), &[&t], |p, tr| {
                    kernel::aggregate_traced(
                        &t,
                        "g",
                        &[Aggregation::count(), Aggregation::sum("v")],
                        p,
                        tr,
                    )
                    .expect("query");
                }),
            }
        })
        .collect()
}

/// Join kernel vs. build/probe split: `build_fraction` of `rows` go to
/// the build side, the rest probe it (keys overlap by construction).
pub fn join_ratio_sweep(
    rows: usize,
    build_fractions: &[f64],
    machine: MachineConfig,
) -> Vec<SweepPoint<f64>> {
    build_fractions
        .iter()
        .map(|&f| {
            let build_rows = ((rows as f64 * f) as usize).max(1);
            let probe_rows = (rows - build_rows.min(rows)).max(1);
            let keys = build_rows.max(probe_rows) / 4;
            let build = synth_table("join_build", build_rows, keys.max(1));
            let probe = synth_table("join_probe", probe_rows, keys.max(1));
            SweepPoint {
                param: f,
                report: measure(machine.clone(), &[&build, &probe], |p, tr| {
                    kernel::hash_join_traced(&build, "g", &probe, "g", p, tr).expect("join");
                }),
            }
        })
        .collect()
}

/// Scan kernel vs. projected column count with a pass-everything
/// predicate: pure streaming bandwidth.
pub fn scan_width_sweep(
    rows: usize,
    widths: &[usize],
    machine: MachineConfig,
) -> Vec<SweepPoint<usize>> {
    let t = synth_table("scan_sweep", rows, 64);
    let all_cols = ["id", "g", "v"];
    widths
        .iter()
        .map(|&w| {
            let proj = &all_cols[..w.clamp(1, all_cols.len())];
            SweepPoint {
                param: w,
                report: measure(machine.clone(), &[&t], |p, tr| {
                    kernel::select_traced(&t, &col("id").ge(lit(0)), proj, p, tr).expect("query");
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MACHINE: fn() -> MachineConfig = MachineConfig::xeon_e5645;

    #[test]
    fn selectivity_raises_instructions_not_scan_traffic() {
        let pts = filter_selectivity_sweep(8_192, &[0.05, 0.95], MACHINE());
        assert!(
            pts[1].report.instructions() > pts[0].report.instructions(),
            "gathers should make the 95% point costlier: {} vs {}",
            pts[1].report.instructions(),
            pts[0].report.instructions()
        );
    }

    #[test]
    fn group_cardinality_sweep_runs_every_point() {
        let pts = agg_cardinality_sweep(4_096, &[4, 256, 4_096], MACHINE());
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.report.instructions() > 0);
            assert!(p.report.mix.loads > 0);
        }
    }

    #[test]
    fn join_ratio_extremes_both_run() {
        let pts = join_ratio_sweep(8_192, &[0.1, 0.5, 0.9], MACHINE());
        assert_eq!(pts.len(), 3);
        // A bigger build side means more hash-insert stores.
        assert!(pts[2].report.mix.stores > pts[0].report.mix.stores);
    }

    #[test]
    fn wider_scans_read_more() {
        let pts = scan_width_sweep(8_192, &[1, 3], MACHINE());
        assert!(pts[1].report.mix.loads > pts[0].report.mix.loads);
    }
}
