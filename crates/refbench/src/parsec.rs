//! PARSEC-like kernels: the multithreaded desktop/server programs the
//! paper runs (PARSEC 3.0, native inputs). We implement the hot loops
//! of four representative members covering the suite's spectrum from
//! FP-dense (blackscholes, fluidanimate) to pointer-chasing (canneal)
//! to clustering (streamcluster).

use crate::{RefKernel, RefSuite};
use bdb_archsim::layout::{splitmix64, CodeRegion, HEAP_BASE};
use bdb_archsim::Probe;

const AREA: u64 = 1 << 32;

fn code(id: u64, insts: u32) -> CodeRegion {
    CodeRegion::new(0x0048_0000 + id * 0x2000, 1536, insts)
}

fn base(id: u64) -> u64 {
    HEAP_BASE + (16 + id) * AREA
}

/// The four PARSEC-like kernels.
pub fn kernels() -> Vec<RefKernel> {
    vec![
        RefKernel { name: "blackscholes", suite: RefSuite::Parsec, run: blackscholes },
        RefKernel { name: "streamcluster", suite: RefSuite::Parsec, run: streamcluster },
        RefKernel { name: "canneal", suite: RefSuite::Parsec, run: canneal },
        RefKernel { name: "fluidanimate", suite: RefSuite::Parsec, run: fluidanimate },
    ]
}

/// Option pricing: tiny working set, enormous FP density per datum.
pub fn blackscholes(scale: usize, probe: &mut dyn Probe) -> u64 {
    let options = scale.clamp(256, 1 << 18);
    let data = base(0);
    let body = code(0, 30);
    let mut acc = 0u64;
    for i in 0..options {
        if i % 256 == 0 {
            probe.call(body);
        }
        probe.load(data + (i * 40) as u64, 40); // 5 f64 inputs
                                                // CNDF evaluation: ~40 FP ops per option in the real kernel,
                                                // with comparable control/indexing integer work around it.
        probe.fp_ops(40);
        probe.int_ops(44);
        probe.store(data + (options * 40 + i * 8) as u64, 8);
        acc = acc.wrapping_add(splitmix64(i as u64) & 0xFF);
    }
    acc
}

/// Online clustering: distance evaluations point × center.
pub fn streamcluster(scale: usize, probe: &mut dyn Probe) -> u64 {
    let points = (scale / 4).clamp(256, 1 << 16);
    let dim = 16usize;
    let centers = 32usize;
    let pts = base(1);
    let ctr = base(1) + (points * dim * 8) as u64;
    let body = code(1, 18);
    let mut best_sum = 0u64;
    for p in 0..points {
        if p % 128 == 0 {
            probe.call(body);
        }
        probe.load(pts + (p * dim * 8) as u64, (dim * 8) as u32);
        let mut best = u64::MAX;
        for c in 0..centers {
            probe.load(ctr + (c * dim * 8) as u64, (dim * 8) as u32);
            probe.fp_ops((3 * dim) as u64); // sub, mul, add per dim
            probe.int_ops((2 * dim) as u64); // loop + index arithmetic
            let d = splitmix64((p * centers + c) as u64);
            probe.branch(d < best);
            best = best.min(d);
        }
        best_sum = best_sum.wrapping_add(best);
    }
    best_sum
}

/// Simulated annealing over a netlist: random swaps, pointer chasing —
/// PARSEC's worst-locality member.
pub fn canneal(scale: usize, probe: &mut dyn Probe) -> u64 {
    let elements = (scale * 2).clamp(1 << 12, 1 << 17);
    let netlist = base(2);
    let body = code(2, 22);
    let swaps = (scale / 4).clamp(512, 1 << 16);
    let mut state = 0xDEAD_BEEFu64;
    let mut accepted = 0u64;
    for s in 0..swaps {
        if s % 256 == 0 {
            probe.call(body);
        }
        state = splitmix64(state);
        let a = state % elements as u64;
        state = splitmix64(state);
        let b = state % elements as u64;
        // Read both elements' neighbour lists (pointer chase).
        probe.load(netlist + a * 64, 64);
        probe.load(netlist + b * 64, 64);
        probe.fp_ops(6); // delta-cost arithmetic
        probe.int_ops(10);
        let accept = state & 3 != 0;
        probe.branch(accept);
        if accept {
            probe.store(netlist + a * 64, 16);
            probe.store(netlist + b * 64, 16);
            accepted += 1;
        }
    }
    accepted
}

/// Particle fluid simulation: neighbour-grid traversal, FP forces.
pub fn fluidanimate(scale: usize, probe: &mut dyn Probe) -> u64 {
    let particles = (scale / 2).clamp(512, 1 << 17);
    let grid = base(3);
    let body = code(3, 26);
    let mut acc = 0u64;
    for p in 0..particles {
        if p % 128 == 0 {
            probe.call(body);
        }
        probe.load(grid + (p * 48) as u64, 48); // position + velocity
                                                // 8 neighbour cells, ~4 particles each.
        for n in 0..8u64 {
            let cell = splitmix64(p as u64 ^ (n << 40)) % particles as u64;
            probe.load(grid + cell * 48, 48);
            probe.fp_ops(24); // pairwise force terms
            probe.int_ops(18); // cell indexing / neighbor bookkeeping
        }
        probe.store(grid + (p * 48) as u64, 48);
        acc = acc.wrapping_add(p as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::CountingProbe;

    #[test]
    fn suite_mixes_fp_and_memory() {
        let mut p = CountingProbe::default();
        for k in kernels() {
            (k.run)(8192, &mut p);
        }
        let m = p.mix();
        assert!(m.fp_ops > 0 && m.loads > 0);
        // Paper: PARSEC int:fp ratio ≈ 1.4 — same order of magnitude.
        let ratio = m.int_to_fp_ratio();
        assert!(ratio < 10.0, "PARSEC-like ratio should be lowish: {ratio}");
    }

    #[test]
    fn canneal_scatters_more_than_blackscholes() {
        use bdb_archsim::{MachineConfig, SimProbe};
        let mut p1 = SimProbe::new(MachineConfig::xeon_e5645());
        canneal(1 << 14, &mut p1);
        let r1 = p1.finish();
        let mut p2 = SimProbe::new(MachineConfig::xeon_e5645());
        blackscholes(1 << 14, &mut p2);
        let r2 = p2.finish();
        let m1 = r1.l2_mpki();
        let m2 = r2.l2_mpki();
        assert!(m1 > m2, "canneal {m1} vs blackscholes {m2}");
    }

    #[test]
    fn kernels_deterministic() {
        for k in kernels() {
            let mut a = CountingProbe::default();
            let mut b = CountingProbe::default();
            assert_eq!((k.run)(4096, &mut a), (k.run)(4096, &mut b), "{}", k.name);
        }
    }
}
