//! Instrumented traditional-benchmark kernels: the comparison points of
//! the paper's characterization.
//!
//! Figures 4–6 of the paper compare BigDataBench against **HPCC 1.4**
//! (HPL, STREAM, PTRANS, RandomAccess, DGEMM, FFT, COMM), **PARSEC 3.0**
//! and **SPEC CPU2006** (SPECINT / SPECFP averages). To place our
//! simulated workloads on the same axes we re-implement each suite's
//! characteristic kernels under the same [`bdb_archsim::Probe`]
//! instrumentation model:
//!
//! * compute kernels emit genuine FP/integer operation counts and
//!   genuine data addresses (blocked matmul really blocks, RandomAccess
//!   really scatters);
//! * code footprints are *small* — one hot loop body per kernel —
//!   which is exactly why the traditional suites show near-zero L1I
//!   MPKI next to the big-data workloads' deep stacks.
//!
//! # Example
//!
//! ```
//! use bdb_refbench::{RefSuite, kernels_for, characterize_suite};
//! use bdb_archsim::MachineConfig;
//!
//! let kernels = kernels_for(RefSuite::Hpcc);
//! assert_eq!(kernels.len(), 7);
//! let report = characterize_suite(RefSuite::SpecInt, 1 << 14, MachineConfig::xeon_e5645());
//! assert!(report.mix.fp_ops < report.mix.int_ops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hpcc;
pub mod parsec;
pub mod spec;
pub mod sqlkern;

use bdb_archsim::{CharacterizationReport, MachineConfig, Probe, SimProbe};

/// Which traditional suite a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefSuite {
    /// HPCC 1.4 (HPC kernels).
    Hpcc,
    /// PARSEC 3.0 (multithreaded desktop/server kernels).
    Parsec,
    /// SPEC CPU2006 integer benchmarks.
    SpecInt,
    /// SPEC CPU2006 floating-point benchmarks.
    SpecFp,
}

impl RefSuite {
    /// All four suites.
    pub const ALL: [RefSuite; 4] =
        [RefSuite::Hpcc, RefSuite::Parsec, RefSuite::SpecInt, RefSuite::SpecFp];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RefSuite::Hpcc => "Avg_HPCC",
            RefSuite::Parsec => "Avg_Parsec",
            RefSuite::SpecInt => "SPECINT",
            RefSuite::SpecFp => "SPECFP",
        }
    }
}

/// One instrumented kernel.
pub struct RefKernel {
    /// Kernel name (e.g. `"DGEMM"`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: RefSuite,
    /// Runs the kernel at `scale` (elements / options / bytes — kernel
    /// specific), reporting events to `probe`. Returns a checksum so the
    /// work cannot be optimized away.
    pub run: fn(scale: usize, probe: &mut dyn Probe) -> u64,
}

impl std::fmt::Debug for RefKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RefKernel({} / {:?})", self.name, self.suite)
    }
}

/// The kernels of one suite.
pub fn kernels_for(suite: RefSuite) -> Vec<RefKernel> {
    match suite {
        RefSuite::Hpcc => hpcc::kernels(),
        RefSuite::Parsec => parsec::kernels(),
        RefSuite::SpecInt => spec::int_kernels(),
        RefSuite::SpecFp => spec::fp_kernels(),
    }
}

/// Runs every kernel of `suite` at `scale` on a fresh machine and
/// returns the merged characterization report (the per-suite averages
/// the paper plots).
pub fn characterize_suite(
    suite: RefSuite,
    scale: usize,
    machine: MachineConfig,
) -> CharacterizationReport {
    let mut probe = SimProbe::new(machine);
    // Ramp-up protocol: run everything once to warm caches, measure the
    // second pass.
    for kernel in kernels_for(suite) {
        (kernel.run)(scale, &mut probe);
    }
    probe.reset_stats();
    for kernel in kernels_for(suite) {
        (kernel.run)(scale, &mut probe);
    }
    probe.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_has_kernels() {
        for suite in RefSuite::ALL {
            assert!(!kernels_for(suite).is_empty(), "{suite:?}");
        }
    }

    #[test]
    fn suite_labels_match_paper() {
        assert_eq!(RefSuite::Hpcc.label(), "Avg_HPCC");
        assert_eq!(RefSuite::SpecFp.label(), "SPECFP");
    }

    #[test]
    fn specint_is_integer_dominated_specfp_is_not() {
        let int = characterize_suite(RefSuite::SpecInt, 1 << 14, MachineConfig::xeon_e5645());
        let fp = characterize_suite(RefSuite::SpecFp, 1 << 14, MachineConfig::xeon_e5645());
        assert!(int.mix.int_to_fp_ratio() > 50.0, "SPECINT ratio {}", int.mix.int_to_fp_ratio());
        assert!(fp.mix.int_to_fp_ratio() < 3.0, "SPECFP ratio {}", fp.mix.int_to_fp_ratio());
    }

    #[test]
    fn traditional_kernels_have_tiny_instruction_footprints() {
        for suite in RefSuite::ALL {
            let r = characterize_suite(suite, 1 << 14, MachineConfig::xeon_e5645());
            assert!(
                r.l1i_mpki() < 1.0,
                "{suite:?} L1I MPKI should be near zero, got {}",
                r.l1i_mpki()
            );
        }
    }

    #[test]
    fn hpcc_is_fp_intense() {
        // Large enough that RandomAccess/STREAM exceed the LLC and
        // produce DRAM traffic; below that everything cache-resides and
        // intensity is undefined (0/0).
        let r = characterize_suite(RefSuite::Hpcc, 1 << 20, MachineConfig::xeon_e5645());
        assert!(r.mix.fp_ops > 0);
        assert!(r.dram_bytes > 0, "streaming kernels must reach DRAM");
        assert!(r.fp_intensity() > 0.01, "HPCC fp intensity {}", r.fp_intensity());
    }
}
