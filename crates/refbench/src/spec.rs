//! SPEC CPU2006-like kernels, split into the integer and floating-point
//! groups the paper averages (SPECINT / SPECFP, first reference input).

use crate::{RefKernel, RefSuite};
use bdb_archsim::layout::{splitmix64, CodeRegion, HEAP_BASE};
use bdb_archsim::Probe;

const AREA: u64 = 1 << 32;

fn code(id: u64, insts: u32) -> CodeRegion {
    CodeRegion::new(0x0050_0000 + id * 0x2000, 2048, insts)
}

fn base(id: u64) -> u64 {
    HEAP_BASE + (32 + id) * AREA
}

/// SPECINT-like kernels (compression, combinatorial search, pointer
/// churn — bzip2/astar/gcc flavoured).
pub fn int_kernels() -> Vec<RefKernel> {
    vec![
        RefKernel { name: "compress", suite: RefSuite::SpecInt, run: compress },
        RefKernel { name: "pathfind", suite: RefSuite::SpecInt, run: pathfind },
        RefKernel { name: "treewalk", suite: RefSuite::SpecInt, run: treewalk },
    ]
}

/// SPECFP-like kernels (stencil, n-body, linear algebra — bwaves/
/// namd/lbm flavoured).
pub fn fp_kernels() -> Vec<RefKernel> {
    vec![
        RefKernel { name: "stencil", suite: RefSuite::SpecFp, run: stencil },
        RefKernel { name: "nbody", suite: RefSuite::SpecFp, run: nbody },
        RefKernel { name: "solver", suite: RefSuite::SpecFp, run: solver },
    ]
}

/// LZ-style compression modeling: hash-chain match search, all integer.
pub fn compress(scale: usize, probe: &mut dyn Probe) -> u64 {
    let input = scale.clamp(4096, 1 << 22);
    let data = base(0);
    let hash_table = base(0) + (1 << 23);
    let hash_entries = 1u64 << 13; // 64 KiB chain heads, as bzip2 sizes them
    let body = code(0, 28);
    let mut h = 0u64;
    let mut matches = 0u64;
    let mut i = 0usize;
    while i < input {
        if i.is_multiple_of(512) {
            probe.call(body);
        }
        probe.load(data + i as u64, 4);
        h = splitmix64(h ^ i as u64);
        probe.int_ops(12); // rolling hash + compare
        if i.is_multiple_of(128) {
            probe.fp_ops(1); // compression-ratio bookkeeping
        }
        probe.load(hash_table + (h % hash_entries) * 8, 8);
        let hit = h & 7 == 0;
        probe.branch(hit);
        if hit {
            // Match extension: sequential compare loop.
            let len = 4 + (h % 28) as usize;
            probe.load(data + (i as u64).saturating_sub(h % 4096), len as u32);
            probe.int_ops(len as u64);
            matches += 1;
            i += len;
        } else {
            probe.store(hash_table + (h % hash_entries) * 8, 8);
            i += 1;
        }
    }
    matches
}

/// Grid path search (astar-like): priority-driven neighbour expansion,
/// integer arithmetic and branchy control flow.
pub fn pathfind(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = ((scale as f64).sqrt() as usize).clamp(64, 1024);
    let grid = base(1);
    let body = code(1, 24);
    let mut frontier = vec![(0u32, 0u32)];
    let mut expanded = 0u64;
    let mut state = 0x1234u64;
    while let Some((x, y)) = frontier.pop() {
        expanded += 1;
        if expanded > scale as u64 {
            break;
        }
        if expanded.is_multiple_of(128) {
            probe.call(body);
        }
        probe.load(grid + ((y as usize * n + x as usize) * 4) as u64, 4);
        probe.int_ops(14); // heuristic + comparisons
        if expanded.is_multiple_of(8) {
            probe.fp_ops(1); // distance heuristic
        }
        for (dx, dy) in [(1i32, 0i32), (0, 1), (-1, 0), (0, -1)] {
            let nx = x as i32 + dx;
            let ny = y as i32 + dy;
            let valid = nx >= 0 && ny >= 0 && (nx as usize) < n && (ny as usize) < n;
            probe.branch(valid);
            if valid {
                state = splitmix64(state);
                if state & 3 == 0 {
                    probe.store(grid + ((ny as usize * n + nx as usize) * 4) as u64, 4);
                    frontier.push((nx as u32, ny as u32));
                }
            }
        }
        if frontier.len() > 4096 {
            frontier.truncate(1024);
        }
    }
    expanded
}

/// Balanced-tree insert/lookup churn (gcc/perlbench symbol tables).
///
/// The tree is laid out level by level: upper levels are tiny and stay
/// cache-resident, so only the deepest level or two actually miss —
/// matching the locality real symbol tables show.
pub fn treewalk(scale: usize, probe: &mut dyn Probe) -> u64 {
    let nodes = (scale / 4).clamp(1 << 10, 1 << 18) as u64;
    let pool = base(2);
    let body = code(2, 20);
    let ops = scale.clamp(1024, 1 << 18);
    // 16-ary B-tree: depth = log16(nodes).
    let depth = ((nodes as f64).log2() / 4.0).ceil().max(1.0) as u32;
    let mut found = 0u64;
    let mut key = 99u64;
    for op in 0..ops {
        if op % 256 == 0 {
            probe.call(body);
        }
        key = splitmix64(key);
        let mut level_base = 0u64;
        let mut level_size = 1u64;
        for level in 0..=depth {
            let idx = splitmix64(key ^ (level as u64) << 32) % level_size;
            probe.load(pool + (level_base + idx) * 48, 48);
            probe.int_ops(18); // key comparisons within the node
            probe.branch(idx & 1 == 0);
            level_base += level_size;
            level_size = (level_size * 16).min(nodes);
        }
        if key & 1 == 0 {
            probe.store(pool + (level_base % nodes) * 48, 48);
        } else {
            found += 1;
        }
    }
    found
}

/// 7-point 3D stencil sweep: the classic SPECFP memory/FP pattern.
pub fn stencil(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = ((scale as f64).cbrt() as usize).clamp(16, 80);
    let (src, dst) = (base(3), base(3) + (n * n * n * 8) as u64);
    let body = code(3, 16);
    for k in 1..n - 1 {
        probe.call(body);
        for j in 1..n - 1 {
            for i in (1..n - 1).step_by(2) {
                let idx = |a: usize, b: usize, c: usize| ((a * n + b) * n + c) * 8;
                probe.load(src + idx(k, j, i) as u64, 16);
                probe.load(src + idx(k - 1, j, i) as u64, 8);
                probe.load(src + idx(k + 1, j, i) as u64, 8);
                probe.load(src + idx(k, j - 1, i) as u64, 8);
                probe.load(src + idx(k, j + 1, i) as u64, 8);
                probe.fp_ops(16);
                probe.int_ops(10); // 3D index arithmetic
                probe.store(dst + idx(k, j, i) as u64, 16);
            }
        }
    }
    (n * n * n) as u64
}

/// All-pairs gravitational forces over a tile — FP-dense, cache-resident.
pub fn nbody(scale: usize, probe: &mut dyn Probe) -> u64 {
    let bodies = ((scale as f64).sqrt() as usize).clamp(64, 1024);
    let state = base(4);
    let body_code = code(4, 18);
    for i in 0..bodies {
        if i % 64 == 0 {
            probe.call(body_code);
        }
        probe.load(state + (i * 32) as u64, 32);
        for j in 0..bodies {
            if j % 8 == 0 {
                probe.load(state + (j * 32) as u64, 32);
            }
            probe.fp_ops(20); // distance + force accumulation
            probe.int_ops(12); // pair indexing
        }
        probe.store(state + (i * 32) as u64, 32);
    }
    bodies as u64
}

/// Gauss–Seidel-ish banded solver sweeps.
pub fn solver(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = (scale / 8).clamp(1024, 1 << 17);
    let (a, x) = (base(5), base(5) + (n * 40) as u64);
    let body = code(5, 14);
    for sweep in 0..4 {
        probe.call(body);
        for i in 2..n - 2 {
            if i.is_multiple_of(512) {
                probe.call(body);
            }
            probe.load(a + (i * 40) as u64, 40); // 5-band row
            probe.load(x + ((i - 2) * 8) as u64, 40); // x[i-2..=i+2]
            probe.fp_ops(11);
            probe.int_ops(8); // band indexing
            probe.store(x + (i * 8) as u64, 8);
        }
        let _ = sweep;
    }
    n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::CountingProbe;

    #[test]
    fn int_kernels_are_integer_dominated() {
        for k in int_kernels() {
            let mut p = CountingProbe::default();
            (k.run)(8192, &mut p);
            // SPECINT executes a sliver of FP (the paper measures a
            // 409:1 int:fp ratio, not infinity).
            assert!(
                p.mix().int_to_fp_ratio() > 100.0,
                "{} ratio {}",
                k.name,
                p.mix().int_to_fp_ratio()
            );
            assert!(p.mix().int_ops > 0);
        }
    }

    #[test]
    fn fp_kernels_are_fp_heavy() {
        for k in fp_kernels() {
            let mut p = CountingProbe::default();
            (k.run)(8192, &mut p);
            // FP-heavy: a low int:fp ratio like the paper's SPECFP 0.67.
            assert!(
                p.mix().int_to_fp_ratio() < 2.0,
                "{}: ratio {}",
                k.name,
                p.mix().int_to_fp_ratio()
            );
        }
    }

    #[test]
    fn compress_makes_progress() {
        let mut p = CountingProbe::default();
        let matches = compress(1 << 16, &mut p);
        assert!(matches > 0);
        assert!(p.mix().branches > 0, "branchy control flow");
    }

    #[test]
    fn treewalk_depth_scales_with_pool() {
        let mut small = CountingProbe::default();
        treewalk(2048, &mut small);
        let mut large = CountingProbe::default();
        treewalk(1 << 16, &mut large);
        let per_op_small = small.mix().loads as f64 / 2048.0;
        let per_op_large = large.mix().loads as f64 / (1 << 16) as f64;
        assert!(per_op_large > per_op_small, "deeper trees, more loads/op");
    }

    #[test]
    fn deterministic() {
        for k in int_kernels().into_iter().chain(fp_kernels()) {
            let mut a = CountingProbe::default();
            let mut b = CountingProbe::default();
            assert_eq!((k.run)(4096, &mut a), (k.run)(4096, &mut b), "{}", k.name);
        }
    }
}
