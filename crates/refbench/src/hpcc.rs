//! HPCC 1.4 kernels: HPL, DGEMM, STREAM, PTRANS, RandomAccess, FFT,
//! COMM (the seven benchmarks the paper runs, Section 6.1.3).

use crate::{RefKernel, RefSuite};
use bdb_archsim::layout::{splitmix64, CodeRegion, HEAP_BASE};
use bdb_archsim::Probe;

/// Distinct heap areas per kernel so working sets do not alias.
const AREA: u64 = 1 << 32;

fn code(id: u64, insts: u32) -> CodeRegion {
    // One small hot-loop body per kernel: compute kernels fit in L1I.
    CodeRegion::new(0x0040_0000 + id * 0x2000, 1024, insts)
}

fn base(id: u64) -> u64 {
    HEAP_BASE + id * AREA
}

/// The seven HPCC kernels.
pub fn kernels() -> Vec<RefKernel> {
    vec![
        RefKernel { name: "HPL", suite: RefSuite::Hpcc, run: hpl },
        RefKernel { name: "DGEMM", suite: RefSuite::Hpcc, run: dgemm },
        RefKernel { name: "STREAM", suite: RefSuite::Hpcc, run: stream },
        RefKernel { name: "PTRANS", suite: RefSuite::Hpcc, run: ptrans },
        RefKernel { name: "RandomAccess", suite: RefSuite::Hpcc, run: random_access },
        RefKernel { name: "FFT", suite: RefSuite::Hpcc, run: fft },
        RefKernel { name: "COMM", suite: RefSuite::Hpcc, run: comm },
    ]
}

/// LU factorization inner loops: rank-1 updates over a dense matrix —
/// O(n³) FP over O(n²) data.
pub fn hpl(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = ((scale as f64).powf(1.0 / 1.5) as usize).clamp(16, 640);
    let a = base(0);
    let body = code(0, 24);
    let mut acc = 1u64;
    for k in 0..n {
        probe.call(body);
        for i in (k + 1)..n {
            probe.load(a + ((i * n + k) * 8) as u64, 8);
            probe.fp_ops(1); // multiplier
            for j in (k + 1)..n.min(k + 65) {
                probe.load(a + ((k * n + j) * 8) as u64, 8);
                probe.fp_ops(2); // multiply-add
                probe.int_ops(2);
                probe.store(a + ((i * n + j) * 8) as u64, 8);
                acc = acc.wrapping_mul(31).wrapping_add((i * j) as u64);
            }
        }
    }
    acc
}

/// Blocked dense matrix multiply — the canonical high-FP-intensity
/// kernel (reuse through cache blocking).
pub fn dgemm(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = ((scale as f64).sqrt() as usize).clamp(16, 384);
    let blk = 48.min(n);
    let (a, b, c) = (base(1), base(1) + (n * n * 8) as u64, base(1) + (2 * n * n * 8) as u64);
    let body = code(1, 20);
    let mut acc = 7u64;
    for ii in (0..n).step_by(blk) {
        for kk in (0..n).step_by(blk) {
            probe.call(body);
            for i in ii..(ii + blk).min(n) {
                for k in kk..(kk + blk).min(n) {
                    probe.load(a + ((i * n + k) * 8) as u64, 8);
                    for j in (0..blk.min(n)).step_by(4) {
                        probe.load(b + ((k * n + j) * 8) as u64, 32);
                        probe.store(c + ((i * n + j) * 8) as u64, 32);
                        probe.fp_ops(8); // 4 MACs
                        probe.int_ops(8); // index arithmetic
                        acc = acc.wrapping_add((i + j + k) as u64);
                    }
                }
            }
        }
    }
    acc
}

/// STREAM triad: `a[i] = b[i] + s * c[i]` — pure bandwidth.
pub fn stream(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = scale.clamp(1024, 1 << 19);
    let (a, b, c) = (base(2), base(2) + (n * 8) as u64, base(2) + (2 * n * 8) as u64);
    let body = code(2, 12);
    for i in (0..n).step_by(8) {
        if i % 1024 == 0 {
            probe.call(body);
        }
        probe.load(b + (i * 8) as u64, 64);
        probe.load(c + (i * 8) as u64, 64);
        probe.fp_ops(16);
        probe.int_ops(16); // index arithmetic
        probe.store(a + (i * 8) as u64, 64);
    }
    n as u64
}

/// Parallel matrix transpose: strided reads, sequential writes.
pub fn ptrans(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = ((scale as f64).sqrt() as usize).clamp(16, 384);
    let (src, dst) = (base(3), base(3) + (n * n * 8) as u64);
    let body = code(3, 10);
    for i in 0..n {
        probe.call(body);
        for j in 0..n {
            probe.load(src + ((j * n + i) * 8) as u64, 8); // column walk
            probe.store(dst + ((i * n + j) * 8) as u64, 8);
            probe.int_ops(2);
        }
    }
    (n * n) as u64
}

/// GUPS: random read-modify-write over a large table — the worst-case
/// locality kernel.
pub fn random_access(scale: usize, probe: &mut dyn Probe) -> u64 {
    let table_bytes = ((scale * 16) as u64).clamp(1 << 20, 1 << 26);
    let t = base(4);
    let body = code(4, 8);
    let updates = (scale / 8).clamp(1024, 1 << 17);
    let mut ran = 1u64;
    for i in 0..updates {
        if i % 1024 == 0 {
            probe.call(body);
        }
        ran = splitmix64(ran);
        let addr = (t + (ran % table_bytes)) & !7;
        probe.load(addr, 8);
        probe.int_ops(3); // xor + index math
        probe.store(addr, 8);
    }
    ran
}

/// Radix-2 FFT butterflies: log n passes of strided FP.
pub fn fft(scale: usize, probe: &mut dyn Probe) -> u64 {
    let n = scale.next_power_of_two().clamp(1024, 1 << 18);
    let data = base(5);
    let body = code(5, 16);
    let passes = n.trailing_zeros() as usize;
    for p in 0..passes {
        probe.call(body);
        let stride = 1usize << p;
        let mut i = 0;
        while i < n {
            probe.load(data + (i * 16) as u64, 16);
            probe.load(data + ((i + stride) % n * 16) as u64, 16);
            probe.fp_ops(10); // complex butterfly
            probe.int_ops(10); // twiddle indexing
            probe.store(data + (i * 16) as u64, 16);
            i += 64.max(stride / 8); // sampled butterflies keep runtime sane
        }
    }
    (n * passes) as u64
}

/// Ping-pong communication: alternating buffer copies (models the
/// bandwidth/latency microbenchmark).
pub fn comm(scale: usize, probe: &mut dyn Probe) -> u64 {
    let msg = scale.clamp(1024, 1 << 20);
    let (tx, rx) = (base(6), base(6) + (msg as u64) * 2);
    let body = code(6, 14);
    for round in 0..16 {
        probe.call(body);
        let (from, to) = if round % 2 == 0 { (tx, rx) } else { (rx, tx) };
        let mut off = 0u64;
        while off < msg as u64 {
            probe.load(from + off, 64);
            probe.store(to + off, 64);
            probe.int_ops(2);
            off += 64;
        }
    }
    msg as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::CountingProbe;

    fn mix_of(run: fn(usize, &mut dyn Probe) -> u64, scale: usize) -> bdb_archsim::InstructionMix {
        let mut p = CountingProbe::default();
        run(scale, &mut p);
        p.mix()
    }

    #[test]
    fn dgemm_is_fp_dominated() {
        let m = mix_of(dgemm, 1 << 14);
        // FP and index arithmetic are issued in lock-step in the kernel;
        // FP must at least keep pace and dominate memory operations.
        assert!(m.fp_ops >= m.int_ops, "fp {} int {}", m.fp_ops, m.int_ops);
        assert!(m.fp_ops > m.loads, "blocking gives reuse");
    }

    #[test]
    fn stream_balances_loads_and_fp() {
        let m = mix_of(stream, 1 << 16);
        assert!(m.loads > 0 && m.stores > 0 && m.fp_ops > 0);
        // Triad issues 2 data loads per store; code-fetch decomposition
        // adds a small extra fraction to both sides.
        let ratio = m.loads as f64 / m.stores as f64;
        assert!((1.7..=2.3).contains(&ratio), "triad load:store ratio {ratio}");
    }

    #[test]
    fn random_access_is_memory_bound() {
        let m = mix_of(random_access, 1 << 14);
        // Read-modify-write parity up to the code-fetch decomposition.
        let ratio = m.loads as f64 / m.stores as f64;
        assert!((0.8..=1.3).contains(&ratio), "rmw load:store ratio {ratio}");
        assert!(m.fp_ops < m.int_ops / 20, "essentially integer-only");
    }

    #[test]
    fn all_kernels_run_and_checksum() {
        for k in kernels() {
            let mut p = CountingProbe::default();
            let sum = (k.run)(4096, &mut p);
            // Work happened and is not optimized away.
            assert!(p.mix().total() > 100, "{} too small", k.name);
            let _ = sum;
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for k in kernels() {
            let mut p1 = CountingProbe::default();
            let mut p2 = CountingProbe::default();
            assert_eq!((k.run)(4096, &mut p1), (k.run)(4096, &mut p2));
            assert_eq!(p1.mix(), p2.mix(), "{}", k.name);
        }
    }
}
