//! Fault-failed requests are never invisible: a request the service
//! shed at admission or abandoned past its deadline must ALWAYS be
//! tail-sampled — regardless of the head sampler's coin flip — and the
//! Prometheus exposition must carry an exemplar trace id on the
//! corresponding failure counter so an operator can jump from the
//! counter straight to a concrete failed trace.

use bdb_obs::{phase_salt, ObsConfig, ObsPipeline, SampleDecision, TraceId};
use bdb_serving::queue::QueueResult;
use bdb_serving::{QueuePolicy, QueueSim, RequestOutcome, ServiceTimeModel};
use bdb_telemetry::assert_prometheus_grammar;
use std::time::Duration;

const SEED: u64 = 1337;

fn model() -> ServiceTimeModel {
    ServiceTimeModel {
        base_us: 2000.0,
        sigma: 0.3,
        tail_weight: 0.02,
        tail_mult: 5.0,
        store_share: (0.4, 0.6),
    }
}

/// An overloaded run: 2 workers at ~2 ms per request saturate near
/// 1000 rps, so offering 2500 rps against a short queue forces sheds,
/// and a deadline below the queue's worst-case wait (8 slots × ~2 ms)
/// forces timeouts too.
fn overloaded_run() -> QueueResult {
    let times = model().sample_times(4096, SEED);
    QueueSim::new(2)
        .with_policy(QueuePolicy {
            queue_capacity: Some(8),
            deadline: Some(Duration::from_millis(10)),
        })
        .run(2500.0, Duration::from_secs(4), &times, SEED)
}

#[test]
fn fault_failed_requests_are_always_tail_sampled() {
    let result = overloaded_run();
    let failures: Vec<_> = result
        .records
        .iter()
        .filter(|r| matches!(r.outcome, RequestOutcome::Shed | RequestOutcome::TimedOut))
        .collect();
    assert!(result.shed > 0, "overload must shed");
    assert!(result.timed_out > 0, "overload must time out");

    // Zero head rate: the only way a failure survives is the tail
    // sampler, and the policy guarantees it does.
    let mut config = ObsConfig::default_for(Duration::from_millis(50), SEED);
    config.sampling.head_rate = 0.0;
    let salt = phase_salt("overload");
    for r in &failures {
        let trace = TraceId::derive(SEED, salt, r.seq);
        assert_eq!(
            config.sampling.decide(trace, r),
            SampleDecision::TailError,
            "failed request {} must be tail-sampled",
            r.seq
        );
    }

    let mut pipe = ObsPipeline::new("Nutch Server", config);
    pipe.ingest_phase("overload", 0, &result.records, &model());
    let obs = pipe.finish();
    assert_eq!(obs.totals.shed, result.shed);
    assert_eq!(obs.totals.timed_out, result.timed_out);
    assert_eq!(
        obs.sampling.tail_error,
        failures.len() as u64,
        "every fault-failed request is kept, none by the (disabled) head sampler"
    );
    assert_eq!(obs.sampling.head, 0);
}

#[test]
fn failure_counters_carry_exemplar_trace_ids() {
    let result = overloaded_run();
    let config = ObsConfig::default_for(Duration::from_millis(50), SEED);
    let mut pipe = ObsPipeline::new("Nutch Server", config);
    pipe.ingest_phase("overload", 0, &result.records, &model());
    let obs = pipe.finish();
    assert_prometheus_grammar(&obs.prometheus);

    // Both failure counter lines expose a non-zero value and an
    // exemplar whose trace id belongs to a request that actually
    // failed that way.
    let salt = phase_salt("overload");
    for (label, outcome) in
        [("shed", RequestOutcome::Shed), ("timed_out", RequestOutcome::TimedOut)]
    {
        let line = obs
            .prometheus
            .lines()
            .find(|l| {
                l.starts_with(&format!(
                    "obs_requests_total{{service=\"Nutch Server\",outcome=\"{label}\"}}"
                ))
            })
            .unwrap_or_else(|| panic!("missing {label} counter line"));
        let (sample, exemplar) =
            line.split_once(" # ").unwrap_or_else(|| panic!("{label} line lacks an exemplar"));
        let value: u64 = sample.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value > 0, "{label} counter observed failures");
        let hex = exemplar
            .split("trace_id=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("exemplar carries a trace_id label");
        let failed_ids: Vec<String> = result
            .records
            .iter()
            .filter(|r| r.outcome == outcome)
            .map(|r| TraceId::derive(SEED, salt, r.seq).hex())
            .collect();
        assert!(
            failed_ids.iter().any(|id| id == hex),
            "{label} exemplar {hex} is one of that outcome's failed traces"
        );
    }
}
