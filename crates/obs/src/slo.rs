//! Declarative SLOs, error budgets, and multi-window burn-rate alerts.
//!
//! An [`SloSpec`] states the objective ("99% of requests < 50ms");
//! the [`SloEngine`] consumes closed windows from the
//! [`crate::window::WindowRing`] and maintains (a) cumulative
//! error-budget accounting and (b) the SRE-workbook multi-window
//! burn-rate rules: an alert fires when the budget burn rate measured
//! over a *long* trailing window AND a *short* trailing window both
//! exceed the rule's factor — the long window keeps alerts from
//! flapping on blips, the short window makes them reset quickly once
//! the incident ends. Rules fire on the rising edge only, so one
//! sustained overload produces exactly one alert event per rule.

use crate::window::WindowStats;
use std::collections::VecDeque;
use std::time::Duration;

/// A latency/availability SLO: `objective` of requests must finish
/// under `threshold`. Shed and timed-out requests always count as bad.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Human/report name, e.g. `"search-p99-50ms"`.
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// Latency threshold separating good from bad completions.
    pub threshold: Duration,
}

impl SloSpec {
    /// The allowed bad fraction, `1 - objective`.
    pub fn budget_fraction(&self) -> f64 {
        1.0 - self.objective
    }
}

/// Alert severity, ordered by urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Wake a human now.
    Page,
    /// File it for working hours.
    Ticket,
}

impl Severity {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Page => "page",
            Severity::Ticket => "ticket",
        }
    }
}

/// One multi-window burn-rate rule.
#[derive(Debug, Clone)]
pub struct BurnRateRule {
    /// Rule name, e.g. `"fast-burn"`.
    pub name: String,
    /// What firing means.
    pub severity: Severity,
    /// Trailing window count for the long (flap-damping) condition.
    pub long_windows: usize,
    /// Trailing window count for the short (fast-reset) condition.
    pub short_windows: usize,
    /// Both burns must reach this multiple of budget-neutral burn.
    pub factor: f64,
}

impl BurnRateRule {
    /// The SRE-workbook fast/slow pair, in window counts: a page rule
    /// (factor 14 over 8 windows, gated by the last 2) and a ticket
    /// rule (factor 3 over 24 windows, gated by the last 6).
    pub fn standard_pair() -> Vec<BurnRateRule> {
        vec![
            BurnRateRule {
                name: "fast-burn".into(),
                severity: Severity::Page,
                long_windows: 8,
                short_windows: 2,
                factor: 14.0,
            },
            BurnRateRule {
                name: "slow-burn".into(),
                severity: Severity::Ticket,
                long_windows: 24,
                short_windows: 6,
                factor: 3.0,
            },
        ]
    }
}

/// A structured alert: one rising edge of one rule.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// The rule that fired.
    pub rule: String,
    /// Its severity.
    pub severity: Severity,
    /// The SLO it guards.
    pub slo: String,
    /// Index of the window whose close fired the rule.
    pub window_index: u64,
    /// Virtual time of that window's close, nanoseconds.
    pub at_ns: u64,
    /// Burn over the rule's long trailing window when it fired.
    pub long_burn: f64,
    /// Burn over the rule's short trailing window when it fired.
    pub short_burn: f64,
}

/// Cumulative error-budget state.
#[derive(Debug, Clone, Copy)]
pub struct BudgetStatus {
    /// Terminal events observed.
    pub total: u64,
    /// Bad events observed (slow + shed + timed out).
    pub bad: u64,
    /// Bad events the objective permits for `total` events.
    pub allowed: f64,
    /// `bad / allowed` (0 when nothing observed); > 1 means the
    /// budget is spent.
    pub consumed: f64,
}

impl BudgetStatus {
    /// Fraction of budget left, clamped at zero.
    pub fn remaining(&self) -> f64 {
        (1.0 - self.consumed).max(0.0)
    }
}

/// Online SLO evaluator over a stream of closed windows.
#[derive(Debug)]
pub struct SloEngine {
    spec: SloSpec,
    rules: Vec<BurnRateRule>,
    width_ns: u64,
    /// Trailing (bad, total) per closed window, bounded by the longest
    /// rule window.
    history: VecDeque<(u64, u64)>,
    depth: usize,
    active: Vec<bool>,
    alerts: Vec<AlertEvent>,
    total: u64,
    bad: u64,
}

impl SloEngine {
    /// An engine for `spec` evaluating `rules` over windows of
    /// `width`.
    ///
    /// # Panics
    ///
    /// Panics if the objective is not in `(0, 1)` or a rule's short
    /// window exceeds its long window.
    pub fn new(spec: SloSpec, rules: Vec<BurnRateRule>, width: Duration) -> Self {
        assert!(spec.objective > 0.0 && spec.objective < 1.0, "objective in (0,1)");
        for r in &rules {
            assert!(
                r.short_windows >= 1 && r.short_windows <= r.long_windows,
                "short window within long window: {}",
                r.name
            );
        }
        let depth = rules.iter().map(|r| r.long_windows).max().unwrap_or(1);
        let n_rules = rules.len();
        Self {
            spec,
            rules,
            width_ns: width.as_nanos() as u64,
            history: VecDeque::new(),
            depth,
            active: vec![false; n_rules],
            alerts: Vec::new(),
            total: 0,
            bad: 0,
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// The configured rules.
    pub fn rules(&self) -> &[BurnRateRule] {
        &self.rules
    }

    /// Budget burn rate over the last `n` closed windows: the observed
    /// bad fraction divided by the allowed bad fraction. 1.0 means
    /// burning exactly the budget; 0 when the trailing windows saw no
    /// traffic.
    pub fn burn_over(&self, n: usize) -> f64 {
        let (mut bad, mut total) = (0u64, 0u64);
        for &(b, t) in self.history.iter().rev().take(n) {
            bad += b;
            total += t;
        }
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.spec.budget_fraction()
    }

    /// Feeds one closed window; returns the alerts that fired on this
    /// close (rising edges only).
    pub fn on_window_close(&mut self, w: &WindowStats) -> Vec<AlertEvent> {
        self.history.push_back((w.bad(), w.total()));
        if self.history.len() > self.depth {
            self.history.pop_front();
        }
        self.total += w.total();
        self.bad += w.bad();
        let mut fired = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let long_burn = self.burn_over(rule.long_windows);
            let short_burn = self.burn_over(rule.short_windows);
            let firing = long_burn >= rule.factor && short_burn >= rule.factor;
            if firing && !self.active[i] {
                let ev = AlertEvent {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    slo: self.spec.name.clone(),
                    window_index: w.index,
                    at_ns: (w.index + 1) * self.width_ns,
                    long_burn,
                    short_burn,
                };
                fired.push(ev.clone());
                self.alerts.push(ev);
            }
            self.active[i] = firing;
        }
        fired
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Cumulative budget accounting over everything observed.
    pub fn budget(&self) -> BudgetStatus {
        let allowed = self.total as f64 * self.spec.budget_fraction();
        BudgetStatus {
            total: self.total,
            bad: self.bad,
            allowed,
            consumed: if allowed > 0.0 { self.bad as f64 / allowed } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_telemetry::LatencyHistogram;

    fn spec() -> SloSpec {
        SloSpec {
            name: "test-99-50ms".into(),
            objective: 0.99,
            threshold: Duration::from_millis(50),
        }
    }

    fn window(index: u64, completed: u64, slow: u64, shed: u64) -> WindowStats {
        let mut hist = LatencyHistogram::new();
        for _ in 0..completed {
            hist.record_micros(1_000);
        }
        WindowStats { index, offered: completed + shed, completed, shed, timed_out: 0, slow, hist }
    }

    fn engine(rules: Vec<BurnRateRule>) -> SloEngine {
        SloEngine::new(spec(), rules, Duration::from_secs(1))
    }

    #[test]
    fn clean_windows_never_alert_and_keep_budget() {
        let mut e = engine(BurnRateRule::standard_pair());
        for i in 0..50 {
            let fired = e.on_window_close(&window(i, 100, 0, 0));
            assert!(fired.is_empty());
        }
        let b = e.budget();
        assert_eq!(b.bad, 0);
        assert!(b.remaining() > 0.999);
        assert_eq!(e.alerts().len(), 0);
    }

    #[test]
    fn sustained_burn_fires_once_per_rule_on_the_rising_edge() {
        let mut e = engine(BurnRateRule::standard_pair());
        for i in 0..10 {
            assert!(e.on_window_close(&window(i, 100, 0, 0)).is_empty());
        }
        // 30% bad is a 30× burn against a 1% budget: both rules must
        // fire exactly once across the sustained incident.
        let mut fired = Vec::new();
        for i in 10..30 {
            fired.extend(e.on_window_close(&window(i, 70, 0, 30)));
        }
        let pages = fired.iter().filter(|a| a.severity == Severity::Page).count();
        let tickets = fired.iter().filter(|a| a.severity == Severity::Ticket).count();
        assert_eq!(pages, 1, "one rising edge for the page rule");
        assert_eq!(tickets, 1);
        assert!(fired.iter().all(|a| a.long_burn >= 3.0 && a.short_burn >= 3.0));
        // Recovery then a second incident re-fires.
        for i in 30..80 {
            assert!(e.on_window_close(&window(i, 100, 0, 0)).is_empty());
        }
        let mut again = Vec::new();
        for i in 80..100 {
            again.extend(e.on_window_close(&window(i, 70, 0, 30)));
        }
        assert!(again.iter().any(|a| a.severity == Severity::Page), "re-arms after recovery");
    }

    #[test]
    fn short_window_gates_stale_long_burn() {
        // A rule with a long memory must not fire on history alone
        // once the short window is clean.
        let rule = BurnRateRule {
            name: "fast".into(),
            severity: Severity::Page,
            long_windows: 8,
            short_windows: 2,
            factor: 10.0,
        };
        let mut e = engine(vec![rule]);
        // Two very bad windows, then clean ones: long burn stays high
        // for a while but the short window clears immediately.
        let fired = e.on_window_close(&window(0, 0, 0, 100));
        assert_eq!(fired.len(), 1, "incident fires");
        assert!(e.on_window_close(&window(1, 0, 0, 100)).is_empty(), "still active, no re-fire");
        for i in 2..6 {
            let fired = e.on_window_close(&window(i, 100, 0, 0));
            assert!(fired.is_empty(), "clean short window suppresses re-fire at {i}");
        }
    }

    #[test]
    fn burn_math_matches_definition() {
        let mut e = engine(vec![]);
        e.on_window_close(&window(0, 98, 0, 2));
        // 2 bad of 100 at 1% budget = 2× burn.
        assert!((e.burn_over(1) - 2.0).abs() < 1e-9);
        let b = e.budget();
        assert_eq!((b.total, b.bad), (100, 2));
        assert!((b.consumed - 2.0).abs() < 1e-9);
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn slow_completions_count_as_bad() {
        let mut e = engine(vec![]);
        e.on_window_close(&window(0, 100, 5, 0));
        assert_eq!(e.budget().bad, 5);
    }

    #[test]
    #[should_panic(expected = "objective")]
    fn objective_must_be_fractional() {
        SloEngine::new(
            SloSpec { name: "x".into(), objective: 1.0, threshold: Duration::from_millis(1) },
            vec![],
            Duration::from_secs(1),
        );
    }
}
