//! Sliding-window metrics over the request-record stream.
//!
//! A [`WindowRing`] tiles virtual time into fixed-width windows. Each
//! window accumulates a [`LatencyHistogram`] of completions plus
//! offered/completed/shed/timed-out counts; closed windows are kept in
//! a bounded ring so rolling tails (p50/p99/p99.9 over the last N
//! windows) are cheap merges, never re-scans of the run. The ring also
//! exports itself two ways: Prometheus text with exemplar trace ids on
//! hot buckets, and [`CounterTrack`]s for the Chrome trace timeline.

use crate::context::TraceId;
use bdb_telemetry::{CounterTrack, LatencyHistogram};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// One request-lifecycle event on the virtual timeline. `Offered` fires
/// at arrival; the terminal events fire when the outcome is known
/// (shed at arrival, timed-out at abandonment, completed at finish).
#[derive(Debug, Clone, Copy)]
pub enum ReqEvent {
    /// A request arrived.
    Offered,
    /// A request finished; `latency_us` is its sojourn time and
    /// `trace`/`sampled` drive exemplar attachment.
    Completed {
        /// Sojourn time, microseconds.
        latency_us: u64,
        /// The request's trace id.
        trace: TraceId,
        /// Whether the trace was kept by the sampler (only kept traces
        /// become exemplars — they are the ones reconstructable from
        /// the trace file).
        sampled: bool,
    },
    /// A request was rejected at admission. Failures carry their trace
    /// too: the sampler always tail-samples them, and the exposition
    /// attaches them as exemplars to the failure counters.
    Shed {
        /// The request's trace id.
        trace: TraceId,
        /// Whether the trace was kept by the sampler.
        sampled: bool,
    },
    /// A request abandoned its queue slot past the deadline.
    TimedOut {
        /// The request's trace id.
        trace: TraceId,
        /// Whether the trace was kept by the sampler.
        sampled: bool,
    },
}

/// Aggregates for one closed (or in-progress) window.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Window ordinal since the stream epoch (start = index × width).
    pub index: u64,
    /// Arrivals in the window.
    pub offered: u64,
    /// Completions in the window.
    pub completed: u64,
    /// Admission rejections in the window.
    pub shed: u64,
    /// Deadline abandonments in the window.
    pub timed_out: u64,
    /// Completions at or above the slow threshold.
    pub slow: u64,
    /// Latency distribution of the window's completions.
    pub hist: LatencyHistogram,
}

impl WindowStats {
    fn empty(index: u64) -> Self {
        Self {
            index,
            offered: 0,
            completed: 0,
            shed: 0,
            timed_out: 0,
            slow: 0,
            hist: LatencyHistogram::new(),
        }
    }

    /// Requests that reached a terminal state in this window.
    pub fn total(&self) -> u64 {
        self.completed + self.shed + self.timed_out
    }

    /// SLO-violating events: slow completions plus every drop.
    pub fn bad(&self) -> u64 {
        self.slow + self.shed + self.timed_out
    }
}

/// The bounded ring of closed windows plus the in-progress window.
#[derive(Debug)]
pub struct WindowRing {
    width_ns: u64,
    capacity: usize,
    slow_threshold_us: u64,
    current: WindowStats,
    closed: VecDeque<WindowStats>,
    evicted: u64,
    /// Whole-stream histogram (all completions ever observed).
    whole: LatencyHistogram,
    /// Exemplars: latency bucket bound (µs) → the slowest sampled
    /// trace seen in that bucket. BTreeMap keeps exposition order
    /// deterministic.
    exemplars: BTreeMap<u64, (TraceId, u64)>,
    /// Failure exemplars: outcome (`"shed"` / `"timed_out"`) → the most
    /// recent sampled trace that ended in that outcome, so every
    /// injected-fault failure class is pivotable to a kept trace.
    failure_exemplars: BTreeMap<&'static str, TraceId>,
}

impl WindowRing {
    /// A ring of `capacity` closed windows of `width` each; completions
    /// at or above `slow_threshold` count toward [`WindowStats::slow`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `capacity` is zero.
    pub fn new(width: Duration, capacity: usize, slow_threshold: Duration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        assert!(capacity > 0, "ring needs at least one window");
        Self {
            width_ns: width.as_nanos() as u64,
            capacity,
            slow_threshold_us: slow_threshold.as_micros() as u64,
            current: WindowStats::empty(0),
            closed: VecDeque::new(),
            evicted: 0,
            whole: LatencyHistogram::new(),
            exemplars: BTreeMap::new(),
            failure_exemplars: BTreeMap::new(),
        }
    }

    /// Window width.
    pub fn width(&self) -> Duration {
        Duration::from_nanos(self.width_ns)
    }

    fn close_current(&mut self) -> WindowStats {
        let next = WindowStats::empty(self.current.index + 1);
        let done = std::mem::replace(&mut self.current, next);
        self.closed.push_back(done.clone());
        if self.closed.len() > self.capacity {
            self.closed.pop_front();
            self.evicted += 1;
        }
        done
    }

    /// Feeds one event at virtual time `t_ns`. Events MUST arrive in
    /// non-decreasing time order. Returns every window the event's
    /// timestamp closed (empty gaps included — burn-rate math needs
    /// silent windows to exist, not to be skipped).
    ///
    /// # Panics
    ///
    /// Panics if `t_ns` precedes the current window (time ran
    /// backwards).
    pub fn observe(&mut self, t_ns: u64, ev: ReqEvent) -> Vec<WindowStats> {
        assert!(t_ns >= self.current.index * self.width_ns, "events must be fed in time order");
        let mut closed = Vec::new();
        while t_ns >= (self.current.index + 1) * self.width_ns {
            closed.push(self.close_current());
        }
        match ev {
            ReqEvent::Offered => self.current.offered += 1,
            ReqEvent::Shed { trace, sampled } => {
                self.current.shed += 1;
                if sampled {
                    self.failure_exemplars.insert("shed", trace);
                }
            }
            ReqEvent::TimedOut { trace, sampled } => {
                self.current.timed_out += 1;
                if sampled {
                    self.failure_exemplars.insert("timed_out", trace);
                }
            }
            ReqEvent::Completed { latency_us, trace, sampled } => {
                self.current.completed += 1;
                if latency_us >= self.slow_threshold_us {
                    self.current.slow += 1;
                }
                self.current.hist.record_micros(latency_us);
                self.whole.record_micros(latency_us);
                if sampled {
                    let bound = bdb_telemetry::bucket_bound(latency_us);
                    let slot = self.exemplars.entry(bound).or_insert((trace, latency_us));
                    if latency_us >= slot.1 {
                        *slot = (trace, latency_us);
                    }
                }
            }
        }
        closed
    }

    /// Closes the in-progress window (end of stream) and returns it.
    pub fn flush(&mut self) -> WindowStats {
        self.close_current()
    }

    /// Closed windows currently retained, oldest first.
    pub fn closed(&self) -> impl Iterator<Item = &WindowStats> {
        self.closed.iter()
    }

    /// Windows dropped off the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Merged latency histogram over the most recent `n` closed
    /// windows — the rolling distribution behind the dashboard tails.
    pub fn rolling_hist(&self, n: usize) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for w in self.closed.iter().rev().take(n) {
            merged.merge(&w.hist);
        }
        merged
    }

    /// Whole-stream latency histogram (every completion observed,
    /// including windows evicted from the ring).
    pub fn whole_hist(&self) -> &LatencyHistogram {
        &self.whole
    }

    /// The retained windows as Chrome-trace counter tracks, one sample
    /// per closed window at its end time (plus `offset_us`): rates for
    /// offered/completed/shed/timed-out and the window p99 in µs.
    pub fn counter_tracks(&self, service: &str, offset_us: u64) -> Vec<CounterTrack> {
        let width_us = self.width_ns / 1_000;
        let secs = self.width_ns as f64 / 1e9;
        let track = |name: &str, values: Vec<u64>| CounterTrack {
            name: format!("{service} {name}"),
            samples: self
                .closed
                .iter()
                .zip(values)
                .map(|(w, v)| (offset_us + (w.index + 1) * width_us, v))
                .collect(),
        };
        let per = |f: fn(&WindowStats) -> u64| {
            self.closed.iter().map(|w| (f(w) as f64 / secs) as u64).collect::<Vec<_>>()
        };
        vec![
            track("offered_rps", per(|w| w.offered)),
            track("completed_rps", per(|w| w.completed)),
            track("shed_rps", per(|w| w.shed)),
            track("timed_out_rps", per(|w| w.timed_out)),
            track("p99_us", self.closed.iter().map(|w| w.hist.p99().as_micros() as u64).collect()),
        ]
    }

    /// Prometheus text exposition of the ring: outcome counters over
    /// the retained windows, the rolling histogram over the last
    /// `rolling` windows with exemplar trace ids attached to its hot
    /// buckets, and rolling-tail gauges. Validates against
    /// [`bdb_telemetry::assert_prometheus_grammar`].
    pub fn prometheus_text(&self, service: &str, rolling: usize) -> String {
        let svc = escape_label(service);
        let mut out = String::new();
        let sum = |f: fn(&WindowStats) -> u64| self.closed.iter().map(f).sum::<u64>();
        out.push_str("# TYPE obs_requests_total counter\n");
        for (outcome, v) in [
            ("offered", sum(|w| w.offered)),
            ("completed", sum(|w| w.completed)),
            ("shed", sum(|w| w.shed)),
            ("timed_out", sum(|w| w.timed_out)),
        ] {
            out.push_str(&format!(
                "obs_requests_total{{service=\"{svc}\",outcome=\"{outcome}\"}} {v}"
            ));
            // Failure counters carry an exemplar: the most recent kept
            // trace of that outcome (exemplar value 1 = one request).
            if let Some(trace) = self.failure_exemplars.get(outcome) {
                out.push_str(&format!(" # {{trace_id=\"{}\"}} 1", trace.hex()));
            }
            out.push('\n');
        }
        // `_created`-style window-start timestamp (seconds): when the
        // oldest retained window opened. Scraped alongside the
        // counters, it lets a tsdb align this ring's windows with its
        // own sample times. The grammar treats `_created` as its own
        // family, so it carries its own TYPE comment.
        let start_s = |index: u64| (index * self.width_ns) as f64 / 1e9;
        let retained_start = start_s(self.closed.front().map_or(self.current.index, |w| w.index));
        out.push_str("# TYPE obs_requests_created gauge\n");
        for outcome in ["offered", "completed", "shed", "timed_out"] {
            out.push_str(&format!(
                "obs_requests_created{{service=\"{svc}\",outcome=\"{outcome}\"}} {retained_start:.3}\n"
            ));
        }
        let hist = self.rolling_hist(rolling);
        out.push_str("# TYPE obs_rolling_request_us histogram\n");
        for (bound, cumulative) in hist.cumulative_buckets() {
            out.push_str(&format!(
                "obs_rolling_request_us_bucket{{service=\"{svc}\",le=\"{bound}\"}} {cumulative}"
            ));
            // Exemplar: the slowest sampled trace whose latency falls
            // in this bucket, when we kept one.
            if let Some((trace, latency_us)) = self.exemplars.get(&bound) {
                out.push_str(&format!(" # {{trace_id=\"{}\"}} {latency_us}", trace.hex()));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "obs_rolling_request_us_bucket{{service=\"{svc}\",le=\"+Inf\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!(
            "obs_rolling_request_us_sum{{service=\"{svc}\"}} {}\n",
            hist.sum_micros()
        ));
        out.push_str(&format!(
            "obs_rolling_request_us_count{{service=\"{svc}\"}} {}\n",
            hist.count()
        ));
        // Start of the oldest window merged into the rolling histogram.
        let rolling_start = start_s(
            self.closed
                .iter()
                .rev()
                .take(rolling.max(1))
                .next_back()
                .map_or(self.current.index, |w| w.index),
        );
        out.push_str("# TYPE obs_rolling_request_us_created gauge\n");
        out.push_str(&format!(
            "obs_rolling_request_us_created{{service=\"{svc}\"}} {rolling_start:.3}\n"
        ));
        out.push_str("# TYPE obs_rolling_p99_us gauge\n");
        out.push_str(&format!(
            "obs_rolling_p99_us{{service=\"{svc}\"}} {}\n",
            hist.p99().as_micros()
        ));
        out.push_str("# TYPE obs_rolling_p999_us gauge\n");
        out.push_str(&format!(
            "obs_rolling_p999_us{{service=\"{svc}\"}} {}\n",
            hist.p999().as_micros()
        ));
        out
    }
}

/// Escapes a string for use inside a Prometheus label value.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_telemetry::assert_prometheus_grammar;

    fn completed(latency_us: u64, trace: u64, sampled: bool) -> ReqEvent {
        ReqEvent::Completed { latency_us, trace: TraceId(trace), sampled }
    }

    fn shed(trace: u64, sampled: bool) -> ReqEvent {
        ReqEvent::Shed { trace: TraceId(trace), sampled }
    }

    #[test]
    fn windows_tile_time_and_count_outcomes() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 8, Duration::from_millis(50));
        let s = 1_000_000_000u64;
        assert!(ring.observe(0, ReqEvent::Offered).is_empty());
        assert!(ring.observe(100, completed(900, 1, false)).is_empty());
        // Jumping two windows ahead closes window 0 and the empty
        // window 1.
        let closed = ring.observe(2 * s + 5, shed(99, true));
        assert_eq!(closed.len(), 2);
        assert_eq!((closed[0].offered, closed[0].completed), (1, 1));
        assert_eq!(closed[1].total(), 0, "gap windows exist and are empty");
        let last = ring.flush();
        assert_eq!(last.shed, 1);
        assert_eq!(ring.closed().count(), 3);
    }

    #[test]
    fn ring_is_bounded_and_rolling_merges_recent() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 4, Duration::from_millis(50));
        let s = 1_000_000_000u64;
        for w in 0..10u64 {
            // One completion per window, latency encodes the window.
            ring.observe(w * s + 1, completed(1000 * (w + 1), w, false));
        }
        ring.flush();
        assert_eq!(ring.closed().count(), 4);
        assert_eq!(ring.evicted(), 6);
        let rolling = ring.rolling_hist(2);
        assert_eq!(rolling.count(), 2);
        // Last two windows saw 9ms and 10ms completions.
        assert!(rolling.percentile(1.0) >= Duration::from_millis(9));
        assert_eq!(ring.whole_hist().count(), 10, "whole-run histogram survives eviction");
    }

    #[test]
    fn slow_counts_respect_threshold() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 4, Duration::from_millis(50));
        ring.observe(0, completed(49_999, 1, false));
        ring.observe(1, completed(50_000, 2, false));
        ring.observe(2, completed(90_000, 3, false));
        let w = ring.flush();
        assert_eq!(w.completed, 3);
        assert_eq!(w.slow, 2);
        assert_eq!(w.bad(), 2);
    }

    #[test]
    fn exposition_is_grammatical_with_exemplars() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 8, Duration::from_millis(50));
        for i in 0..50u64 {
            ring.observe(i, ReqEvent::Offered);
            ring.observe(i + 1, completed(500 + i * 137, i, i % 3 == 0));
        }
        ring.observe(1_500_000_000, shed(77, true));
        ring.observe(1_600_000_000, ReqEvent::TimedOut { trace: TraceId(78), sampled: true });
        ring.flush();
        // Hostile service name must be escaped, not break the grammar.
        let text = ring.prometheus_text("evil \"svc\"\\name\n", 8);
        assert_prometheus_grammar(&text);
        assert!(text.contains(" # {trace_id=\""), "sampled traces become exemplars");
        assert!(text.contains("obs_rolling_request_us_bucket"));
        let shed_line =
            text.lines().find(|l| l.contains("outcome=\"shed\"")).expect("shed counter present");
        assert!(
            shed_line.contains(&format!("# {{trace_id=\"{}\"}} 1", TraceId(77).hex())),
            "sampled failures become exemplars on the failure counter: {shed_line}"
        );
        let timeout_line = text
            .lines()
            .find(|l| l.contains("outcome=\"timed_out\""))
            .expect("timed_out counter present");
        assert!(timeout_line.contains(&format!("trace_id=\"{}\"", TraceId(78).hex())));
    }

    #[test]
    fn exposition_emits_created_window_start_timestamps() {
        let mut ring = WindowRing::new(Duration::from_secs(2), 4, Duration::from_millis(50));
        let s = 1_000_000_000u64;
        // Ten 2s windows; the 4-deep ring retains windows 6..=9, so the
        // oldest retained window opened at 12s. A rolling merge of the
        // last 2 windows starts at window 8 = 16s.
        for w in 0..10u64 {
            ring.observe(2 * w * s + 1, completed(800, w, false));
        }
        ring.flush();
        let text = ring.prometheus_text("svc", 2);
        assert_prometheus_grammar(&text);
        assert!(text.contains("# TYPE obs_requests_created gauge"));
        assert!(text.contains("# TYPE obs_rolling_request_us_created gauge"));
        for outcome in ["offered", "completed", "shed", "timed_out"] {
            let line = text
                .lines()
                .find(|l| l.starts_with("obs_requests_created") && l.contains(outcome))
                .unwrap_or_else(|| panic!("missing _created for {outcome}"));
            assert!(line.ends_with(" 12.000"), "oldest retained window start: {line}");
        }
        let rolling = text
            .lines()
            .find(|l| l.starts_with("obs_rolling_request_us_created"))
            .expect("rolling _created present");
        assert!(rolling.ends_with(" 16.000"), "rolling merge start: {rolling}");
        // An empty ring anchors to the in-progress window (index 0).
        let empty = WindowRing::new(Duration::from_secs(2), 4, Duration::from_millis(50));
        let text = empty.prometheus_text("svc", 2);
        assert_prometheus_grammar(&text);
        assert!(text.contains("obs_requests_created{service=\"svc\",outcome=\"offered\"} 0.000"));
    }

    #[test]
    fn counter_tracks_cover_closed_windows() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 8, Duration::from_millis(50));
        let s = 1_000_000_000u64;
        for w in 0..3u64 {
            for i in 0..10 {
                ring.observe(w * s + i, completed(800, i, false));
            }
        }
        ring.flush();
        let tracks = ring.counter_tracks("nutch", 0);
        assert_eq!(tracks.len(), 5);
        let completed_track = tracks.iter().find(|t| t.name == "nutch completed_rps").unwrap();
        assert_eq!(completed_track.samples.len(), 3);
        assert!(completed_track.samples.iter().all(|&(_, v)| v == 10));
        // Samples land at window ends on the µs timeline.
        assert_eq!(completed_track.samples[0].0, 1_000_000);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_panic() {
        let mut ring = WindowRing::new(Duration::from_secs(1), 4, Duration::from_millis(50));
        ring.observe(5 * 1_000_000_000, ReqEvent::Offered);
        ring.observe(0, ReqEvent::Offered);
    }
}
