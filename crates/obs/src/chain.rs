//! Linked span chains: synthesis for sampled requests, and the
//! independent reconstruction used to prove a slow request can be
//! walked end-to-end from the trace file alone.
//!
//! A kept request becomes up to four causally linked spans on the
//! shared Chrome-trace timeline, Dapper-style:
//!
//! ```text
//! request (span 1, root)          arrival ─────────────── finish
//!   └ queue (span 2, parent 1)    arrival ── service start
//!       └ handle (span 3, parent 2)        start ──────── finish
//!           └ store (span 4, parent 3)     start ── +store share
//! ```
//!
//! Shed requests stop at `queue` (the admission decision *is* their
//! whole life); timed-out requests stop at `queue` too, with the span
//! covering the abandoned wait. Linkage is carried in span args
//! (`trace_id`, `span_id`, `parent_span_id`), so [`reconstruct`] can
//! rebuild every chain from a flat `Vec<SpanEvent>` with no access to
//! the pipeline that wrote it.

use crate::context::{SampleDecision, TraceId};
use bdb_serving::queue::{RequestOutcome, RequestRecord};
use bdb_telemetry::{ArgValue, SpanEvent};

/// Everything needed to synthesize one request's chain.
#[derive(Debug)]
pub struct ChainInput<'a> {
    /// The request's trace id.
    pub trace: TraceId,
    /// Its simulation record.
    pub record: &'a RequestRecord,
    /// Why the sampler kept it.
    pub decision: SampleDecision,
    /// Load-phase name (`"steady"`, `"overload"`, ...).
    pub phase: &'a str,
    /// Fraction of the service time attributed to the state store.
    pub store_fraction: f64,
    /// Microsecond offset of this phase on the shared trace timeline.
    pub offset_us: u64,
}

fn arg_chain(
    trace: TraceId,
    span_id: u64,
    parent: Option<u64>,
    extra: Vec<(&'static str, ArgValue)>,
) -> Vec<(&'static str, ArgValue)> {
    let mut args =
        vec![("trace_id", ArgValue::Str(trace.hex())), ("span_id", ArgValue::Int(span_id as i64))];
    if let Some(p) = parent {
        args.push(("parent_span_id", ArgValue::Int(p as i64)));
    }
    args.extend(extra);
    args
}

/// Synthesizes the linked spans for one kept request. The `tid` row is
/// the serving worker (+1, row 0 is reserved for un-admitted
/// requests), so chains line up under the worker that ran them.
pub fn synthesize_chain(input: &ChainInput<'_>) -> Vec<SpanEvent> {
    let r = input.record;
    let us = |ns: u64| input.offset_us + ns / 1_000;
    let tid = r.worker.map_or(0, |w| w as u64 + 1);
    let trace = input.trace;
    let mut spans = Vec::with_capacity(4);
    let latency_us = r.latency_ns() / 1_000;
    spans.push(SpanEvent {
        name: "request",
        cat: "obs",
        start_us: us(r.arrival_ns),
        dur_us: Some(latency_us),
        tid,
        args: arg_chain(
            trace,
            1,
            None,
            vec![
                ("outcome", ArgValue::Str(r.outcome.label().to_owned())),
                ("sampled", ArgValue::Str(input.decision.label().to_owned())),
                ("phase", ArgValue::Str(input.phase.to_owned())),
                ("latency_us", ArgValue::Int(latency_us as i64)),
            ],
        ),
    });
    // Queue span: admission decision through service start (or the
    // whole life for shed/timed-out requests).
    let queue_end_ns = match r.outcome {
        RequestOutcome::Shed => r.arrival_ns,
        _ => r.start_ns.unwrap_or(r.arrival_ns),
    };
    spans.push(SpanEvent {
        name: "queue",
        cat: "obs",
        start_us: us(r.arrival_ns),
        dur_us: Some((queue_end_ns - r.arrival_ns) / 1_000),
        tid,
        args: arg_chain(trace, 2, Some(1), Vec::new()),
    });
    if matches!(r.outcome, RequestOutcome::Completed | RequestOutcome::Unfinished) {
        let start = r.start_ns.expect("admitted requests start");
        let service_us = r.service_ns / 1_000;
        spans.push(SpanEvent {
            name: "handle",
            cat: "obs",
            start_us: us(start),
            dur_us: Some(service_us),
            tid,
            args: arg_chain(
                trace,
                3,
                Some(2),
                vec![("worker", ArgValue::Int(r.worker.unwrap_or(0) as i64))],
            ),
        });
        // The store access leads the handler's work.
        let store_us = (service_us as f64 * input.store_fraction) as u64;
        spans.push(SpanEvent {
            name: "store",
            cat: "obs",
            start_us: us(start),
            dur_us: Some(store_us),
            tid,
            args: arg_chain(trace, 4, Some(3), Vec::new()),
        });
    }
    spans
}

/// One chain rebuilt from a flat span list.
#[derive(Debug, Clone)]
pub struct ChainView {
    /// The trace id (16 hex digits).
    pub trace: String,
    /// The root request's outcome label (empty if the root is
    /// missing).
    pub outcome: String,
    /// Root latency in microseconds.
    pub latency_us: u64,
    /// Span names present, in span-id order.
    pub names: Vec<&'static str>,
    /// Whether the chain is complete *and correctly linked* for its
    /// outcome: request→queue→handle→store with each parent id
    /// matching and each child inside its parent's interval for
    /// completed requests; request→queue for shed/timed-out ones.
    pub complete: bool,
}

fn str_arg(e: &SpanEvent, key: &str) -> Option<String> {
    e.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::Str(s) => Some(s.clone()),
        _ => None,
    })
}

fn int_arg(e: &SpanEvent, key: &str) -> Option<i64> {
    e.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::Int(i) => Some(*i),
        _ => None,
    })
}

fn encloses(parent: &SpanEvent, child: &SpanEvent) -> bool {
    let p_end = parent.start_us + parent.dur_us.unwrap_or(0);
    let c_end = child.start_us + child.dur_us.unwrap_or(0);
    child.start_us >= parent.start_us && c_end <= p_end
}

/// Rebuilds every chain found in `events` (spans carrying a
/// `trace_id` arg), sorted by trace id for deterministic output.
pub fn reconstruct(events: &[SpanEvent]) -> Vec<ChainView> {
    use std::collections::BTreeMap;
    let mut by_trace: BTreeMap<String, Vec<&SpanEvent>> = BTreeMap::new();
    for e in events {
        if let Some(t) = str_arg(e, "trace_id") {
            by_trace.entry(t).or_default().push(e);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, mut spans)| {
            spans.sort_by_key(|e| int_arg(e, "span_id").unwrap_or(i64::MAX));
            let find = |id: i64| spans.iter().find(|e| int_arg(e, "span_id") == Some(id)).copied();
            let root = find(1);
            let outcome = root.and_then(|r| str_arg(r, "outcome")).unwrap_or_default();
            let latency_us = root.and_then(|r| int_arg(r, "latency_us")).unwrap_or(0) as u64;
            let linked = |child: Option<&SpanEvent>, parent: Option<&SpanEvent>, pid: i64| match (
                child, parent,
            ) {
                (Some(c), Some(p)) => int_arg(c, "parent_span_id") == Some(pid) && encloses(p, c),
                _ => false,
            };
            let queue_ok = linked(find(2), root, 1);
            let complete = match outcome.as_str() {
                "completed" | "unfinished" => {
                    // The handle span of an unfinished request (and a
                    // timed-out wait) extends past the root's recorded
                    // latency, so nesting is only enforced where the
                    // model guarantees it: queue under request, store
                    // under handle.
                    let handle = find(3);
                    let handle_ok = handle.is_some_and(|h| int_arg(h, "parent_span_id") == Some(2));
                    queue_ok && handle_ok && linked(find(4), handle, 3)
                }
                "shed" | "timed_out" => queue_ok && find(3).is_none(),
                _ => false,
            };
            ChainView {
                trace,
                outcome,
                latency_us,
                names: spans.iter().map(|e| e.name).collect(),
                complete,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_serving::queue::RequestRecord;

    fn rec(outcome: RequestOutcome) -> RequestRecord {
        let ms = 1_000_000u64;
        match outcome {
            RequestOutcome::Shed => RequestRecord {
                seq: 0,
                arrival_ns: 10 * ms,
                start_ns: None,
                finish_ns: None,
                service_ns: 0,
                worker: None,
                outcome,
            },
            RequestOutcome::TimedOut => RequestRecord {
                seq: 1,
                arrival_ns: 10 * ms,
                start_ns: Some(90 * ms),
                finish_ns: None,
                service_ns: 0,
                worker: Some(1),
                outcome,
            },
            _ => RequestRecord {
                seq: 2,
                arrival_ns: 10 * ms,
                start_ns: Some(12 * ms),
                finish_ns: Some(20 * ms),
                service_ns: 8 * ms,
                worker: Some(2),
                outcome,
            },
        }
    }

    fn chain(outcome: RequestOutcome) -> Vec<SpanEvent> {
        synthesize_chain(&ChainInput {
            trace: TraceId(0xABCD),
            record: &rec(outcome),
            decision: SampleDecision::TailSlow,
            phase: "steady",
            store_fraction: 0.5,
            offset_us: 1_000,
        })
    }

    #[test]
    fn completed_chain_has_four_nested_spans() {
        let spans = chain(RequestOutcome::Completed);
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            ["request", "queue", "handle", "store"]
        );
        // request covers arrival→finish on the offset timeline.
        assert_eq!(spans[0].start_us, 1_000 + 10_000);
        assert_eq!(spans[0].dur_us, Some(10_000));
        // store is half the 8ms service.
        assert_eq!(spans[3].dur_us, Some(4_000));
        let views = reconstruct(&spans);
        assert_eq!(views.len(), 1);
        assert!(views[0].complete, "{views:?}");
        assert_eq!(views[0].outcome, "completed");
        assert_eq!(views[0].latency_us, 10_000);
    }

    #[test]
    fn shed_and_timed_out_chains_stop_at_queue() {
        for outcome in [RequestOutcome::Shed, RequestOutcome::TimedOut] {
            let spans = chain(outcome);
            assert_eq!(spans.len(), 2, "{outcome:?}");
            let views = reconstruct(&spans);
            assert!(views[0].complete, "{outcome:?}: {views:?}");
            assert_eq!(views[0].names, ["request", "queue"]);
        }
        // The timed-out queue span covers the abandoned 80ms wait.
        let spans = chain(RequestOutcome::TimedOut);
        assert_eq!(spans[1].dur_us, Some(80_000));
    }

    #[test]
    fn reconstruction_rejects_broken_links() {
        let mut spans = chain(RequestOutcome::Completed);
        // Drop the handle span: store's parent disappears.
        spans.retain(|s| s.name != "handle");
        let views = reconstruct(&spans);
        assert!(!views[0].complete, "missing link must not verify");

        // A store span leaking outside its handle also fails.
        let mut spans = chain(RequestOutcome::Completed);
        if let Some(store) = spans.iter_mut().find(|s| s.name == "store") {
            store.start_us += 1_000_000;
        }
        assert!(!reconstruct(&spans)[0].complete);
    }

    #[test]
    fn chains_separate_by_trace_id() {
        let mut all = Vec::new();
        for (i, outcome) in
            [RequestOutcome::Completed, RequestOutcome::Shed, RequestOutcome::Completed]
                .into_iter()
                .enumerate()
        {
            all.extend(synthesize_chain(&ChainInput {
                trace: TraceId(i as u64 + 1),
                record: &rec(outcome),
                decision: SampleDecision::Head,
                phase: "steady",
                store_fraction: 0.4,
                offset_us: 0,
            }));
        }
        let views = reconstruct(&all);
        assert_eq!(views.len(), 3);
        assert!(views.iter().all(|v| v.complete));
    }
}
