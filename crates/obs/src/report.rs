//! The machine-readable `slo_report.json`.
//!
//! One document per `--slo` run covering every observed service:
//! objective, totals, budget, rolling and whole-run tails, sampler
//! accounting, chain-verification counts, and the fired alerts.
//! Written through the suite's hand-rolled JSON writer and
//! byte-deterministic for a given seed — the reproduce gate diffs two
//! runs directly.

use crate::ServiceObservation;
use bdb_telemetry::json::ObjectWriter;

fn service_json(out: &mut String, obs: &ServiceObservation) {
    let mut o = ObjectWriter::new(out);
    o.field_str("service", &obs.service);
    {
        let buf = o.field_raw("slo");
        let mut slo = ObjectWriter::new(buf);
        slo.field_str("name", &obs.spec.name)
            .field_f64("objective", obs.spec.objective)
            .field_u64("threshold_us", obs.spec.threshold.as_micros() as u64)
            .field_u64("window_ms", obs.window.as_millis() as u64);
        slo.finish();
    }
    {
        let buf = o.field_raw("totals");
        let mut t = ObjectWriter::new(buf);
        t.field_u64("offered", obs.totals.offered)
            .field_u64("completed", obs.totals.completed)
            .field_u64("shed", obs.totals.shed)
            .field_u64("timed_out", obs.totals.timed_out)
            .field_u64("bad", obs.totals.bad);
        t.finish();
    }
    {
        let buf = o.field_raw("budget");
        let mut b = ObjectWriter::new(buf);
        b.field_u64("total", obs.budget.total)
            .field_u64("bad", obs.budget.bad)
            .field_f64("allowed", obs.budget.allowed)
            .field_f64("consumed", obs.budget.consumed)
            .field_f64("remaining", obs.budget.remaining());
        b.finish();
    }
    for (key, hist) in [("rolling_us", &obs.rolling), ("whole_run_us", &obs.whole)] {
        let buf = o.field_raw(key);
        let mut h = ObjectWriter::new(buf);
        h.field_u64("count", hist.count())
            .field_u64("p50", hist.p50().as_micros() as u64)
            .field_u64("p99", hist.p99().as_micros() as u64)
            .field_u64("p999", hist.p999().as_micros() as u64)
            .field_u64("max", hist.max().as_micros() as u64);
        h.finish();
    }
    {
        let buf = o.field_raw("sampling");
        let mut s = ObjectWriter::new(buf);
        s.field_u64("kept", obs.sampling.kept)
            .field_u64("head", obs.sampling.head)
            .field_u64("tail_slow", obs.sampling.tail_slow)
            .field_u64("tail_error", obs.sampling.tail_error);
        s.finish();
    }
    {
        let buf = o.field_raw("chains");
        let mut c = ObjectWriter::new(buf);
        c.field_u64("reconstructed", obs.chains_total).field_u64("complete", obs.chains_complete);
        c.finish();
    }
    {
        let buf = o.field_raw("alerts");
        buf.push('[');
        for (i, a) in obs.alerts.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let mut al = ObjectWriter::new(buf);
            al.field_str("rule", &a.rule)
                .field_str("severity", a.severity.label())
                .field_str("slo", &a.slo)
                .field_u64("window", a.window_index)
                .field_u64("at_ms", a.at_ns / 1_000_000)
                .field_f64("long_burn", round4(a.long_burn))
                .field_f64("short_burn", round4(a.short_burn));
            al.finish();
        }
        buf.push(']');
    }
    o.finish();
}

/// Rounds to 4 decimals so float noise cannot leak into the report.
fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// Renders the full `slo_report.json` for a run over `observations`.
pub fn render_report(seed: u64, observations: &[ServiceObservation]) -> String {
    let mut out = String::new();
    let mut o = ObjectWriter::new(&mut out);
    o.field_str("schema", "bdb-slo-report-v1").field_u64("seed", seed);
    o.field_u64("services_observed", observations.len() as u64);
    {
        let buf = o.field_raw("services");
        buf.push('[');
        for (i, obs) in observations.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            service_json(buf, obs);
        }
        buf.push(']');
    }
    o.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use crate::{ObsConfig, ObsPipeline};
    use bdb_serving::{QueueSim, ServiceTimeModel};
    use std::time::Duration;

    fn observe(seed: u64) -> crate::ServiceObservation {
        let m = ServiceTimeModel {
            base_us: 2000.0,
            sigma: 0.3,
            tail_weight: 0.02,
            tail_mult: 5.0,
            store_share: (0.4, 0.6),
        };
        let times = m.sample_times(512, seed);
        let qr = QueueSim::new(4).run(400.0, Duration::from_secs(6), &times, seed);
        let mut pipe =
            ObsPipeline::new("svc", ObsConfig::default_for(Duration::from_millis(50), seed));
        pipe.ingest_phase("steady", 0, &qr.records, &m);
        pipe.finish()
    }

    #[test]
    fn report_is_byte_deterministic_and_well_formed() {
        let a = super::render_report(7, &[observe(7)]);
        let b = super::render_report(7, &[observe(7)]);
        assert_eq!(a, b, "same seed must render byte-identical reports");
        assert_ne!(a, super::render_report(8, &[observe(8)]));
        assert!(a.starts_with("{\"schema\":\"bdb-slo-report-v1\""));
        assert!(a.contains("\"services_observed\":1"));
        assert!(a.contains("\"alerts\":["));
        assert!(a.contains("\"p999\":"));
        assert!(a.trim_end().ends_with('}'));
        // Balanced braces/brackets — cheap structural sanity.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }
}
