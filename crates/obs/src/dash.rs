//! The plain-text dashboard: what an operator would see on a wall
//! monitor, rendered once at end of run from the same windowed state
//! the SLO engine evaluated. Deterministic for a given observation.

use crate::ServiceObservation;

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

/// Renders `<service>.dash.txt` content.
pub fn render(obs: &ServiceObservation) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} · SLO dashboard ==\n", obs.service));
    out.push_str(&format!(
        "SLO {}: {:.1}% of requests < {}ms over {}s windows\n",
        obs.spec.name,
        obs.spec.objective * 100.0,
        obs.spec.threshold.as_millis(),
        obs.window.as_secs_f64(),
    ));
    let t = obs.totals;
    out.push_str(&format!(
        "traffic: {} offered · {} completed · {} shed · {} timed out · {} slow-or-dropped\n",
        t.offered, t.completed, t.shed, t.timed_out, t.bad
    ));
    out.push_str(&format!(
        "error budget: {} bad of {:.0} allowed — {:.1}% consumed, {:.1}% remaining\n",
        obs.budget.bad,
        obs.budget.allowed,
        obs.budget.consumed * 100.0,
        obs.budget.remaining() * 100.0
    ));
    out.push_str(&format!(
        "rolling tails (last {} windows): p50 {:.1}ms · p99 {:.1}ms · p99.9 {:.1}ms\n",
        obs.rolling_windows,
        ms(obs.rolling.p50().as_micros() as u64),
        ms(obs.rolling.p99().as_micros() as u64),
        ms(obs.rolling.p999().as_micros() as u64),
    ));
    out.push_str(&format!(
        "whole run:                 p50 {:.1}ms · p99 {:.1}ms · p99.9 {:.1}ms\n",
        ms(obs.whole.p50().as_micros() as u64),
        ms(obs.whole.p99().as_micros() as u64),
        ms(obs.whole.p999().as_micros() as u64),
    ));
    out.push_str(&format!(
        "sampling: {} traces kept ({} head, {} tail-slow, {} tail-error); {} of {} chains complete\n",
        obs.sampling.kept,
        obs.sampling.head,
        obs.sampling.tail_slow,
        obs.sampling.tail_error,
        obs.chains_complete,
        obs.chains_total,
    ));
    out.push('\n');
    out.push_str("  win    end(s)  offered   done   shed  t/out   slow  p99(ms)    burn\n");
    for w in &obs.window_table {
        out.push_str(&format!(
            "{:>5}  {:>8.1}  {:>7}  {:>5}  {:>5}  {:>5}  {:>5}  {:>7.1}  {:>6.1}\n",
            w.index,
            w.end_s,
            w.offered,
            w.completed,
            w.shed,
            w.timed_out,
            w.slow,
            ms(w.p99_us),
            w.burn
        ));
    }
    out.push('\n');
    if obs.alerts.is_empty() {
        out.push_str("alerts: none\n");
    } else {
        out.push_str(&format!("alerts ({}):\n", obs.alerts.len()));
        for a in &obs.alerts {
            out.push_str(&format!(
                "  [{}] {} on {} at {:.1}s (window {}, long burn {:.1}x, short burn {:.1}x)\n",
                a.severity.label(),
                a.rule,
                a.slo,
                a.at_ns as f64 / 1e9,
                a.window_index,
                a.long_burn,
                a.short_burn,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{ObsConfig, ObsPipeline};
    use bdb_serving::{QueuePolicy, QueueSim, ServiceTimeModel};
    use std::time::Duration;

    #[test]
    fn dashboard_shows_tails_budget_and_alerts() {
        let m = ServiceTimeModel {
            base_us: 2000.0,
            sigma: 0.3,
            tail_weight: 0.02,
            tail_mult: 5.0,
            store_share: (0.4, 0.6),
        };
        let times = m.sample_times(512, 4);
        let steady = QueueSim::new(4).run(300.0, Duration::from_secs(8), &times, 4);
        let policy =
            QueuePolicy { queue_capacity: Some(64), deadline: Some(Duration::from_millis(80)) };
        let overload = QueueSim::new(4).with_policy(policy).run(
            2600.0,
            Duration::from_secs(8),
            &times,
            4 ^ 0xBEEF,
        );
        let mut pipe =
            ObsPipeline::new("Nutch Server", ObsConfig::default_for(Duration::from_millis(50), 4));
        pipe.ingest_phase("steady", 0, &steady.records, &m);
        pipe.ingest_phase("overload", 8_000_000_000, &overload.records, &m);
        let obs = pipe.finish();
        let text = super::render(&obs);
        assert!(text.contains("== Nutch Server · SLO dashboard =="));
        assert!(text.contains("error budget:"));
        assert!(text.contains("rolling tails"));
        assert!(text.contains("p99(ms)"));
        assert!(text.contains("[page]"), "overload must surface a page alert:\n{text}");
        // One table row per retained window.
        let rows = text.lines().filter(|l| l.starts_with("    ")).count();
        assert!(rows >= obs.window_table.len().min(4), "table renders windows");
    }
}
