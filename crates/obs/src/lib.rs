//! Online observability for the BigDataBench-RS serving tier.
//!
//! The paper judges its online services (Nutch search, Olio social,
//! Rubis auction) by user-perceivable latency, and the Tail-at-Scale
//! lesson is that the p99/p99.9 — not the mean — governs experience
//! once requests fan out. This crate is the *online* half of the
//! suite's observability: where `bdb-telemetry` dumps spans and
//! counters for post-hoc analysis, `bdb-obs` watches the request
//! stream as it happens:
//!
//! * [`context`] — per-request trace ids with deterministic seeded
//!   head-sampling plus always-keep tail-sampling (slow, shed, or
//!   timed-out requests are never dropped), Dapper-style;
//! * [`window`] — a ring of [`bdb_telemetry::LatencyHistogram`]
//!   windows giving rolling p50/p99/p99.9 and outcome rates, exported
//!   as Prometheus text with exemplar trace ids and as Chrome-trace
//!   counter tracks;
//! * [`slo`] — declarative SLOs, error-budget accounting, and
//!   multi-window burn-rate alerts (fast/slow rule pairs à la the SRE
//!   workbook);
//! * [`chain`] — sampled requests as linked span chains
//!   (loadgen → queue → handler → store) that [`chain::reconstruct`]
//!   can rebuild and verify from the flat trace alone;
//! * [`dash`] / [`report`] — a plain-text dashboard per service and a
//!   machine-readable `slo_report.json`.
//!
//! Everything is virtual-time and seed-deterministic: the same seed
//! yields byte-identical reports on any host. Zero external
//! dependencies, like the rest of the suite.
//!
//! # Example
//!
//! ```
//! use bdb_obs::{ObsConfig, ObsPipeline};
//! use bdb_serving::{QueueSim, ServiceTimeModel};
//! use std::time::Duration;
//!
//! let model = ServiceTimeModel {
//!     base_us: 2000.0,
//!     sigma: 0.3,
//!     tail_weight: 0.02,
//!     tail_mult: 5.0,
//!     store_share: (0.4, 0.6),
//! };
//! let times = model.sample_times(512, 7);
//! let result = QueueSim::new(4).run(300.0, Duration::from_secs(8), &times, 7);
//! let mut pipe = ObsPipeline::new("demo", ObsConfig::default_for(Duration::from_millis(50), 7));
//! pipe.ingest_phase("steady", 0, &result.records, &model);
//! let obs = pipe.finish();
//! assert_eq!(obs.totals.offered, result.records.len() as u64);
//! assert!(obs.alerts.is_empty(), "light load burns no budget");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod context;
pub mod dash;
pub mod report;
pub mod slo;
pub mod window;

pub use chain::{reconstruct, synthesize_chain, ChainInput, ChainView};
pub use context::{phase_salt, SampleDecision, SamplingPolicy, TraceId};
pub use slo::{AlertEvent, BudgetStatus, BurnRateRule, Severity, SloEngine, SloSpec};
pub use window::{ReqEvent, WindowRing, WindowStats};

use bdb_serving::queue::{RequestOutcome, RequestRecord};
use bdb_serving::ServiceTimeModel;
use bdb_telemetry::{ArgValue, CounterTrack, LatencyHistogram, SpanEvent};
use std::time::Duration;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Sliding-window width.
    pub window: Duration,
    /// Closed windows retained by the ring.
    pub ring_capacity: usize,
    /// Windows merged for the rolling tails / exposition.
    pub rolling_windows: usize,
    /// Head/tail sampling policy.
    pub sampling: SamplingPolicy,
    /// The SLO under evaluation.
    pub spec: SloSpec,
    /// Burn-rate alert rules.
    pub rules: Vec<BurnRateRule>,
    /// Run seed (trace-id derivation).
    pub seed: u64,
}

impl ObsConfig {
    /// A sensible default configuration for a given SLO threshold:
    /// 2-second windows, a 32-window ring, rolling tails over 8
    /// windows, 5% head sampling with tail-keep at the threshold,
    /// "99% under threshold" objective, and the standard fast/slow
    /// burn-rate pair.
    pub fn default_for(threshold: Duration, seed: u64) -> Self {
        Self {
            window: Duration::from_secs(2),
            ring_capacity: 32,
            rolling_windows: 8,
            sampling: SamplingPolicy { head_rate: 0.05, slow_threshold: threshold },
            spec: SloSpec {
                name: format!("p99-under-{}ms", threshold.as_millis()),
                objective: 0.99,
                threshold,
            },
            rules: BurnRateRule::standard_pair(),
            seed,
        }
    }
}

/// Cumulative outcome totals across every ingested phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct Totals {
    /// Arrivals.
    pub offered: u64,
    /// Completions.
    pub completed: u64,
    /// Admission rejections.
    pub shed: u64,
    /// Deadline abandonments.
    pub timed_out: u64,
    /// SLO-bad events (slow completions + shed + timed out).
    pub bad: u64,
}

/// How many traces the sampler kept, by reason.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingCounts {
    /// Total kept.
    pub kept: u64,
    /// Kept by the head sampler.
    pub head: u64,
    /// Kept because they crossed the slow threshold.
    pub tail_slow: u64,
    /// Kept because they were shed or timed out.
    pub tail_error: u64,
}

/// One row of the per-window dashboard table.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Window ordinal.
    pub index: u64,
    /// Window end on the virtual timeline, seconds.
    pub end_s: f64,
    /// Arrivals / completions / drops in the window.
    pub offered: u64,
    /// Completions.
    pub completed: u64,
    /// Admission rejections.
    pub shed: u64,
    /// Deadline abandonments.
    pub timed_out: u64,
    /// Slow completions.
    pub slow: u64,
    /// Window p99, microseconds.
    pub p99_us: u64,
    /// Single-window burn rate.
    pub burn: f64,
}

/// Everything one service's observation run produced.
#[derive(Debug)]
pub struct ServiceObservation {
    /// Service name (e.g. `"Nutch Server"`).
    pub service: String,
    /// The SLO evaluated.
    pub spec: SloSpec,
    /// Window width used.
    pub window: Duration,
    /// Windows merged for the rolling views.
    pub rolling_windows: usize,
    /// Cumulative outcome totals.
    pub totals: Totals,
    /// Error-budget state at end of run.
    pub budget: BudgetStatus,
    /// Alerts fired, in firing order.
    pub alerts: Vec<AlertEvent>,
    /// Rolling latency distribution (last `rolling_windows` windows).
    pub rolling: LatencyHistogram,
    /// Whole-run latency distribution.
    pub whole: LatencyHistogram,
    /// Per-window table over the retained ring, oldest first.
    pub window_table: Vec<WindowRow>,
    /// Sampled request chains plus alert instants, ready for the
    /// Chrome trace.
    pub spans: Vec<SpanEvent>,
    /// Window rates as Chrome-trace counter tracks.
    pub tracks: Vec<CounterTrack>,
    /// Prometheus text exposition (with exemplars).
    pub prometheus: String,
    /// Sampler accounting.
    pub sampling: SamplingCounts,
    /// Chains found by [`reconstruct`] over `spans`.
    pub chains_total: u64,
    /// Of those, complete and correctly linked for their outcome.
    pub chains_complete: u64,
}

/// The online pipeline: feed phases of request records, then
/// [`ObsPipeline::finish`].
#[derive(Debug)]
pub struct ObsPipeline {
    service: String,
    config: ObsConfig,
    ring: WindowRing,
    engine: SloEngine,
    spans: Vec<SpanEvent>,
    totals: Totals,
    sampling: SamplingCounts,
}

impl ObsPipeline {
    /// A pipeline observing `service` under `config`.
    pub fn new(service: &str, config: ObsConfig) -> Self {
        let ring = WindowRing::new(config.window, config.ring_capacity, config.spec.threshold);
        let engine = SloEngine::new(config.spec.clone(), config.rules.clone(), config.window);
        Self {
            service: service.to_owned(),
            config,
            ring,
            engine,
            spans: Vec::new(),
            totals: Totals::default(),
            sampling: SamplingCounts::default(),
        }
    }

    fn alert_instant(&self, a: &AlertEvent) -> SpanEvent {
        SpanEvent {
            name: "slo-alert",
            cat: "obs",
            start_us: a.at_ns / 1_000,
            dur_us: None,
            tid: 0,
            args: vec![
                ("rule", ArgValue::Str(a.rule.clone())),
                ("severity", ArgValue::Str(a.severity.label().to_owned())),
                ("slo", ArgValue::Str(a.slo.clone())),
                ("long_burn", ArgValue::Float(a.long_burn)),
                ("short_burn", ArgValue::Float(a.short_burn)),
            ],
        }
    }

    /// Ingests one load phase: `records` from a simulation whose
    /// clock starts at `offset_ns` on the pipeline's shared virtual
    /// timeline (phases must be fed in timeline order). `model`
    /// attributes store time inside sampled handler spans.
    pub fn ingest_phase(
        &mut self,
        phase: &str,
        offset_ns: u64,
        records: &[RequestRecord],
        model: &ServiceTimeModel,
    ) {
        let salt = phase_salt(phase);
        // Requests overlap, so windowed metrics need the stream as
        // *events* in time order: arrival at arrival time, terminal
        // outcome when it happens (shed at arrival, timed-out at
        // abandonment, completed at finish).
        #[derive(Clone, Copy)]
        enum Kind {
            Arrive,
            Terminal,
        }
        let mut events: Vec<(u64, u8, u64, Kind)> = Vec::with_capacity(records.len() * 2);
        for r in records {
            events.push((r.arrival_ns, 0, r.seq, Kind::Arrive));
            let terminal = match r.outcome {
                RequestOutcome::Shed => Some(r.arrival_ns),
                RequestOutcome::TimedOut => r.start_ns,
                RequestOutcome::Completed => r.finish_ns,
                // Unfinished requests have no terminal event inside
                // the horizon; they count as offered only.
                RequestOutcome::Unfinished => None,
            };
            if let Some(t) = terminal {
                events.push((t, 1, r.seq, Kind::Terminal));
            }
        }
        events.sort_by_key(|&(t, kind, seq, _)| (t, kind, seq));

        for (t, _, seq, kind) in events {
            let r = &records[seq as usize];
            let trace = TraceId::derive(self.config.seed, salt, seq);
            let ev = match kind {
                Kind::Arrive => ReqEvent::Offered,
                Kind::Terminal => match r.outcome {
                    RequestOutcome::Shed => ReqEvent::Shed {
                        trace,
                        sampled: self.config.sampling.decide(trace, r).keep(),
                    },
                    RequestOutcome::TimedOut => ReqEvent::TimedOut {
                        trace,
                        sampled: self.config.sampling.decide(trace, r).keep(),
                    },
                    _ => ReqEvent::Completed {
                        latency_us: r.latency_ns() / 1_000,
                        trace,
                        sampled: self.config.sampling.decide(trace, r).keep(),
                    },
                },
            };
            for closed in self.ring.observe(offset_ns + t, ev) {
                for alert in self.engine.on_window_close(&closed) {
                    let instant = self.alert_instant(&alert);
                    self.spans.push(instant);
                }
            }
        }

        // Totals, sampling decisions, and span chains per request.
        for r in records {
            self.totals.offered += 1;
            match r.outcome {
                RequestOutcome::Completed => {
                    self.totals.completed += 1;
                    if r.latency_ns() >= self.config.spec.threshold.as_nanos() as u64 {
                        self.totals.bad += 1;
                    }
                }
                RequestOutcome::Shed => {
                    self.totals.shed += 1;
                    self.totals.bad += 1;
                }
                RequestOutcome::TimedOut => {
                    self.totals.timed_out += 1;
                    self.totals.bad += 1;
                }
                RequestOutcome::Unfinished => {}
            }
            let trace = TraceId::derive(self.config.seed, salt, r.seq);
            let decision = self.config.sampling.decide(trace, r);
            if !decision.keep() {
                continue;
            }
            self.sampling.kept += 1;
            match decision {
                SampleDecision::Head => self.sampling.head += 1,
                SampleDecision::TailSlow => self.sampling.tail_slow += 1,
                SampleDecision::TailError => self.sampling.tail_error += 1,
                SampleDecision::Drop => unreachable!("kept"),
            }
            self.spans.extend(synthesize_chain(&ChainInput {
                trace,
                record: r,
                decision,
                phase,
                store_fraction: model.store_fraction(trace.0),
                offset_us: offset_ns / 1_000,
            }));
        }
    }

    /// Closes the stream and assembles the full observation.
    pub fn finish(mut self) -> ServiceObservation {
        let last = self.ring.flush();
        for alert in self.engine.on_window_close(&last) {
            let instant = self.alert_instant(&alert);
            self.spans.push(instant);
        }
        let width_s = self.config.window.as_secs_f64();
        let budget_frac = self.config.spec.budget_fraction();
        let window_table: Vec<WindowRow> = self
            .ring
            .closed()
            .map(|w| WindowRow {
                index: w.index,
                end_s: (w.index + 1) as f64 * width_s,
                offered: w.offered,
                completed: w.completed,
                shed: w.shed,
                timed_out: w.timed_out,
                slow: w.slow,
                p99_us: w.hist.p99().as_micros() as u64,
                burn: if w.total() == 0 {
                    0.0
                } else {
                    (w.bad() as f64 / w.total() as f64) / budget_frac
                },
            })
            .collect();
        let views = reconstruct(&self.spans);
        let chains_complete = views.iter().filter(|v| v.complete).count() as u64;
        let rolling = self.ring.rolling_hist(self.config.rolling_windows);
        let prometheus = self.ring.prometheus_text(&self.service, self.config.rolling_windows);
        let tracks = self.ring.counter_tracks(&self.service, 0);
        ServiceObservation {
            service: self.service,
            spec: self.engine.spec().clone(),
            window: self.config.window,
            rolling_windows: self.config.rolling_windows,
            totals: self.totals,
            budget: self.engine.budget(),
            alerts: self.engine.alerts().to_vec(),
            rolling,
            whole: self.ring.whole_hist().clone(),
            window_table,
            spans: self.spans,
            tracks,
            prometheus,
            sampling: self.sampling,
            chains_total: views.len() as u64,
            chains_complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_serving::{QueuePolicy, QueueSim};

    fn model() -> ServiceTimeModel {
        ServiceTimeModel {
            base_us: 2000.0,
            sigma: 0.3,
            tail_weight: 0.02,
            tail_mult: 5.0,
            store_share: (0.4, 0.6),
        }
    }

    fn config(seed: u64) -> ObsConfig {
        ObsConfig::default_for(Duration::from_millis(50), seed)
    }

    #[test]
    fn steady_run_stays_quiet_and_reconciles() {
        let m = model();
        let times = m.sample_times(1024, 11);
        let qr = QueueSim::new(4).run(300.0, Duration::from_secs(10), &times, 11);
        let mut pipe = ObsPipeline::new("svc", config(11));
        pipe.ingest_phase("steady", 0, &qr.records, &m);
        let obs = pipe.finish();
        assert_eq!(obs.totals.offered, qr.records.len() as u64);
        assert_eq!(obs.totals.completed, qr.completed);
        assert!(obs.alerts.is_empty(), "steady load must not alert: {:?}", obs.alerts);
        assert!(obs.budget.remaining() > 0.5);
        // Every chain we kept reconstructs.
        assert!(obs.chains_total > 0);
        assert_eq!(obs.chains_total, obs.chains_complete);
        assert_eq!(obs.chains_total, obs.sampling.kept);
        // Rolling histogram ⊆ whole-run histogram.
        assert!(obs.rolling.count() <= obs.whole.count());
        bdb_telemetry::assert_prometheus_grammar(&obs.prometheus);
    }

    #[test]
    fn overload_phase_fires_the_page_alert_deterministically() {
        let run = |seed: u64| {
            let m = model();
            let times = m.sample_times(1024, seed);
            let steady = QueueSim::new(4).run(300.0, Duration::from_secs(10), &times, seed);
            let policy =
                QueuePolicy { queue_capacity: Some(64), deadline: Some(Duration::from_millis(80)) };
            let overload = QueueSim::new(4).with_policy(policy).run(
                2600.0,
                Duration::from_secs(8),
                &times,
                seed ^ 0xBEEF,
            );
            let mut pipe = ObsPipeline::new("svc", config(seed));
            pipe.ingest_phase("steady", 0, &steady.records, &m);
            pipe.ingest_phase("overload", 10_000_000_000, &overload.records, &m);
            pipe.finish()
        };
        let a = run(5);
        let pages: Vec<_> = a.alerts.iter().filter(|al| al.severity == Severity::Page).collect();
        assert_eq!(pages.len(), 1, "sustained overload fires the page rule once: {:?}", a.alerts);
        assert!(pages[0].at_ns > 10_000_000_000, "fires inside the overload phase");
        assert!(pages[0].long_burn >= 14.0 && pages[0].short_burn >= 14.0);
        // Alert instants land in the span stream.
        assert!(a.spans.iter().any(|s| s.name == "slo-alert" && s.dur_us.is_none()));

        // Same seed → identical alerts; different seed → still fires.
        let b = run(5);
        assert_eq!(a.alerts.len(), b.alerts.len());
        assert_eq!(a.alerts[0].window_index, b.alerts[0].window_index);
        let c = run(6);
        assert!(c.alerts.iter().any(|al| al.severity == Severity::Page));
    }

    #[test]
    fn rolling_tails_match_whole_run_within_one_bucket_on_steady_state() {
        let m = model();
        let times = m.sample_times(2048, 3);
        // Horizon = ring capacity × window so nothing is evicted and
        // the load is stationary throughout.
        let qr = QueueSim::new(4).run(400.0, Duration::from_secs(16), &times, 3);
        let mut cfg = config(3);
        cfg.rolling_windows = 8;
        let mut pipe = ObsPipeline::new("svc", cfg);
        pipe.ingest_phase("steady", 0, &qr.records, &m);
        let obs = pipe.finish();
        for q in [0.99, 0.999] {
            let roll = obs.rolling.percentile(q).as_micros() as u64;
            let whole = obs.whole.percentile(q).as_micros() as u64;
            // Within one log bucket: the bucket of one contains or
            // neighbors the bucket of the other.
            let (ri, wi) = (bdb_telemetry::bucket_index(roll), bdb_telemetry::bucket_index(whole));
            assert!(
                ri.abs_diff(wi) <= 1,
                "q={q}: rolling {roll}µs (bucket {ri}) vs whole {whole}µs (bucket {wi})"
            );
        }
    }

    #[test]
    fn pipeline_is_byte_deterministic() {
        let run = || {
            let m = model();
            let times = m.sample_times(512, 9);
            let qr = QueueSim::new(4).run(500.0, Duration::from_secs(6), &times, 9);
            let mut pipe = ObsPipeline::new("svc", config(9));
            pipe.ingest_phase("steady", 0, &qr.records, &m);
            pipe.finish()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.prometheus, b.prometheus);
        assert_eq!(a.spans.len(), b.spans.len());
        assert_eq!(dash::render(&a), dash::render(&b));
    }
}
