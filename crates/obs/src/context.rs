//! Per-request trace context and sampling policy.
//!
//! Every simulated request gets a 64-bit trace id derived
//! deterministically from the run seed and the request's arrival
//! sequence, so the same seed reproduces the same ids — and therefore
//! the same sampling decisions and the same kept traces — on any host.
//! Within a trace, spans carry small fixed span ids forming the causal
//! chain loadgen → queue → handler → store.

use bdb_serving::queue::{RequestOutcome, RequestRecord};
use bdb_serving::splitmix64;
use std::time::Duration;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the id for request `seq` of phase `phase_salt` under
    /// `seed`. Pure; collision-free in practice for one run's volumes.
    pub fn derive(seed: u64, phase_salt: u64, seq: u64) -> Self {
        TraceId(splitmix64(seed ^ splitmix64(phase_salt) ^ seq.wrapping_mul(0x9E37_79B9)))
    }

    /// The canonical 16-hex-digit rendering.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Stable salt for a phase name (FNV-1a), so distinct load phases of
/// one run draw from disjoint trace-id streams.
pub fn phase_salt(phase: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in phase.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a trace was kept (or that it was not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Not sampled; only aggregates observe this request.
    Drop,
    /// Kept by the seeded head sampler (decided at admission).
    Head,
    /// Kept by the tail sampler: latency crossed the slow threshold.
    TailSlow,
    /// Kept by the tail sampler: the request was shed or timed out.
    TailError,
}

impl SampleDecision {
    /// Whether the trace is retained.
    pub fn keep(self) -> bool {
        self != SampleDecision::Drop
    }

    /// Stable label for span args and reports.
    pub fn label(self) -> &'static str {
        match self {
            SampleDecision::Drop => "drop",
            SampleDecision::Head => "head",
            SampleDecision::TailSlow => "tail_slow",
            SampleDecision::TailError => "tail_error",
        }
    }
}

/// Head + tail sampling policy.
///
/// Head sampling is decided from the trace id alone (deterministic,
/// decidable at admission before the outcome is known, exactly like a
/// front-end propagating a sampled flag). Tail sampling overrides the
/// head decision after the fact for the requests worth keeping even at
/// a low head rate: anything slower than `slow_threshold` and anything
/// the service dropped.
#[derive(Debug, Clone, Copy)]
pub struct SamplingPolicy {
    /// Fraction of traces kept by the head sampler, in `[0, 1]`.
    pub head_rate: f64,
    /// Completed requests at or above this sojourn time are always
    /// kept.
    pub slow_threshold: Duration,
}

impl SamplingPolicy {
    /// Head decision for `trace`: a seeded hash coin-flip.
    pub fn head_sampled(&self, trace: TraceId) -> bool {
        let u = (splitmix64(trace.0 ^ 0x5A4D_11E5) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.head_rate
    }

    /// Final decision once the request's outcome is known. Tail
    /// reasons win over head so reports attribute keeps precisely.
    pub fn decide(&self, trace: TraceId, record: &RequestRecord) -> SampleDecision {
        match record.outcome {
            RequestOutcome::Shed | RequestOutcome::TimedOut => SampleDecision::TailError,
            RequestOutcome::Completed | RequestOutcome::Unfinished => {
                if record.latency_ns() >= self.slow_threshold.as_nanos() as u64 {
                    SampleDecision::TailSlow
                } else if self.head_sampled(trace) {
                    SampleDecision::Head
                } else {
                    SampleDecision::Drop
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: RequestOutcome, latency_ms: u64) -> RequestRecord {
        let (start_ns, finish_ns, service_ns) = match outcome {
            RequestOutcome::Shed => (None, None, 0),
            RequestOutcome::TimedOut => (Some(latency_ms * 1_000_000), None, 0),
            _ => (Some(0), Some(latency_ms * 1_000_000), latency_ms * 1_000_000),
        };
        RequestRecord {
            seq: 0,
            arrival_ns: 0,
            start_ns,
            finish_ns,
            service_ns,
            worker: start_ns.map(|_| 0),
            outcome,
        }
    }

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        let a = TraceId::derive(1, phase_salt("steady"), 0);
        assert_eq!(a, TraceId::derive(1, phase_salt("steady"), 0));
        assert_ne!(a, TraceId::derive(1, phase_salt("steady"), 1));
        assert_ne!(a, TraceId::derive(1, phase_salt("overload"), 0));
        assert_ne!(a, TraceId::derive(2, phase_salt("steady"), 0));
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn head_rate_is_roughly_honored() {
        let policy = SamplingPolicy { head_rate: 0.1, slow_threshold: Duration::from_millis(50) };
        let kept =
            (0..10_000u64).filter(|&i| policy.head_sampled(TraceId::derive(7, 0, i))).count();
        assert!((800..1200).contains(&kept), "kept {kept} of 10k at 10%");
        // Deterministic: same ids, same decisions.
        let again =
            (0..10_000u64).filter(|&i| policy.head_sampled(TraceId::derive(7, 0, i))).count();
        assert_eq!(kept, again);
    }

    #[test]
    fn tail_sampling_always_keeps_slow_and_dropped() {
        let policy = SamplingPolicy { head_rate: 0.0, slow_threshold: Duration::from_millis(50) };
        let t = TraceId(42);
        assert_eq!(
            policy.decide(t, &record(RequestOutcome::Completed, 60)),
            SampleDecision::TailSlow
        );
        assert_eq!(policy.decide(t, &record(RequestOutcome::Completed, 10)), SampleDecision::Drop);
        assert_eq!(policy.decide(t, &record(RequestOutcome::Shed, 0)), SampleDecision::TailError);
        assert_eq!(
            policy.decide(t, &record(RequestOutcome::TimedOut, 70)),
            SampleDecision::TailError
        );
        let all = SamplingPolicy { head_rate: 1.0, slow_threshold: Duration::from_millis(50) };
        assert_eq!(all.decide(t, &record(RequestOutcome::Completed, 10)), SampleDecision::Head);
    }
}
