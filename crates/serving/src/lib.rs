//! Online-service framework and servers for BigDataBench-RS.
//!
//! The paper's three online-service workloads (Table 4) are full web
//! applications: **Nutch Server** (search engine front-end), **Olio
//! Server** (a social-event site on Apache+MySQL) and **Rubis Server**
//! (an auction site on Apache+JBoss+MySQL). Their characterization
//! signature — requests per second as the user-perceivable metric, very
//! high L2 MPKI from large resident state plus a deep server software
//! stack — comes from the request loop, not from any one framework, so
//! this crate rebuilds exactly that:
//!
//! * [`Server`] — the request/handler abstraction, instrumented via
//!   [`bdb_archsim::Probe`];
//! * [`search::SearchServer`] — inverted-index lookup + ranking (Nutch);
//! * [`social::SocialServer`] — friend-feed reads and event writes
//!   (Olio);
//! * [`auction::AuctionServer`] — browse/view/bid over relational state
//!   (Rubis);
//! * [`loadgen`] — closed-loop native measurement plus an event-driven
//!   queueing simulator ([`queue`]) that converts measured service times
//!   into achieved-RPS/latency curves under the paper's offered loads
//!   (100×(1..32) requests/s, Table 6);
//! * [`latency`] — latency histograms with percentile queries
//!   (re-exported from [`bdb_telemetry`], the suite-wide telemetry
//!   substrate; the `*_instrumented` load-generator variants also emit
//!   per-request spans through a [`bdb_telemetry::SpanRecorder`]).
//!
//! # Example
//!
//! ```
//! use bdb_serving::search::SearchServer;
//! use bdb_serving::loadgen::run_closed_loop;
//!
//! let mut server = SearchServer::build(200, 42);
//! let report = run_closed_loop(&mut server, 500, 7);
//! assert_eq!(report.completed, 500);
//! assert!(report.achieved_rps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod latency;
pub mod loadgen;
pub mod model;
pub mod queue;
pub mod search;
pub mod server;
pub mod social;
pub mod trace;

pub use latency::LatencyHistogram;
pub use loadgen::{
    run_closed_loop, run_closed_loop_instrumented, run_closed_loop_sampled, run_offered_load,
    run_offered_load_instrumented, run_offered_load_shaped, PrometheusSampler, ServiceReport,
};
pub use model::{splitmix64, ServiceTimeModel};
pub use queue::{QueuePolicy, QueueSim, RequestOutcome, RequestRecord};
pub use server::Server;
pub use trace::ServingTraceModel;
