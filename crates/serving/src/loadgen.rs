//! Load generation: closed-loop native measurement and offered-load
//! simulation.

use crate::latency::LatencyHistogram;
use crate::queue::{QueuePolicy, QueueSim, RequestOutcome, RequestRecord};
use crate::server::Server;
use bdb_archsim::NullProbe;
use bdb_telemetry::{span, MetricsRegistry, SpanRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Result of one service-workload run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Workload name.
    pub name: String,
    /// Offered load in requests/s (`None` for closed-loop runs).
    pub offered_rps: Option<f64>,
    /// Requests completed.
    pub completed: u64,
    /// Achieved requests per second — the paper's RPS metric.
    pub achieved_rps: f64,
    /// Latency distribution (per-request service or sojourn times).
    pub latency: LatencyHistogram,
    /// Sum of handler result sizes (sanity signal that work happened).
    pub result_units: u64,
    /// Requests shed at admission by a bounded queue (offered-load runs
    /// with a [`QueuePolicy`]; always zero for closed-loop runs).
    pub shed: u64,
    /// Requests abandoned after waiting past the policy deadline
    /// (always zero for closed-loop runs).
    pub timed_out: u64,
    /// Per-request outcome stream in arrival order (see
    /// [`RequestRecord`]). Offered-load runs forward the simulator's
    /// stream; closed-loop runs synthesize one `Completed` record per
    /// request from the measured service times. The aggregate fields
    /// above are unchanged and remain derivable from this stream.
    pub records: Vec<RequestRecord>,
}

impl ServiceReport {
    /// Whether the service saturated (achieved materially below offered).
    pub fn saturated(&self) -> bool {
        self.offered_rps.is_some_and(|o| self.achieved_rps < o * 0.9)
    }
}

/// Captures Prometheus text-format expositions of a [`MetricsRegistry`]
/// at a fixed request cadence, so a load run leaves behind a series of
/// scrape-like snapshots rather than only one final state.
#[derive(Debug)]
pub struct PrometheusSampler {
    every: usize,
    seen: usize,
    snapshots: Vec<String>,
}

impl PrometheusSampler {
    /// A sampler that scrapes after every `requests` completed requests
    /// (clamped to at least 1).
    pub fn every(requests: usize) -> Self {
        Self { every: requests.max(1), seen: 0, snapshots: Vec::new() }
    }

    /// Counts one completed request, scraping `metrics` when the
    /// cadence comes due.
    pub fn tick(&mut self, metrics: &MetricsRegistry) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.snapshots.push(metrics.prometheus_text());
        }
    }

    /// The expositions captured so far, in scrape order.
    pub fn snapshots(&self) -> &[String] {
        &self.snapshots
    }

    /// Takes one final scrape of `metrics` and returns every captured
    /// exposition. The last entry always reflects the end-of-run state.
    pub fn finish(mut self, metrics: &MetricsRegistry) -> Vec<String> {
        self.snapshots.push(metrics.prometheus_text());
        self.snapshots
    }
}

/// Runs `requests` back-to-back requests (closed loop, zero think time)
/// natively, measuring true service times.
pub fn run_closed_loop<S: Server>(server: &mut S, requests: usize, seed: u64) -> ServiceReport {
    run_closed_loop_instrumented(
        server,
        requests,
        seed,
        &SpanRecorder::disabled(),
        &MetricsRegistry::new(),
    )
}

/// [`run_closed_loop`] with telemetry: each request becomes a span on
/// `telemetry` and its service time also feeds the
/// `serving.request_us` histogram in `metrics`.
pub fn run_closed_loop_instrumented<S: Server>(
    server: &mut S,
    requests: usize,
    seed: u64,
    telemetry: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServiceReport {
    closed_loop_impl(server, requests, seed, telemetry, metrics, None)
}

/// [`run_closed_loop_instrumented`] with periodic Prometheus scrapes:
/// `sampler` ticks once per completed request, capturing text-format
/// expositions of `metrics` at its cadence.
pub fn run_closed_loop_sampled<S: Server>(
    server: &mut S,
    requests: usize,
    seed: u64,
    telemetry: &SpanRecorder,
    metrics: &MetricsRegistry,
    sampler: &mut PrometheusSampler,
) -> ServiceReport {
    closed_loop_impl(server, requests, seed, telemetry, metrics, Some(sampler))
}

fn closed_loop_impl<S: Server>(
    server: &mut S,
    requests: usize,
    seed: u64,
    telemetry: &SpanRecorder,
    metrics: &MetricsRegistry,
    mut sampler: Option<&mut PrometheusSampler>,
) -> ServiceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latency = LatencyHistogram::new();
    let mut result_units = 0u64;
    let mut records = Vec::with_capacity(requests);
    let mut clock_ns = 0u64;
    let instrumented = telemetry.is_enabled() || sampler.is_some();
    let request_us =
        if instrumented { Some(metrics.histogram("serving.request_us")) } else { None };
    let completed_requests = metrics.counter("serving.requests");
    let _run = span!(telemetry, "serving", "closed-loop", requests = requests);
    let start = Instant::now();
    for i in 0..requests {
        let req = server.sample_request(&mut rng);
        let mut s = span!(telemetry, "serving", "request", seq = i);
        let t0 = Instant::now();
        let units = server.handle(&req, &mut NullProbe) as u64;
        let service_time = t0.elapsed();
        s.arg("units", units);
        drop(s);
        result_units += units;
        latency.record(service_time);
        // Closed loop = one worker, zero think time: each request
        // arrives the instant the previous one finishes.
        let service_ns = service_time.as_nanos() as u64;
        records.push(RequestRecord {
            seq: i as u64,
            arrival_ns: clock_ns,
            start_ns: Some(clock_ns),
            finish_ns: Some(clock_ns + service_ns),
            service_ns,
            worker: Some(0),
            outcome: RequestOutcome::Completed,
        });
        clock_ns += service_ns;
        if let Some(h) = &request_us {
            h.record(service_time);
        }
        if instrumented {
            // Incremented per request (not once at the end) so periodic
            // scrapes observe the counter advancing monotonically.
            completed_requests.inc();
        }
        if let Some(sampler) = sampler.as_deref_mut() {
            sampler.tick(metrics);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    ServiceReport {
        name: server.name().to_owned(),
        offered_rps: None,
        completed: requests as u64,
        achieved_rps: if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 },
        latency,
        result_units,
        shed: 0,
        timed_out: 0,
        records,
    }
}

/// Measures the server's empirical service-time distribution natively
/// (over `samples` requests), then simulates Poisson arrivals at
/// `offered_rps` for `horizon` through [`QueueSim`] with `workers`
/// parallel servers.
///
/// This mirrors the paper's experiment (Table 6: 100×(1..32) req/s
/// offered to each service) without measuring the host machine's
/// timer resolution at low loads.
pub fn run_offered_load<S: Server>(
    server: &mut S,
    offered_rps: f64,
    horizon: Duration,
    workers: u32,
    samples: usize,
    seed: u64,
) -> ServiceReport {
    run_offered_load_instrumented(
        server,
        offered_rps,
        horizon,
        workers,
        samples,
        seed,
        &SpanRecorder::disabled(),
        &MetricsRegistry::new(),
    )
}

/// [`run_offered_load`] with telemetry: the native sampling phase and
/// the queueing simulation each become spans, and measured service
/// times feed the `serving.request_us` histogram in `metrics`.
#[allow(clippy::too_many_arguments)]
pub fn run_offered_load_instrumented<S: Server>(
    server: &mut S,
    offered_rps: f64,
    horizon: Duration,
    workers: u32,
    samples: usize,
    seed: u64,
    telemetry: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServiceReport {
    run_offered_load_shaped(
        server,
        offered_rps,
        horizon,
        workers,
        samples,
        seed,
        QueuePolicy::default(),
        telemetry,
        metrics,
    )
}

/// [`run_offered_load_instrumented`] with overload protection: the
/// queueing simulation runs under `policy` (bounded queue, deadline),
/// and drops are surfaced in the report and as the `serving.shed` /
/// `serving.timed_out` counters in `metrics`.
#[allow(clippy::too_many_arguments)]
pub fn run_offered_load_shaped<S: Server>(
    server: &mut S,
    offered_rps: f64,
    horizon: Duration,
    workers: u32,
    samples: usize,
    seed: u64,
    policy: QueuePolicy,
    telemetry: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServiceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut service_times = Vec::with_capacity(samples.max(1));
    let mut result_units = 0u64;
    let request_us =
        if telemetry.is_enabled() { Some(metrics.histogram("serving.request_us")) } else { None };
    {
        let _sampling =
            span!(telemetry, "serving", "service-time-sampling", samples = samples.max(1));
        for i in 0..samples.max(1) {
            let req = server.sample_request(&mut rng);
            let _s = span!(telemetry, "serving", "request", seq = i);
            let t0 = Instant::now();
            result_units += server.handle(&req, &mut NullProbe) as u64;
            // Guard against timer quantization on very fast handlers.
            let service_time = t0.elapsed().max(Duration::from_nanos(200));
            service_times.push(service_time);
            if let Some(h) = &request_us {
                h.record(service_time);
            }
        }
    }
    let _queueing = span!(telemetry, "serving", "queue-simulation", offered_rps = offered_rps);
    let sim = QueueSim::new(workers).with_policy(policy);
    let qr = sim.run(offered_rps, horizon, &service_times, seed ^ 0x51AB);
    metrics.counter("serving.shed").add(qr.shed);
    metrics.counter("serving.timed_out").add(qr.timed_out);
    ServiceReport {
        name: server.name().to_owned(),
        offered_rps: Some(offered_rps),
        completed: qr.completed,
        achieved_rps: qr.achieved_rps,
        latency: qr.latency,
        result_units,
        shed: qr.shed,
        timed_out: qr.timed_out,
        records: qr.records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::Probe;
    use rand::Rng;

    /// A server with a deterministic ~50µs of spin work per request.
    struct Spin;
    impl Server for Spin {
        type Request = u32;
        fn name(&self) -> &str {
            "spin"
        }
        fn sample_request(&self, rng: &mut StdRng) -> u32 {
            rng.gen_range(1000..2000)
        }
        fn handle<P: Probe + ?Sized>(&mut self, request: &u32, _p: &mut P) -> usize {
            let mut acc = 0u64;
            for i in 0..*request * 20 {
                acc = acc.wrapping_mul(31).wrapping_add(i as u64);
            }
            (acc % 7) as usize + 1
        }
    }

    #[test]
    fn closed_loop_measures_throughput() {
        let mut s = Spin;
        let r = run_closed_loop(&mut s, 200, 1);
        assert_eq!(r.completed, 200);
        assert!(r.achieved_rps > 100.0, "spin server is fast: {}", r.achieved_rps);
        assert!(r.result_units >= 200);
        assert!(r.offered_rps.is_none());
        assert!(!r.saturated());
    }

    #[test]
    fn offered_load_tracks_then_saturates() {
        let mut s = Spin;
        // Measure capacity via closed loop first.
        let capacity = run_closed_loop(&mut s, 500, 2).achieved_rps;
        let light = run_offered_load(&mut s, capacity * 0.05, Duration::from_secs(5), 1, 200, 3);
        assert!(
            (light.achieved_rps - capacity * 0.05).abs() / (capacity * 0.05) < 0.15,
            "light load achieves offered: {} vs {}",
            light.achieved_rps,
            capacity * 0.05
        );
        let heavy = run_offered_load(&mut s, capacity * 4.0, Duration::from_secs(5), 1, 200, 3);
        assert!(heavy.saturated(), "4x capacity must saturate");
        assert!(heavy.achieved_rps < capacity * 1.6);
    }

    #[test]
    fn shaped_load_reports_and_counts_drops() {
        let mut s = Spin;
        let capacity = run_closed_loop(&mut s, 500, 2).achieved_rps;
        let policy =
            QueuePolicy { queue_capacity: Some(4), deadline: Some(Duration::from_millis(10)) };
        let metrics = MetricsRegistry::new();
        let r = run_offered_load_shaped(
            &mut s,
            capacity * 4.0,
            Duration::from_secs(5),
            1,
            200,
            3,
            policy,
            &SpanRecorder::disabled(),
            &metrics,
        );
        assert!(r.shed > 0, "4x overload against a 4-deep queue must shed");
        assert_eq!(metrics.counter("serving.shed").get(), r.shed);
        assert_eq!(metrics.counter("serving.timed_out").get(), r.timed_out);
        // Whatever is admitted completes within the bounded wait.
        assert!(r.completed > 0);

        // The permissive default drops nothing and the instrumented
        // entry point still behaves exactly as before.
        let clean = run_offered_load(&mut s, capacity * 0.05, Duration::from_secs(2), 1, 100, 3);
        assert_eq!((clean.shed, clean.timed_out), (0, 0));
    }

    #[test]
    fn reports_carry_request_records() {
        let mut s = Spin;
        let closed = run_closed_loop(&mut s, 40, 5);
        assert_eq!(closed.records.len(), 40);
        assert!(closed
            .records
            .iter()
            .all(|r| r.outcome == crate::queue::RequestOutcome::Completed));
        // Arrivals chain back-to-back on the synthetic closed-loop clock.
        for pair in closed.records.windows(2) {
            assert_eq!(pair[1].arrival_ns, pair[0].finish_ns.unwrap());
        }

        let offered = run_offered_load(&mut s, 50.0, Duration::from_secs(2), 2, 100, 5);
        assert!(!offered.records.is_empty());
        let done = offered
            .records
            .iter()
            .filter(|r| r.outcome == crate::queue::RequestOutcome::Completed)
            .count() as u64;
        assert_eq!(done, offered.completed);
    }

    #[test]
    fn instrumented_loop_emits_request_spans() {
        let mut s = Spin;
        let telemetry = SpanRecorder::enabled();
        let metrics = MetricsRegistry::new();
        let r = run_closed_loop_instrumented(&mut s, 25, 1, &telemetry, &metrics);
        assert_eq!(r.completed, 25);
        let events = telemetry.events();
        let requests = events.iter().filter(|e| e.name == "request").count();
        assert_eq!(requests, 25, "one span per request");
        assert!(events.iter().any(|e| e.name == "closed-loop"));
        assert_eq!(metrics.histogram("serving.request_us").snapshot().count(), 25);
        assert_eq!(metrics.counter("serving.requests").get(), 25);
    }

    #[test]
    fn sampled_loop_scrapes_prometheus_periodically() {
        let mut s = Spin;
        let telemetry = SpanRecorder::enabled();
        let metrics = MetricsRegistry::new();
        let mut sampler = PrometheusSampler::every(10);
        let r = run_closed_loop_sampled(&mut s, 25, 1, &telemetry, &metrics, &mut sampler);
        assert_eq!(r.completed, 25);
        // Scrapes after requests 10 and 20, plus the final one.
        let snapshots = sampler.finish(&metrics);
        assert_eq!(snapshots.len(), 3);
        for (text, want) in snapshots.iter().zip(["10", "20", "25"]) {
            assert!(
                text.contains(&format!("serving_requests {want}")),
                "scrape should show {want} requests: {text}"
            );
            assert!(text.contains("# TYPE serving_request_us histogram"));
        }
        // The request counter advances monotonically across scrapes.
        assert_eq!(metrics.counter("serving.requests").get(), 25);
    }

    #[test]
    fn sampler_without_telemetry_still_observes_metrics() {
        let mut s = Spin;
        let metrics = MetricsRegistry::new();
        let mut sampler = PrometheusSampler::every(100);
        run_closed_loop_sampled(&mut s, 30, 1, &SpanRecorder::disabled(), &metrics, &mut sampler);
        let snapshots = sampler.finish(&metrics);
        assert_eq!(snapshots.len(), 1, "cadence longer than the run: final scrape only");
        assert!(snapshots[0].contains("serving_requests 30"));
    }
}
