//! The server abstraction shared by the three service workloads.

use bdb_archsim::Probe;
use rand::rngs::StdRng;

/// A request-serving application.
///
/// Implementations own their state (index, social graph, auction
/// tables); the load generators in [`crate::loadgen`] drive them with
/// requests drawn from [`Server::sample_request`] and measure service
/// times or micro-architectural behaviour via the probe.
pub trait Server {
    /// One request.
    type Request: Clone;

    /// Human-readable workload name (e.g. `"Nutch Server"`).
    fn name(&self) -> &str;

    /// Draws a request from the workload's request mix.
    fn sample_request(&self, rng: &mut StdRng) -> Self::Request;

    /// Handles one request, returning a result-size indicator (hits,
    /// rows, bytes — used only for sanity checks and reporting).
    fn handle<P: Probe + ?Sized>(&mut self, request: &Self::Request, probe: &mut P) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::NullProbe;
    use rand::SeedableRng;

    /// A trivial echo server for trait-level tests.
    struct Echo;
    impl Server for Echo {
        type Request = u64;
        fn name(&self) -> &str {
            "echo"
        }
        fn sample_request(&self, rng: &mut StdRng) -> u64 {
            use rand::Rng;
            rng.gen_range(0..100)
        }
        fn handle<P: Probe + ?Sized>(&mut self, request: &u64, probe: &mut P) -> usize {
            probe.int_ops(1);
            *request as usize
        }
    }

    #[test]
    fn trait_is_usable() {
        let mut s = Echo;
        let mut rng = StdRng::seed_from_u64(0);
        let req = s.sample_request(&mut rng);
        let result = s.handle(&req, &mut NullProbe);
        assert_eq!(result as u64, req);
        assert_eq!(s.name(), "echo");
    }
}
