//! The search-engine front-end (Nutch Server stand-in).
//!
//! Nutch serves queries from an inverted index built over crawled
//! pages. The stand-in builds an inverted index over synthetic
//! documents with a Zipfian term distribution, and serves ranked
//! conjunctive queries: postings lookup, intersection, tf scoring,
//! top-k selection — the per-request work a search front-end does.

use crate::server::Server;
use crate::trace::ServingTraceModel;
use bdb_archsim::Probe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A search query of 1–3 term ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest {
    /// Terms to AND together.
    pub terms: Vec<u32>,
    /// Results requested.
    pub top_k: usize,
}

/// The inverted-index server.
#[derive(Debug)]
pub struct SearchServer {
    /// term -> postings (doc id, term frequency), sorted by doc id.
    index: HashMap<u32, Vec<(u32, u16)>>,
    vocab_size: u32,
    docs: u32,
    trace: Option<ServingTraceModel>,
    queries_served: u64,
}

impl SearchServer {
    /// Builds an index over `docs` synthetic documents (Zipfian terms,
    /// ~120 terms per document, 5000-term vocabulary scaled with corpus
    /// size).
    pub fn build(docs: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab_size = (docs * 8).clamp(512, 200_000);
        let mut index: HashMap<u32, Vec<(u32, u16)>> = HashMap::new();
        for doc in 0..docs {
            let terms = rng.gen_range(60..180);
            let mut tf: HashMap<u32, u16> = HashMap::new();
            for _ in 0..terms {
                let term = zipf_term(&mut rng, vocab_size);
                *tf.entry(term).or_insert(0) += 1;
            }
            for (term, freq) in tf {
                index.entry(term).or_default().push((doc, freq));
            }
        }
        for postings in index.values_mut() {
            postings.sort_unstable_by_key(|&(d, _)| d);
        }
        Self { index, vocab_size, docs, trace: None, queries_served: 0 }
    }

    /// Enables request-path instrumentation.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(ServingTraceModel::new());
    }

    /// Pre-touches the modeled server code (ramp-up); no-op without
    /// tracing.
    pub fn warm_trace<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        if let Some(t) = self.trace.as_mut() {
            t.warm(probe);
        }
    }

    /// The modeled service-time distribution for deterministic
    /// (host-independent) runs: moderate body spread, occasional long
    /// postings-intersection outliers, index lookups roughly half the
    /// request.
    pub fn service_model(&self) -> crate::model::ServiceTimeModel {
        crate::model::ServiceTimeModel {
            base_us: 2500.0,
            sigma: 0.35,
            tail_weight: 0.02,
            tail_mult: 6.0,
            store_share: (0.35, 0.55),
        }
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u32 {
        self.docs
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.index.len()
    }

    /// Queries served so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Executes a query, returning ranked `(doc, score)` hits.
    pub fn search<P: Probe + ?Sized>(
        &mut self,
        request: &SearchRequest,
        probe: &mut P,
    ) -> Vec<(u32, u32)> {
        self.queries_served += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_request(probe, self.queries_served);
        }
        // Gather postings, shortest first for cheap intersection.
        let mut lists: Vec<&[(u32, u16)]> = Vec::with_capacity(request.terms.len());
        for &term in &request.terms {
            let postings = self.index.get(&term).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(t) = self.trace.as_mut() {
                t.data_access(probe, term as u64, (postings.len() * 6).min(65_535) as u32, false);
            }
            probe.int_ops(4);
            lists.push(postings);
        }
        if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
            if let Some(t) = self.trace.as_mut() {
                t.render(probe, 256);
            }
            return Vec::new();
        }
        lists.sort_by_key(|l| l.len());
        // Intersect by galloping through the shortest list.
        let mut hits: Vec<(u32, u32)> = Vec::new();
        'docs: for &(doc, tf0) in lists[0] {
            let mut score = tf0 as u32;
            for other in &lists[1..] {
                probe.int_ops(8);
                probe.branch(doc % 2 == 0);
                match other.binary_search_by_key(&doc, |&(d, _)| d) {
                    Ok(pos) => score += other[pos].1 as u32,
                    Err(_) => continue 'docs,
                }
            }
            hits.push((doc, score));
        }
        // Rank.
        hits.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(request.top_k);
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 64 + hits.len() * 64);
        }
        hits
    }
}

/// Zipf-ish term sampler (head terms common, long tail).
fn zipf_term(rng: &mut StdRng, vocab: u32) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    // Inverse-CDF power law with exponent ~1.
    ((vocab as f64).powf(u) as u32).min(vocab - 1)
}

impl Server for SearchServer {
    type Request = SearchRequest;

    fn name(&self) -> &str {
        "Nutch Server"
    }

    fn sample_request(&self, rng: &mut StdRng) -> SearchRequest {
        let n = rng.gen_range(1..=3);
        let terms = (0..n).map(|_| zipf_term(rng, self.vocab_size)).collect();
        SearchRequest { terms, top_k: 10 }
    }

    fn handle<P: Probe + ?Sized>(&mut self, request: &SearchRequest, probe: &mut P) -> usize {
        self.search(request, probe).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::NullProbe;

    #[test]
    fn index_covers_vocabulary_head() {
        let s = SearchServer::build(200, 1);
        assert_eq!(s.doc_count(), 200);
        assert!(s.term_count() > 100);
    }

    #[test]
    fn single_common_term_finds_many_docs() {
        let mut s = SearchServer::build(500, 2);
        // Term 1 is near the head of the Zipf distribution.
        let hits = s.search(&SearchRequest { terms: vec![1], top_k: 1000 }, &mut NullProbe);
        assert!(hits.len() > 50, "common term hits {} docs", hits.len());
    }

    #[test]
    fn results_are_ranked_descending() {
        let mut s = SearchServer::build(500, 3);
        let hits = s.search(&SearchRequest { terms: vec![2], top_k: 50 }, &mut NullProbe);
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn intersection_is_subset() {
        let mut s = SearchServer::build(500, 4);
        let a = s.search(&SearchRequest { terms: vec![1], top_k: 10_000 }, &mut NullProbe);
        let ab = s.search(&SearchRequest { terms: vec![1, 2], top_k: 10_000 }, &mut NullProbe);
        let a_docs: std::collections::HashSet<u32> = a.iter().map(|&(d, _)| d).collect();
        assert!(ab.iter().all(|&(d, _)| a_docs.contains(&d)));
        assert!(ab.len() <= a.len());
    }

    #[test]
    fn missing_term_returns_empty() {
        let mut s = SearchServer::build(50, 5);
        let hits = s.search(&SearchRequest { terms: vec![999_999], top_k: 10 }, &mut NullProbe);
        assert!(hits.is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let mut s = SearchServer::build(500, 6);
        let hits = s.search(&SearchRequest { terms: vec![0], top_k: 5 }, &mut NullProbe);
        assert!(hits.len() <= 5);
    }

    #[test]
    fn served_as_a_server() {
        let mut s = SearchServer::build(100, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let req = s.sample_request(&mut rng);
            s.handle(&req, &mut NullProbe);
        }
        assert_eq!(s.queries_served(), 20);
    }

    #[test]
    fn traced_search_records_events() {
        use bdb_archsim::CountingProbe;
        let mut s = SearchServer::build(100, 9);
        s.enable_tracing();
        let mut probe = CountingProbe::default();
        s.search(&SearchRequest { terms: vec![1, 2], top_k: 10 }, &mut probe);
        assert!(probe.mix().other > 0, "server stack recorded");
        assert!(probe.mix().loads > 0);
    }
}
