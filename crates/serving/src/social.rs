//! The social-event site (Olio Server stand-in).
//!
//! Olio is a Web-2.0 events application: users browse a feed of their
//! friends' events, create events, and RSVP. The stand-in keeps a
//! friendship graph and per-user event timelines, and serves the same
//! request mix; the feed request — gather friends' recent events, merge
//! by time, page the top 20 — dominates, just as page views dominate
//! Olio's.

use crate::server::Server;
use crate::trace::ServingTraceModel;
use bdb_archsim::Probe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One social-site request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocialRequest {
    /// View `user`'s feed (friends' recent events).
    Feed(u32),
    /// `user` posts a new event.
    PostEvent(u32),
    /// `user` RSVPs to event `event`.
    Rsvp(u32, u64),
}

/// One event.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    id: u64,
    author: u32,
    /// Logical timestamp (monotone).
    time: u64,
    rsvps: u32,
}

/// The social server.
#[derive(Debug)]
pub struct SocialServer {
    /// Friend adjacency, mutual.
    friends: Vec<Vec<u32>>,
    /// Per-user recent events, newest last (bounded ring).
    timelines: Vec<Vec<Event>>,
    clock: u64,
    next_event: u64,
    trace: Option<ServingTraceModel>,
    requests: u64,
}

const TIMELINE_CAP: usize = 50;
const FEED_SIZE: usize = 20;

impl SocialServer {
    /// Builds a site of `users` users with ~`avg_friends` mutual friends
    /// each and a few seed events per user.
    pub fn build(users: u32, avg_friends: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut friends: Vec<Vec<u32>> = vec![Vec::new(); users as usize];
        let target_edges = users as u64 * avg_friends as u64 / 2;
        for _ in 0..target_edges {
            let a = rng.gen_range(0..users);
            let b = rng.gen_range(0..users);
            if a != b && !friends[a as usize].contains(&b) {
                friends[a as usize].push(b);
                friends[b as usize].push(a);
            }
        }
        let mut server = Self {
            friends,
            timelines: vec![Vec::new(); users as usize],
            clock: 0,
            next_event: 1,
            trace: None,
            requests: 0,
        };
        for u in 0..users {
            for _ in 0..3 {
                server.post_event_inner(u);
            }
        }
        server
    }

    /// Enables request-path instrumentation.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(ServingTraceModel::new());
    }

    /// Pre-touches the modeled server code (ramp-up); no-op without
    /// tracing.
    pub fn warm_trace<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        if let Some(t) = self.trace.as_mut() {
            t.warm(probe);
        }
    }

    /// The modeled service-time distribution for deterministic
    /// (host-independent) runs: wide body (feed size varies with
    /// friend count), fan-out tail, store-heavy (feed merge reads
    /// dominate).
    pub fn service_model(&self) -> crate::model::ServiceTimeModel {
        crate::model::ServiceTimeModel {
            base_us: 1800.0,
            sigma: 0.45,
            tail_weight: 0.03,
            tail_mult: 5.0,
            store_share: (0.45, 0.70),
        }
    }

    /// Number of users.
    pub fn users(&self) -> u32 {
        self.friends.len() as u32
    }

    /// Total events posted.
    pub fn event_count(&self) -> u64 {
        self.next_event - 1
    }

    fn post_event_inner(&mut self, user: u32) -> u64 {
        self.clock += 1;
        let id = self.next_event;
        self.next_event += 1;
        let timeline = &mut self.timelines[user as usize];
        timeline.push(Event { id, author: user, time: self.clock, rsvps: 0 });
        if timeline.len() > TIMELINE_CAP {
            timeline.remove(0);
        }
        id
    }

    /// Gathers the newest `FEED_SIZE` events of `user`'s friends.
    pub fn feed<P: Probe + ?Sized>(&mut self, user: u32, probe: &mut P) -> Vec<u64> {
        let user = user % self.users();
        let friend_list = self.friends[user as usize].clone();
        let mut events: Vec<(u64, u64)> = Vec::new(); // (time, id)
        for f in friend_list {
            if let Some(t) = self.trace.as_mut() {
                // One profile row + timeline page per friend.
                t.data_access(probe, f as u64, 128, false);
                t.data_access(probe, (f as u64) << 20, 512, false);
            }
            probe.int_ops(6);
            for e in self.timelines[f as usize].iter().rev().take(10) {
                events.push((e.time, e.id));
                probe.int_ops(2);
            }
        }
        events.sort_unstable_by(|a, b| b.cmp(a));
        events.truncate(FEED_SIZE);
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 256 + events.len() * 128);
        }
        events.into_iter().map(|(_, id)| id).collect()
    }

    /// Posts an event for `user`, returning its id.
    pub fn post<P: Probe + ?Sized>(&mut self, user: u32, probe: &mut P) -> u64 {
        let user = user % self.users();
        if let Some(t) = self.trace.as_mut() {
            t.data_access(probe, user as u64, 256, true);
        }
        probe.int_ops(10);
        let id = self.post_event_inner(user);
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 256);
        }
        id
    }

    /// RSVPs `user` to `event` (searches the author's timeline).
    /// Returns whether the event was found.
    pub fn rsvp<P: Probe + ?Sized>(&mut self, user: u32, event: u64, probe: &mut P) -> bool {
        let _ = user;
        // Event ids are dense; locate by id → author guess via modulo
        // (events are spread around), then linear probe of timelines.
        let users = self.users() as u64;
        let start = (event % users) as usize;
        let mut found = false;
        for off in 0..self.timelines.len().min(8) {
            let idx = (start + off) % self.timelines.len();
            if let Some(t) = self.trace.as_mut() {
                t.data_access(probe, idx as u64, 256, false);
            }
            probe.int_ops(4);
            if let Some(e) = self.timelines[idx].iter_mut().find(|e| e.id == event) {
                e.rsvps += 1;
                found = true;
                if let Some(t) = self.trace.as_mut() {
                    t.data_access(probe, event, 64, true);
                }
                break;
            }
        }
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 128);
        }
        found
    }
}

impl Server for SocialServer {
    type Request = SocialRequest;

    fn name(&self) -> &str {
        "Olio Server"
    }

    fn sample_request(&self, rng: &mut StdRng) -> SocialRequest {
        let user = rng.gen_range(0..self.users());
        match rng.gen_range(0..100) {
            0..=59 => SocialRequest::Feed(user),
            60..=84 => SocialRequest::PostEvent(user),
            _ => SocialRequest::Rsvp(user, rng.gen_range(1..self.next_event.max(2))),
        }
    }

    fn handle<P: Probe + ?Sized>(&mut self, request: &SocialRequest, probe: &mut P) -> usize {
        self.requests += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_request(probe, self.requests);
        }
        match request {
            SocialRequest::Feed(u) => self.feed(*u, probe).len(),
            SocialRequest::PostEvent(u) => {
                self.post(*u, probe);
                1
            }
            SocialRequest::Rsvp(u, e) => self.rsvp(*u, *e, probe) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::NullProbe;

    #[test]
    fn build_populates_friends_and_events() {
        let s = SocialServer::build(100, 10, 1);
        assert_eq!(s.users(), 100);
        assert_eq!(s.event_count(), 300, "3 seed events per user");
        let avg: f64 = s.friends.iter().map(Vec::len).sum::<usize>() as f64 / s.users() as f64;
        assert!(avg > 5.0 && avg < 15.0, "avg friends {avg}");
    }

    #[test]
    fn feed_returns_friends_events_newest_first() {
        let mut s = SocialServer::build(50, 8, 2);
        let new_id = s.post(s.friends[0][0], &mut NullProbe);
        let feed = s.feed(0, &mut NullProbe);
        assert!(!feed.is_empty());
        assert_eq!(feed[0], new_id, "newest friend event first");
        assert!(feed.len() <= FEED_SIZE);
    }

    #[test]
    fn feed_excludes_non_friends() {
        let mut s = SocialServer::build(10, 2, 3);
        let friend_set: std::collections::HashSet<u32> = s.friends[0].iter().copied().collect();
        let feed = s.feed(0, &mut NullProbe);
        for id in feed {
            let author =
                s.timelines.iter().flatten().find(|e| e.id == id).map(|e| e.author).unwrap();
            assert!(friend_set.contains(&author));
        }
    }

    #[test]
    fn post_grows_timeline_bounded() {
        let mut s = SocialServer::build(5, 2, 4);
        for _ in 0..100 {
            s.post(0, &mut NullProbe);
        }
        assert!(s.timelines[0].len() <= TIMELINE_CAP);
        assert_eq!(s.event_count(), 5 * 3 + 100);
    }

    #[test]
    fn rsvp_finds_recent_event() {
        let mut s = SocialServer::build(20, 4, 5);
        let id = s.post(3, &mut NullProbe);
        // rsvp searches timelines near id % users; make sure a direct hit
        // on the right timeline works.
        let found = (0..20).any(|_| s.rsvp(1, id, &mut NullProbe));
        // The modular search may legitimately miss; at minimum it must
        // not corrupt state and must report a bool.
        let _ = found;
        assert_eq!(s.event_count(), 20 * 3 + 1);
    }

    #[test]
    fn request_mix_is_dominated_by_feeds() {
        let s = SocialServer::build(10, 2, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut feeds = 0;
        for _ in 0..1000 {
            if matches!(s.sample_request(&mut rng), SocialRequest::Feed(_)) {
                feeds += 1;
            }
        }
        assert!((500..700).contains(&feeds), "feeds {feeds}");
    }

    #[test]
    fn handles_all_request_kinds() {
        let mut s = SocialServer::build(30, 5, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let req = s.sample_request(&mut rng);
            s.handle(&req, &mut NullProbe);
        }
        assert!(s.requests >= 200);
    }

    #[test]
    fn traced_feed_records_state_traffic() {
        use bdb_archsim::CountingProbe;
        let mut s = SocialServer::build(50, 10, 10);
        s.enable_tracing();
        let mut probe = CountingProbe::default();
        s.handle(&SocialRequest::Feed(0), &mut probe);
        assert!(probe.mix().loads > 0);
        assert!(probe.mix().other > 0);
    }
}
