//! Server-stack instrumentation model.
//!
//! The paper's services run on Apache + JBoss/MySQL — the deepest
//! software stacks in the suite, which is why online services show the
//! highest L2 cache MPKI (average 40, Section 6.3.2). The model gives
//! traced request handlers that stack: HTTP parsing, session handling,
//! app-server dispatch, ORM/SQL layers, plus large session/page-cache
//! heap areas touched per request.

use bdb_archsim::layout::{regions, splitmix64};
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};

/// Code and heap model for one server process.
#[derive(Debug, Clone)]
pub struct ServingTraceModel {
    stack: SoftwareStack,
    session_base: u64,
    session_span: u64,
    page_cache_base: u64,
    page_cache_span: u64,
    response_base: u64,
    response_cursor: u64,
    event: u64,
}

impl ServingTraceModel {
    /// Builds the standard model: ~2.5 MiB of server code across five
    /// layers, session/page-cache areas exceeding L2 but fitting L3, and
    /// a reused response buffer.
    pub fn new() -> Self {
        let mut asp = AddressSpace::with_bases(regions::SERVING_HEAP, regions::SERVING_CODE);
        let stack = SoftwareStack::builder("app-server")
            .layer(&mut asp, "http-frontend", 6, 512, 128, 4096, 2, 3)
            .layer(&mut asp, "session", 4, 512, 64, 4096, 1, 4)
            .layer(&mut asp, "app-dispatch", 8, 512, 192, 4096, 2, 3)
            .layer(&mut asp, "orm-sql", 6, 512, 128, 4096, 2, 4)
            .layer(&mut asp, "template-render", 4, 512, 96, 4096, 1, 4)
            .build();
        let session_span = 3 << 20;
        let session_base = asp.alloc(session_span, "sessions");
        let page_cache_span = 6 << 20;
        let page_cache_base = asp.alloc(page_cache_span, "page-cache");
        let response_base = asp.alloc(64 << 10, "response-buffer");
        Self {
            stack,
            session_base,
            session_span,
            page_cache_base,
            page_cache_span,
            response_base,
            response_cursor: 0,
            event: 0,
        }
    }

    /// Static code footprint in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// One request entering the server: full stack traversal plus a
    /// session-state read/write.
    pub fn on_request<P: Probe + ?Sized>(&mut self, probe: &mut P, session_id: u64) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event);
        let s = self.session_base + splitmix64(session_id) % self.session_span;
        probe.load(s & !63, 256);
        probe.store(s & !63, 64);
        probe.int_ops(60);
        probe.branch(session_id.is_multiple_of(3));
    }

    /// Application data access of `bytes` at a key-derived location (DB
    /// row, index node, cached page).
    pub fn data_access<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        key: u64,
        bytes: u32,
        write: bool,
    ) {
        let addr = self.page_cache_base + splitmix64(key) % self.page_cache_span;
        if write {
            probe.store(addr & !63, bytes.clamp(8, 4096));
        } else {
            probe.load(addr & !63, bytes.clamp(8, 4096));
        }
        probe.int_ops(8 + bytes as u64 / 32);
    }

    /// Response rendering proportional to `bytes` of output, written
    /// sequentially into the (reused, cache-resident) response buffer.
    pub fn render<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event.wrapping_mul(13));
        let span = (bytes as u64).clamp(64, 16384);
        let mut off = 0;
        while off < span {
            probe.store(self.response_base + (self.response_cursor + off) % (64 << 10), 64);
            probe.int_ops(12);
            off += 64;
        }
        self.response_cursor = (self.response_cursor + span) % (64 << 10);
    }

    /// Pre-touches the server code (warm-up).
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
    }
}

impl Default for ServingTraceModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};

    #[test]
    fn deepest_stack_in_the_suite() {
        let m = ServingTraceModel::new();
        assert!(m.code_footprint() > 2 << 20, "footprint {}", m.code_footprint());
    }

    #[test]
    fn request_touches_session() {
        let mut m = ServingTraceModel::new();
        let mut p = CountingProbe::default();
        m.on_request(&mut p, 42);
        assert!(p.mix().loads >= 1 && p.mix().stores >= 1);
        assert!(p.mix().other > 100, "deep stack instructions");
    }

    #[test]
    fn service_stream_shows_high_l1i_and_l2_pressure() {
        let mut m = ServingTraceModel::new();
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        for i in 0..4000u64 {
            m.on_request(&mut p, i % 512);
            m.data_access(&mut p, splitmix64(i), 512, false);
            m.render(&mut p, 2048);
        }
        let r = p.finish();
        assert!(r.l1i_mpki() > 10.0, "L1I MPKI {}", r.l1i_mpki());
        assert!(r.l2_mpki() > 5.0, "L2 MPKI {}", r.l2_mpki());
    }
}
