//! An event-driven multi-worker queueing simulator.
//!
//! The paper drives its service workloads at offered loads of
//! 100×(1..32) requests per second and reports achieved throughput.
//! Re-creating that on one laptop process would measure the laptop, not
//! the workload, so we separate concerns: service times are *measured*
//! by running the real handler natively, and the arrival/queueing
//! dynamics are *simulated* — Poisson arrivals into a FIFO queue served
//! by `workers` parallel servers. Saturation, latency blow-up past the
//! knee, and achieved-vs-offered throughput all fall out of the
//! simulation.

use crate::latency::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

/// Overload-protection policy for a [`QueueSim`]: how much backlog the
/// service accepts and how long a request may wait before it is
/// abandoned. The default is a fully permissive policy (unbounded
/// queue, no deadline), matching a service with no admission control.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueuePolicy {
    /// Shed arrivals once this many accepted requests are waiting
    /// (`None` = unbounded queue, nothing is ever shed).
    pub queue_capacity: Option<usize>,
    /// Drop a request whose queueing delay exceeds this before service
    /// begins (`None` = requests wait forever).
    pub deadline: Option<Duration>,
}

/// Terminal status of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served to completion within the horizon.
    Completed,
    /// Rejected at admission: the queue was full.
    Shed,
    /// Admitted but abandoned after waiting past the policy deadline.
    TimedOut,
    /// Admitted and started (or queued) but not finished by the
    /// horizon's end.
    Unfinished,
}

impl RequestOutcome {
    /// Lowercase label, stable for reports and span arguments.
    pub fn label(self) -> &'static str {
        match self {
            RequestOutcome::Completed => "completed",
            RequestOutcome::Shed => "shed",
            RequestOutcome::TimedOut => "timed_out",
            RequestOutcome::Unfinished => "unfinished",
        }
    }
}

/// One request's life in the simulation, in virtual nanoseconds since
/// the horizon start. The simulator emits these in arrival order so an
/// observability layer can consume the run as a stream instead of only
/// reading the final aggregates.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// Arrival sequence number (0-based).
    pub seq: u64,
    /// Arrival time.
    pub arrival_ns: u64,
    /// Service start (admission wait ends); `None` for shed arrivals.
    /// For timed-out requests this is the moment the request was
    /// abandoned — when a worker would have picked it up.
    pub start_ns: Option<u64>,
    /// Completion time; `None` unless the outcome is `Completed` or
    /// `Unfinished` (where it falls past the horizon).
    pub finish_ns: Option<u64>,
    /// Assigned service time (zero for shed/timed-out requests, which
    /// never reach a worker).
    pub service_ns: u64,
    /// The worker that served (or would have served) the request;
    /// `None` for shed arrivals.
    pub worker: Option<u32>,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

impl RequestRecord {
    /// Time the request spent in the system: sojourn (wait + service)
    /// for completed/unfinished requests, the abandoned wait for
    /// timed-out ones, zero for shed arrivals.
    pub fn latency_ns(&self) -> u64 {
        match self.outcome {
            RequestOutcome::Shed => 0,
            RequestOutcome::TimedOut => self.start_ns.unwrap_or(0).saturating_sub(self.arrival_ns),
            RequestOutcome::Completed | RequestOutcome::Unfinished => {
                self.finish_ns.unwrap_or(0).saturating_sub(self.arrival_ns)
            }
        }
    }

    /// Admission wait (service start minus arrival); zero for shed.
    pub fn wait_ns(&self) -> u64 {
        self.start_ns.unwrap_or(self.arrival_ns).saturating_sub(self.arrival_ns)
    }
}

/// Result of one queueing simulation.
#[derive(Debug, Clone)]
pub struct QueueResult {
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Requests still queued/in service when the horizon ended.
    pub unfinished: u64,
    /// Arrivals rejected at admission because the queue was full.
    pub shed: u64,
    /// Accepted requests abandoned because their queueing delay
    /// exceeded the policy deadline.
    pub timed_out: u64,
    /// Achieved throughput (completions / horizon).
    pub achieved_rps: f64,
    /// Sojourn-time (queueing + service) distribution.
    pub latency: LatencyHistogram,
    /// Mean number of busy workers over the horizon.
    pub utilization: f64,
    /// Per-request outcome stream, in arrival order. The aggregate
    /// fields above are exactly derivable from it; they are kept so
    /// existing consumers stay byte-compatible.
    pub records: Vec<RequestRecord>,
}

/// Event-driven FIFO queue with `workers` identical servers.
#[derive(Debug, Clone)]
pub struct QueueSim {
    workers: u32,
    policy: QueuePolicy,
}

impl QueueSim {
    /// A simulator with `workers` parallel servers and the default
    /// (fully permissive) [`QueuePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: u32) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self { workers, policy: QueuePolicy::default() }
    }

    /// Replaces the overload policy (bounded queue / deadline).
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Simulates Poisson arrivals at `offered_rps` over `horizon`,
    /// drawing service times round-robin from `service_times` (the
    /// empirical distribution measured natively).
    ///
    /// # Panics
    ///
    /// Panics if `service_times` is empty or `offered_rps` is not
    /// positive.
    pub fn run(
        &self,
        offered_rps: f64,
        horizon: Duration,
        service_times: &[Duration],
        seed: u64,
    ) -> QueueResult {
        assert!(!service_times.is_empty(), "need measured service times");
        assert!(offered_rps > 0.0, "offered load must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon_s = horizon.as_secs_f64();

        // Generate Poisson arrivals (exponential inter-arrival times).
        let mut arrivals: Vec<f64> = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / offered_rps;
            if t >= horizon_s {
                break;
            }
            arrivals.push(t);
        }

        // Workers as a min-heap of (next-free time, worker id). The id
        // breaks ties deterministically and lets each record name the
        // server that handled it; ordering by free time is unchanged,
        // so aggregates match the id-less simulation exactly.
        let mut free_at: BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            (0..self.workers).map(|w| std::cmp::Reverse((0u64, w))).collect();
        let to_ns = |s: f64| (s * 1e9) as u64;
        let deadline_ns = self.policy.deadline.map(|d| d.as_nanos() as u64);
        // Start times of accepted requests still waiting for a worker
        // (start times are non-decreasing in FIFO order, so this stays
        // sorted and the front is always the next to leave the queue).
        let mut waiting: VecDeque<u64> = VecDeque::new();
        let mut latency = LatencyHistogram::new();
        let mut completed = 0u64;
        let mut unfinished = 0u64;
        let mut shed = 0u64;
        let mut timed_out = 0u64;
        let mut busy_ns = 0u128;
        let mut records: Vec<RequestRecord> = Vec::with_capacity(arrivals.len());
        let mut service_idx = rng.gen_range(0..service_times.len());
        for (seq, &arrival_s) in arrivals.iter().enumerate() {
            let arrival = to_ns(arrival_s);
            while waiting.front().is_some_and(|&s| s <= arrival) {
                waiting.pop_front();
            }
            if self.policy.queue_capacity.is_some_and(|cap| waiting.len() >= cap) {
                shed += 1;
                records.push(RequestRecord {
                    seq: seq as u64,
                    arrival_ns: arrival,
                    start_ns: None,
                    finish_ns: None,
                    service_ns: 0,
                    worker: None,
                    outcome: RequestOutcome::Shed,
                });
                continue;
            }
            let std::cmp::Reverse((earliest_free, worker)) = free_at.pop().expect("non-empty");
            let start = earliest_free.max(arrival);
            if start > arrival {
                waiting.push_back(start);
            }
            if deadline_ns.is_some_and(|d| start - arrival > d) {
                // Abandoned at the moment a worker would have picked it
                // up; the worker serves the next request instead.
                timed_out += 1;
                free_at.push(std::cmp::Reverse((earliest_free, worker)));
                records.push(RequestRecord {
                    seq: seq as u64,
                    arrival_ns: arrival,
                    start_ns: Some(start),
                    finish_ns: None,
                    service_ns: 0,
                    worker: Some(worker),
                    outcome: RequestOutcome::TimedOut,
                });
                continue;
            }
            let service = service_times[service_idx].as_nanos() as u64;
            service_idx = (service_idx + 1) % service_times.len();
            let finish = start + service;
            let outcome = if finish <= to_ns(horizon_s) {
                completed += 1;
                latency.record(Duration::from_nanos(finish - arrival));
                busy_ns += service as u128;
                RequestOutcome::Completed
            } else {
                unfinished += 1;
                RequestOutcome::Unfinished
            };
            free_at.push(std::cmp::Reverse((finish, worker)));
            records.push(RequestRecord {
                seq: seq as u64,
                arrival_ns: arrival,
                start_ns: Some(start),
                finish_ns: Some(finish),
                service_ns: service,
                worker: Some(worker),
                outcome,
            });
        }
        QueueResult {
            completed,
            unfinished,
            shed,
            timed_out,
            achieved_rps: completed as f64 / horizon_s,
            latency,
            utilization: busy_ns as f64 / (horizon_s * 1e9 * self.workers as f64),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn light_load_tracks_offered() {
        // 10ms service, 4 workers ⇒ capacity 400 rps; offer 50.
        let sim = QueueSim::new(4);
        let r = sim.run(50.0, Duration::from_secs(20), &[ms(10)], 1);
        assert!((r.achieved_rps - 50.0).abs() < 5.0, "achieved {}", r.achieved_rps);
        assert!(r.latency.percentile(0.5) < ms(15));
        assert!(r.utilization < 0.3);
    }

    #[test]
    fn saturation_caps_throughput() {
        // Capacity 400 rps; offer 1600 ⇒ achieve ~400.
        let sim = QueueSim::new(4);
        let r = sim.run(1600.0, Duration::from_secs(10), &[ms(10)], 2);
        assert!(r.achieved_rps < 450.0, "achieved {}", r.achieved_rps);
        assert!(r.achieved_rps > 320.0);
        assert!(r.unfinished > 0, "overload leaves a backlog");
        assert!(r.utilization > 0.9);
    }

    #[test]
    fn latency_blows_up_past_knee() {
        let sim = QueueSim::new(2);
        let light = sim.run(20.0, Duration::from_secs(10), &[ms(10)], 3);
        let heavy = sim.run(400.0, Duration::from_secs(10), &[ms(10)], 3);
        assert!(heavy.latency.percentile(0.9) > light.latency.percentile(0.9) * 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = QueueSim::new(3);
        let a = sim.run(100.0, Duration::from_secs(5), &[ms(5), ms(15)], 9);
        let b = sim.run(100.0, Duration::from_secs(5), &[ms(5), ms(15)], 9);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
        assert_eq!((a.shed, a.timed_out), (0, 0), "permissive policy never drops");

        // The same holds when the policy actively sheds and times out.
        let policy =
            QueuePolicy { queue_capacity: Some(3), deadline: Some(Duration::from_millis(25)) };
        let sim = QueueSim::new(2).with_policy(policy);
        let a = sim.run(800.0, Duration::from_secs(5), &[ms(5), ms(15)], 9);
        let b = sim.run(800.0, Duration::from_secs(5), &[ms(5), ms(15)], 9);
        assert!(a.shed > 0, "overload against a bounded queue must shed");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.timed_out, b.timed_out);
        assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
    }

    #[test]
    fn bounded_queue_sheds_overload_and_caps_waiting() {
        let policy = QueuePolicy { queue_capacity: Some(4), deadline: None };
        let unbounded = QueueSim::new(2).run(2000.0, Duration::from_secs(5), &[ms(10)], 7);
        let bounded =
            QueueSim::new(2).with_policy(policy).run(2000.0, Duration::from_secs(5), &[ms(10)], 7);
        assert_eq!(unbounded.shed, 0);
        assert!(bounded.shed > 0, "4-deep queue against 10x overload must shed");
        // At most 4 waiting ahead on 2 workers: wait ≤ ~3 service times,
        // so sojourn stays bounded instead of growing with the backlog.
        assert!(
            bounded.latency.percentile(0.99) < ms(80),
            "{:?}",
            bounded.latency.percentile(0.99)
        );
        assert!(
            unbounded.latency.percentile(0.99) > bounded.latency.percentile(0.99) * 5,
            "unbounded queue latency grows with backlog"
        );
        // Shedding does not reduce useful throughput at saturation.
        assert!(bounded.achieved_rps > unbounded.achieved_rps * 0.8);
    }

    #[test]
    fn deadline_abandons_stale_requests() {
        let policy = QueuePolicy { queue_capacity: None, deadline: Some(ms(20)) };
        let r =
            QueueSim::new(2).with_policy(policy).run(1000.0, Duration::from_secs(5), &[ms(10)], 8);
        assert!(r.timed_out > 0, "overload must push waits past 20ms");
        assert_eq!(r.shed, 0, "no admission control configured");
        // Completed requests waited ≤ 20ms then served for 10ms.
        assert!(r.latency.percentile(1.0) <= ms(31), "{:?}", r.latency.percentile(1.0));
    }

    #[test]
    fn permissive_policy_matches_default_behavior() {
        let base = QueueSim::new(3).run(300.0, Duration::from_secs(5), &[ms(5), ms(9)], 12);
        let explicit = QueueSim::new(3).with_policy(QueuePolicy::default()).run(
            300.0,
            Duration::from_secs(5),
            &[ms(5), ms(9)],
            12,
        );
        assert_eq!(base.completed, explicit.completed);
        assert_eq!(base.unfinished, explicit.unfinished);
        assert_eq!((explicit.shed, explicit.timed_out), (0, 0));
    }

    #[test]
    fn more_workers_raise_capacity() {
        let few = QueueSim::new(1).run(500.0, Duration::from_secs(5), &[ms(10)], 4);
        let many = QueueSim::new(8).run(500.0, Duration::from_secs(5), &[ms(10)], 4);
        assert!(many.achieved_rps > few.achieved_rps * 3.0);
    }

    #[test]
    #[should_panic(expected = "service times")]
    fn empty_service_times_panic() {
        QueueSim::new(1).run(10.0, Duration::from_secs(1), &[], 0);
    }

    #[test]
    fn records_reconcile_with_aggregates() {
        let policy = QueuePolicy { queue_capacity: Some(6), deadline: Some(ms(12)) };
        let r = QueueSim::new(2).with_policy(policy).run(
            800.0,
            Duration::from_secs(5),
            &[ms(5), ms(15)],
            9,
        );
        let count = |o: RequestOutcome| r.records.iter().filter(|x| x.outcome == o).count() as u64;
        assert_eq!(count(RequestOutcome::Completed), r.completed);
        assert_eq!(count(RequestOutcome::Shed), r.shed);
        assert_eq!(count(RequestOutcome::TimedOut), r.timed_out);
        assert_eq!(count(RequestOutcome::Unfinished), r.unfinished);
        assert!(r.shed > 0 && r.timed_out > 0 && r.completed > 0, "exercise every outcome");

        // Rebuilding the latency histogram from completed records
        // reproduces the aggregate distribution exactly.
        let mut rebuilt = LatencyHistogram::new();
        for rec in r.records.iter().filter(|x| x.outcome == RequestOutcome::Completed) {
            rebuilt.record(Duration::from_nanos(rec.latency_ns()));
        }
        assert_eq!(rebuilt.count(), r.latency.count());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rebuilt.percentile(q), r.latency.percentile(q));
        }
    }

    #[test]
    fn records_are_in_arrival_order_and_causally_sane() {
        let r = QueueSim::new(3).run(300.0, Duration::from_secs(5), &[ms(5), ms(9)], 12);
        assert!(!r.records.is_empty());
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            if i > 0 {
                assert!(rec.arrival_ns >= r.records[i - 1].arrival_ns);
            }
            match rec.outcome {
                RequestOutcome::Shed => {
                    assert!(rec.start_ns.is_none() && rec.worker.is_none());
                }
                RequestOutcome::TimedOut => {
                    assert!(rec.start_ns.unwrap() > rec.arrival_ns);
                    assert!(rec.finish_ns.is_none());
                }
                RequestOutcome::Completed | RequestOutcome::Unfinished => {
                    let start = rec.start_ns.unwrap();
                    assert!(start >= rec.arrival_ns);
                    assert_eq!(rec.finish_ns.unwrap(), start + rec.service_ns);
                    assert!(rec.worker.unwrap() < 3);
                }
            }
        }
    }

    #[test]
    fn per_worker_service_intervals_never_overlap() {
        let r = QueueSim::new(2).run(600.0, Duration::from_secs(3), &[ms(4), ms(11)], 21);
        for w in 0..2u32 {
            let mut busy: Vec<(u64, u64)> = r
                .records
                .iter()
                .filter(|rec| {
                    rec.worker == Some(w)
                        && matches!(
                            rec.outcome,
                            RequestOutcome::Completed | RequestOutcome::Unfinished
                        )
                })
                .map(|rec| (rec.start_ns.unwrap(), rec.finish_ns.unwrap()))
                .collect();
            busy.sort_unstable();
            assert!(!busy.is_empty());
            for pair in busy.windows(2) {
                assert!(pair[1].0 >= pair[0].1, "worker {w} double-booked: {pair:?}");
            }
        }
    }
}
