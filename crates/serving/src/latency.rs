//! Latency histograms with percentile queries.

use std::time::Duration;

/// A log-bucketed latency histogram (1 µs granularity at the low end,
/// ~2% relative error overall), cheap enough to update per request.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket `i` covers `[bound(i-1), bound(i))` where bounds grow
    /// geometrically from 1 µs.
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
    max_micros: u64,
}

const BUCKETS: usize = 400;
const GROWTH: f64 = 1.05;

fn bucket_for(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let b = (micros as f64).ln() / GROWTH.ln();
    (b.ceil() as usize).min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> u64 {
    GROWTH.powi(i as i32).ceil() as u64
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_for(micros)] += 1;
        self.total += 1;
        self.sum_micros += micros as u128;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / self.total as u128) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound, so
    /// within ~5% above the true value). Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(bucket_upper(i).min(self.max_micros.max(1)));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= Duration::from_micros(450) && p50 <= Duration::from_micros(600));
        assert!(p99 >= Duration::from_micros(900));
    }

    #[test]
    fn mean_and_max() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.mean(), Duration::from_micros(200));
        assert_eq!(h.max(), Duration::from_micros(300));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(5000));
        }
        let p50 = h.percentile(0.5).as_micros() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.06, "p50={p50}");
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }
}
