//! Latency histograms with percentile queries.
//!
//! The implementation lives in [`bdb_telemetry::metrics`] so every
//! engine shares one histogram; this module re-exports it under its
//! historical path for compatibility.

pub use bdb_telemetry::LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The full unit suite (empty/single-sample/clamp/merge edge cases)
    // lives with the implementation in bdb-telemetry; this is a smoke
    // check that the re-exported type still behaves at this call site.
    #[test]
    fn reexport_records_and_queries() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p50 >= Duration::from_micros(450) && p50 <= Duration::from_micros(600));
        assert_eq!(h.max(), Duration::from_micros(1000));
    }
}
