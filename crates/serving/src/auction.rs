//! The auction site (Rubis Server stand-in).
//!
//! RUBiS models eBay: browse items by category, view an item with its
//! bid history, place bids. State is relational (items, bids, users);
//! the stand-in keeps the same tables in memory and serves the same
//! browse-heavy mix over Zipf-popular categories.

use crate::server::Server;
use crate::trace::ServingTraceModel;
use bdb_archsim::Probe;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One auction-site request.
#[derive(Debug, Clone, PartialEq)]
pub enum AuctionRequest {
    /// List the hottest items of a category.
    BrowseCategory(u16),
    /// View one item and its bid history.
    ViewItem(u32),
    /// Place a bid: `(user, item, amount)`.
    PlaceBid(u32, u32, f32),
}

#[derive(Debug, Clone)]
struct Item {
    category: u16,
    current_price: f32,
    bids: Vec<(u32, f32)>, // (user, amount)
}

/// The auction server.
#[derive(Debug)]
pub struct AuctionServer {
    items: Vec<Item>,
    /// category -> item ids.
    by_category: Vec<Vec<u32>>,
    users: u32,
    categories: u16,
    trace: Option<ServingTraceModel>,
    requests: u64,
    bids_placed: u64,
}

impl AuctionServer {
    /// Builds a site of `items` items across `categories` categories
    /// for `users` users, with Zipf category popularity.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn build(items: u32, categories: u16, users: u32, seed: u64) -> Self {
        assert!(items > 0 && categories > 0 && users > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut item_list = Vec::with_capacity(items as usize);
        let mut by_category: Vec<Vec<u32>> = vec![Vec::new(); categories as usize];
        for id in 0..items {
            let category = zipf_index(&mut rng, categories);
            let price = rng.gen_range(1.0f32..500.0);
            by_category[category as usize].push(id);
            item_list.push(Item { category, current_price: price, bids: Vec::new() });
        }
        Self {
            items: item_list,
            by_category,
            users,
            categories,
            trace: None,
            requests: 0,
            bids_placed: 0,
        }
    }

    /// Enables request-path instrumentation.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(ServingTraceModel::new());
    }

    /// The modeled service-time distribution for deterministic
    /// (host-independent) runs: relational browse/view/bid mix with a
    /// pronounced tail (bid writes contend), store-dominated.
    pub fn service_model(&self) -> crate::model::ServiceTimeModel {
        crate::model::ServiceTimeModel {
            base_us: 2200.0,
            sigma: 0.40,
            tail_weight: 0.025,
            tail_mult: 7.0,
            store_share: (0.50, 0.75),
        }
    }

    /// Pre-touches the modeled server code (ramp-up); no-op without
    /// tracing.
    pub fn warm_trace<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        if let Some(t) = self.trace.as_mut() {
            t.warm(probe);
        }
    }

    /// Total bids placed.
    pub fn bids_placed(&self) -> u64 {
        self.bids_placed
    }

    /// The category of an item (ids wrap modulo the item count).
    pub fn item_category(&self, item: u32) -> u16 {
        self.items[(item as usize) % self.items.len()].category
    }

    /// Top 25 items of a category by bid count.
    pub fn browse<P: Probe + ?Sized>(&mut self, category: u16, probe: &mut P) -> Vec<u32> {
        let category = category % self.categories;
        let ids = self.by_category[category as usize].clone();
        let mut ranked: Vec<(usize, u32)> = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(t) = self.trace.as_mut() {
                t.data_access(probe, id as u64, 96, false);
            }
            probe.int_ops(4);
            ranked.push((self.items[id as usize].bids.len(), id));
        }
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        ranked.truncate(25);
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 512 + ranked.len() * 96);
        }
        ranked.into_iter().map(|(_, id)| id).collect()
    }

    /// One item plus its bid history length.
    pub fn view<P: Probe + ?Sized>(&mut self, item: u32, probe: &mut P) -> usize {
        let item = (item as usize) % self.items.len();
        if let Some(t) = self.trace.as_mut() {
            t.data_access(probe, item as u64, 256, false);
            let bid_bytes = (self.items[item].bids.len() * 8).clamp(8, 4096) as u32;
            t.data_access(probe, (item as u64) << 24, bid_bytes, false);
            t.render(probe, 1024);
        }
        probe.int_ops(12);
        self.items[item].bids.len()
    }

    /// Places a bid; returns whether it beat the current price.
    pub fn bid<P: Probe + ?Sized>(
        &mut self,
        user: u32,
        item: u32,
        amount: f32,
        probe: &mut P,
    ) -> bool {
        let item_idx = (item as usize) % self.items.len();
        if let Some(t) = self.trace.as_mut() {
            t.data_access(probe, item_idx as u64, 256, false);
        }
        probe.fp_ops(2);
        let it = &mut self.items[item_idx];
        let accepted = amount > it.current_price;
        if accepted {
            it.current_price = amount;
            it.bids.push((user % self.users, amount));
            self.bids_placed += 1;
            if let Some(t) = self.trace.as_mut() {
                t.data_access(probe, (item_idx as u64) << 24, 64, true);
            }
        }
        if let Some(t) = self.trace.as_mut() {
            t.render(probe, 256);
        }
        accepted
    }
}

/// Zipf-popular index in `[0, n)` (rank 0 most popular).
fn zipf_index(rng: &mut StdRng, n: u16) -> u16 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((n as f64).powf(u) as u16).saturating_sub(1).min(n - 1)
}

impl Server for AuctionServer {
    type Request = AuctionRequest;

    fn name(&self) -> &str {
        "Rubis Server"
    }

    fn sample_request(&self, rng: &mut StdRng) -> AuctionRequest {
        match rng.gen_range(0..100) {
            0..=49 => AuctionRequest::BrowseCategory(zipf_index(rng, self.categories)),
            50..=79 => AuctionRequest::ViewItem(rng.gen_range(0..self.items.len() as u32)),
            _ => AuctionRequest::PlaceBid(
                rng.gen_range(0..self.users),
                rng.gen_range(0..self.items.len() as u32),
                rng.gen_range(1.0f32..1000.0),
            ),
        }
    }

    fn handle<P: Probe + ?Sized>(&mut self, request: &AuctionRequest, probe: &mut P) -> usize {
        self.requests += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_request(probe, self.requests);
        }
        match request {
            AuctionRequest::BrowseCategory(c) => self.browse(*c, probe).len(),
            AuctionRequest::ViewItem(i) => self.view(*i, probe),
            AuctionRequest::PlaceBid(u, i, a) => self.bid(*u, *i, *a, probe) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::NullProbe;

    fn server() -> AuctionServer {
        AuctionServer::build(500, 20, 100, 1)
    }

    #[test]
    fn build_distributes_items() {
        let s = server();
        let total: usize = s.by_category.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        // Zipf: category 0/1 should hold many more items than the tail.
        assert!(s.by_category[0].len() + s.by_category[1].len() > s.by_category[19].len());
    }

    #[test]
    fn browse_returns_category_items() {
        let mut s = server();
        let ids = s.browse(0, &mut NullProbe);
        assert!(!ids.is_empty());
        assert!(ids.len() <= 25);
        for id in ids {
            assert_eq!(s.item_category(id), 0);
        }
    }

    #[test]
    fn bids_raise_price_and_rank() {
        let mut s = server();
        let target = s.by_category[0][0];
        let before = s.items[target as usize].current_price;
        assert!(s.bid(1, target, before + 100.0, &mut NullProbe));
        assert!(!s.bid(2, target, before + 50.0, &mut NullProbe), "lower bid rejected");
        assert_eq!(s.bids_placed(), 1);
        assert!(s.items[target as usize].current_price > before);
        // The bid-upon item should now rank first in its category.
        let ids = s.browse(0, &mut NullProbe);
        assert_eq!(ids[0], target);
    }

    #[test]
    fn view_reports_bid_history() {
        let mut s = server();
        let target = s.by_category[1][0];
        assert_eq!(s.view(target, &mut NullProbe), 0);
        s.bid(1, target, 10_000.0, &mut NullProbe);
        assert_eq!(s.view(target, &mut NullProbe), 1);
    }

    #[test]
    fn request_mix_is_browse_heavy() {
        let s = server();
        let mut rng = StdRng::seed_from_u64(2);
        let mut browses = 0;
        for _ in 0..1000 {
            if matches!(s.sample_request(&mut rng), AuctionRequest::BrowseCategory(_)) {
                browses += 1;
            }
        }
        assert!((400..600).contains(&browses));
    }

    #[test]
    fn handles_full_mix() {
        let mut s = server();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let req = s.sample_request(&mut rng);
            s.handle(&req, &mut NullProbe);
        }
        assert!(s.bids_placed() > 10, "some bids should land");
    }

    #[test]
    fn traced_browse_records_scan() {
        use bdb_archsim::CountingProbe;
        let mut s = server();
        s.enable_tracing();
        let mut probe = CountingProbe::default();
        s.handle(&AuctionRequest::BrowseCategory(0), &mut probe);
        assert!(probe.mix().loads > 10, "category scan recorded");
        assert!(probe.mix().other > 0);
    }
}
