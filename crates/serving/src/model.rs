//! Deterministic service-time models for the serving workloads.
//!
//! The load generator normally *measures* service times by running the
//! real handler natively, which is faithful but host-dependent: the
//! same seed gives different latency distributions on different
//! machines. The SLO/observability pass (`reproduce -- --slo`) needs
//! the opposite trade-off — byte-identical reports for a given seed on
//! any host — so each server also publishes a modeled service-time
//! distribution calibrated to its handler's shape: a lognormal-ish
//! body (multiplicative noise around a base cost) plus a small
//! heavy-tail mode standing in for cache-miss / lock-convoy outliers,
//! the Tail-at-Scale source of p99.9 pain.
//!
//! Everything here is driven by [`splitmix64`] over a user seed; no
//! RNG state leaks between calls, so samples are reproducible and
//! order-independent.

use std::time::Duration;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used both as the
/// sample stream generator and as the trace-id hash shared with the
/// observability layer's sampling decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from one mixed word.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard-normal-ish deviate via Irwin–Hall (sum of 12 uniforms
/// minus 6): cheap, deterministic, and close enough to Gaussian for a
/// latency body. Bounded in [-6, 6], which conveniently caps the
/// lognormal body.
fn normal_ih(stream: u64, n: u64) -> f64 {
    let mut acc = 0.0f64;
    for k in 0..12u64 {
        acc += unit(splitmix64(stream ^ n.wrapping_mul(12).wrapping_add(k)));
    }
    acc - 6.0
}

/// A modeled per-request service-time distribution.
#[derive(Debug, Clone, Copy)]
pub struct ServiceTimeModel {
    /// Median body service time, microseconds.
    pub base_us: f64,
    /// Lognormal body spread (sigma of the log).
    pub sigma: f64,
    /// Probability a request lands in the heavy-tail mode.
    pub tail_weight: f64,
    /// Multiplier applied to tail-mode requests.
    pub tail_mult: f64,
    /// `(min, max)` fraction of service time spent in the state store
    /// (index / relation / feed lookups) rather than compute+render.
    pub store_share: (f64, f64),
}

impl ServiceTimeModel {
    /// Draws the service time of request `n` under `seed`. Pure: the
    /// same `(seed, n)` always yields the same duration.
    pub fn service_time(&self, seed: u64, n: u64) -> Duration {
        let stream = splitmix64(seed ^ 0xC0DE_5EED);
        let body = self.base_us * (self.sigma * normal_ih(stream, n)).exp();
        let tail_draw = unit(splitmix64(stream ^ splitmix64(n ^ 0x7A11)));
        let us = if tail_draw < self.tail_weight { body * self.tail_mult } else { body };
        Duration::from_nanos((us * 1e3).max(1.0) as u64)
    }

    /// Draws `n` service times (requests `0..n`) under `seed`.
    pub fn sample_times(&self, n: usize, seed: u64) -> Vec<Duration> {
        (0..n as u64).map(|i| self.service_time(seed, i)).collect()
    }

    /// Deterministic fraction of a request's service time attributed
    /// to the state store, in `[store_share.0, store_share.1]`, keyed
    /// by trace id so the observability layer can split the handler
    /// span without threading extra state through the simulator.
    pub fn store_fraction(&self, trace_id: u64) -> f64 {
        let (lo, hi) = self.store_share;
        lo + (hi - lo) * unit(splitmix64(trace_id ^ 0x57_0BE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ServiceTimeModel {
        ServiceTimeModel {
            base_us: 2500.0,
            sigma: 0.35,
            tail_weight: 0.02,
            tail_mult: 6.0,
            store_share: (0.35, 0.55),
        }
    }

    #[test]
    fn samples_are_deterministic_and_positive() {
        let m = model();
        let a = m.sample_times(500, 42);
        let b = m.sample_times(500, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|d| !d.is_zero()));
        let c = m.sample_times(500, 43);
        assert_ne!(a, c, "different seeds give different draws");
    }

    #[test]
    fn body_centers_near_base_with_a_real_tail() {
        let m = model();
        let times = m.sample_times(4000, 7);
        let mut us: Vec<u64> = times.iter().map(|d| d.as_micros() as u64).collect();
        us.sort_unstable();
        let median = us[us.len() / 2] as f64;
        assert!(
            (median - m.base_us).abs() < m.base_us * 0.2,
            "median {median} far from base {}",
            m.base_us
        );
        // The tail mode pushes the max well past the body's reach.
        let p999 = us[(us.len() as f64 * 0.999) as usize] as f64;
        assert!(p999 > m.base_us * 4.0, "p999 {p999} lacks a heavy tail");
        let tail = us.iter().filter(|&&t| t as f64 > m.base_us * 3.0).count() as f64;
        let frac = tail / us.len() as f64;
        assert!(frac > 0.005 && frac < 0.06, "tail fraction {frac}");
    }

    #[test]
    fn store_fraction_stays_in_range_and_varies() {
        let m = model();
        let mut distinct = std::collections::HashSet::new();
        for id in 0..200u64 {
            let f = m.store_fraction(splitmix64(id));
            assert!(f >= m.store_share.0 && f <= m.store_share.1, "{f}");
            distinct.insert((f * 1e6) as u64);
        }
        assert!(distinct.len() > 100, "fractions should vary per trace id");
        assert_eq!(m.store_fraction(99), m.store_fraction(99));
    }

    #[test]
    fn splitmix_mixes() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(splitmix64(0), 0);
    }
}
