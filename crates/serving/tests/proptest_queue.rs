//! Property-based invariants of the queueing simulator and latency
//! histogram.

use bdb_serving::{LatencyHistogram, QueueSim};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// Conservation: every simulated arrival is either completed or
    /// still in the system; utilization is a valid fraction.
    #[test]
    fn conservation(
        offered in 1.0f64..500.0,
        workers in 1u32..8,
        service_us in 100u64..20_000,
        seed in any::<u64>(),
    ) {
        let sim = QueueSim::new(workers);
        let horizon = Duration::from_secs(5);
        let r = sim.run(offered, horizon, &[Duration::from_micros(service_us)], seed);
        prop_assert_eq!(r.latency.count(), r.completed);
        prop_assert!(r.utilization >= 0.0 && r.utilization <= 1.0 + 1e-9);
        prop_assert!(r.achieved_rps <= offered * 1.5 + 10.0, "cannot exceed arrivals by much");
    }

    /// Latency is bounded below by the service time.
    #[test]
    fn latency_at_least_service(
        offered in 1.0f64..200.0,
        service_us in 500u64..10_000,
        seed in any::<u64>(),
    ) {
        let sim = QueueSim::new(4);
        let r = sim.run(offered, Duration::from_secs(5), &[Duration::from_micros(service_us)], seed);
        if r.completed > 0 {
            prop_assert!(r.latency.percentile(0.0) >= Duration::from_micros(service_us * 9 / 10));
        }
    }

    /// Throughput never exceeds theoretical capacity (workers/service).
    #[test]
    fn capacity_bound(
        offered in 50.0f64..2000.0,
        workers in 1u32..6,
        service_ms in 1u64..20,
        seed in any::<u64>(),
    ) {
        let sim = QueueSim::new(workers);
        let r = sim.run(offered, Duration::from_secs(5), &[Duration::from_millis(service_ms)], seed);
        let capacity = workers as f64 * 1000.0 / service_ms as f64;
        prop_assert!(
            r.achieved_rps <= capacity * 1.1 + 5.0,
            "achieved {} vs capacity {capacity}",
            r.achieved_rps
        );
    }

    /// Histogram percentiles are monotone in the quantile for any data.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for s in &samples {
            h.record(Duration::from_micros(*s));
        }
        let qs = [0.1, 0.5, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.percentile(w[0]) <= h.percentile(w[1]));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        // The p100 upper bound is within the histogram's relative error
        // of the true max.
        let max = *samples.iter().max().expect("nonempty");
        let p100 = h.percentile(1.0).as_micros() as u64;
        prop_assert!(p100 <= max.max(1));
    }

    /// Merging histograms preserves counts and maxima.
    #[test]
    fn merge_preserves(
        a in proptest::collection::vec(1u64..1_000_000, 0..100),
        b in proptest::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        for s in &a {
            ha.record(Duration::from_micros(*s));
        }
        let mut hb = LatencyHistogram::new();
        for s in &b {
            hb.record(Duration::from_micros(*s));
        }
        let max = ha.max().max(hb.max());
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.max(), max);
    }
}
