//! Vectorized columnar storage: typed column vectors with null bitmaps.
//!
//! [`ColumnarTable`] is the execution-layer twin of the row-oriented
//! [`Table`]: the same schema and rows, re-encoded for batched kernels.
//! Integer columns narrow to `i32` when every value fits (BigDataBench's
//! e-commerce IDs always do), dates stay 4 bytes, and strings are
//! dictionary-encoded to 4-byte codes — so scans touch roughly half the
//! cache lines the row engine's 8/24-byte cells do. Nulls live in a
//! separate bitmap, keeping the data vectors branch-free to index.
//! Conversion from [`Table`] is lossless: [`ColumnarTable::to_table`]
//! round-trips every value, including NULLs and NaNs.

use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::value::ValueRef;
use std::collections::HashMap;

/// Typed backing storage of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers (values that overflow `i32`).
    Int64(Vec<i64>),
    /// Narrowed integers: every non-null value fits `i32`.
    Int32(Vec<i32>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Days since epoch, 4 bytes.
    Date32(Vec<u32>),
    /// Dictionary-encoded strings: 4-byte codes into a value table
    /// ordered by first occurrence.
    Dict {
        /// Per-row dictionary code.
        codes: Vec<u32>,
        /// Distinct strings, indexed by code.
        values: Vec<String>,
    },
}

/// A compact null bitmap: bit set ⇒ row is NULL.
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    words: Vec<u64>,
    any: bool,
}

impl NullMask {
    fn with_len(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], any: false }
    }

    fn set(&mut self, row: usize) {
        self.words[row / 64] |= 1 << (row % 64);
        self.any = true;
    }

    /// Whether `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.any && (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Whether any row is NULL (fast path: skip per-row checks).
    pub fn any_null(&self) -> bool {
        self.any
    }
}

/// One column: typed data vector plus null bitmap.
#[derive(Debug, Clone)]
pub struct ColumnVec {
    pub(crate) data: ColumnData,
    pub(crate) nulls: NullMask,
    len: usize,
}

impl ColumnVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes one row occupies in the encoded data vector.
    pub fn encoded_width(&self) -> usize {
        match self.data {
            ColumnData::Int64(_) | ColumnData::Float64(_) => 8,
            ColumnData::Int32(_) | ColumnData::Date32(_) | ColumnData::Dict { .. } => 4,
        }
    }

    /// The typed backing storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// A borrowed view of the value at `row`, NULL-aware.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn value_ref(&self, row: usize) -> ValueRef<'_> {
        assert!(row < self.len, "row {row} out of bounds ({})", self.len);
        if self.nulls.is_null(row) {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Int64(v) => ValueRef::Int(v[row]),
            ColumnData::Int32(v) => ValueRef::Int(v[row] as i64),
            ColumnData::Float64(v) => ValueRef::Float(v[row]),
            ColumnData::Date32(v) => ValueRef::Date(v[row]),
            ColumnData::Dict { codes, values } => ValueRef::Str(&values[codes[row] as usize]),
        }
    }

    fn from_table_column(table: &Table, col: usize) -> Self {
        let rows = table.len();
        let mut nulls = NullMask::with_len(rows);
        let data = match table.schema().column_type(col) {
            ColumnType::Int => {
                let mut wide = Vec::with_capacity(rows);
                let mut fits_i32 = true;
                for row in 0..rows {
                    match table.value_ref(row, col) {
                        ValueRef::Int(x) => {
                            fits_i32 &= i32::try_from(x).is_ok();
                            wide.push(x);
                        }
                        _ => {
                            nulls.set(row);
                            wide.push(0);
                        }
                    }
                }
                if fits_i32 {
                    ColumnData::Int32(wide.into_iter().map(|x| x as i32).collect())
                } else {
                    ColumnData::Int64(wide)
                }
            }
            ColumnType::Float => {
                let mut data = Vec::with_capacity(rows);
                for row in 0..rows {
                    match table.value_ref(row, col) {
                        ValueRef::Float(x) => data.push(x),
                        _ => {
                            nulls.set(row);
                            data.push(0.0);
                        }
                    }
                }
                ColumnData::Float64(data)
            }
            ColumnType::Date => {
                let mut data = Vec::with_capacity(rows);
                for row in 0..rows {
                    match table.value_ref(row, col) {
                        ValueRef::Date(d) => data.push(d),
                        _ => {
                            nulls.set(row);
                            data.push(0);
                        }
                    }
                }
                ColumnData::Date32(data)
            }
            ColumnType::Str => {
                let mut codes = Vec::with_capacity(rows);
                let mut values: Vec<String> = Vec::new();
                let mut index: HashMap<String, u32> = HashMap::new();
                for row in 0..rows {
                    match table.value_ref(row, col) {
                        ValueRef::Str(s) => {
                            let code = *index.entry(s.to_owned()).or_insert_with(|| {
                                values.push(s.to_owned());
                                (values.len() - 1) as u32
                            });
                            codes.push(code);
                        }
                        _ => {
                            nulls.set(row);
                            codes.push(0);
                        }
                    }
                }
                ColumnData::Dict { codes, values }
            }
        };
        Self { data, nulls, len: rows }
    }
}

/// A schema-checked table in columnar execution layout.
///
/// # Example
///
/// ```
/// use bdb_sql::{ColumnarTable, Table, Schema, ColumnType, Value};
/// let mut t = Table::new("t", Schema::new(&[("x", ColumnType::Int)]));
/// t.push_row(vec![Value::Int(7)]).unwrap();
/// let c = ColumnarTable::from_table(&t);
/// assert_eq!(c.column(0).encoded_width(), 4, "7 fits i32");
/// assert_eq!(c.to_table().value(0, 0), Value::Int(7));
/// ```
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    name: String,
    schema: Schema,
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnarTable {
    /// Re-encodes a row table into columnar execution layout
    /// (losslessly; see [`ColumnarTable::to_table`]).
    pub fn from_table(table: &Table) -> Self {
        let columns =
            (0..table.schema().arity()).map(|c| ColumnVec::from_table_column(table, c)).collect();
        Self {
            name: table.name().to_owned(),
            schema: table.schema().clone(),
            columns,
            rows: table.len(),
        }
    }

    /// Reconstructs the equivalent row table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&self.name, self.schema.clone());
        let mut buf = Vec::with_capacity(self.schema.arity());
        for row in 0..self.rows {
            buf.clear();
            for col in &self.columns {
                buf.push(col.value_ref(row).to_value());
            }
            t.push_row(std::mem::take(&mut buf)).expect("round-trip preserves the schema");
            buf = Vec::with_capacity(self.schema.arity());
        }
        t
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema (identical to the source row table's).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column at position `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn column(&self, col: usize) -> &ColumnVec {
        &self.columns[col]
    }

    /// Total encoded bytes across data vectors (excludes null bitmaps
    /// and dictionaries).
    pub fn encoded_byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.encoded_width() * self.rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(&[
                ("id", ColumnType::Int),
                ("p", ColumnType::Float),
                ("s", ColumnType::Str),
                ("d", ColumnType::Date),
            ]),
        );
        t.push_row(vec![Value::Int(1), Value::Float(1.5), "a".into(), Value::Date(10)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, "b".into(), Value::Null]).unwrap();
        t.push_row(vec![Value::Null, Value::Float(-0.5), "a".into(), Value::Date(11)]).unwrap();
        t
    }

    #[test]
    fn round_trip_is_lossless() {
        let t = table();
        let c = ColumnarTable::from_table(&t);
        let back = c.to_table();
        assert_eq!(back.len(), t.len());
        for row in 0..t.len() {
            assert_eq!(back.row(row), t.row(row), "row {row}");
        }
    }

    #[test]
    fn ints_narrow_when_they_fit() {
        let t = table();
        let c = ColumnarTable::from_table(&t);
        assert!(matches!(c.column(0).data(), ColumnData::Int32(_)));
        assert_eq!(c.column(0).encoded_width(), 4);

        let mut wide = Table::new("w", Schema::new(&[("x", ColumnType::Int)]));
        wide.push_row(vec![Value::Int(i64::from(i32::MAX) + 1)]).unwrap();
        let cw = ColumnarTable::from_table(&wide);
        assert!(matches!(cw.column(0).data(), ColumnData::Int64(_)));
        assert_eq!(cw.column(0).encoded_width(), 8);
        assert_eq!(cw.to_table().value(0, 0), Value::Int(i64::from(i32::MAX) + 1));
    }

    #[test]
    fn strings_dictionary_encode() {
        let c = ColumnarTable::from_table(&table());
        match c.column(2).data() {
            ColumnData::Dict { codes, values } => {
                assert_eq!(values, &["a".to_owned(), "b".to_owned()], "first-occurrence order");
                assert_eq!(codes, &[0, 1, 0]);
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn nulls_survive_and_mask_reads() {
        let c = ColumnarTable::from_table(&table());
        assert_eq!(c.column(1).value_ref(1), ValueRef::Null);
        assert_eq!(c.column(3).value_ref(1), ValueRef::Null);
        assert_eq!(c.column(1).value_ref(2), ValueRef::Float(-0.5));
        assert!(c.column(1).nulls().any_null());
        assert!(!c.column(2).nulls().any_null());
    }

    #[test]
    fn nan_is_a_value_not_a_null() {
        let mut t = Table::new("n", Schema::new(&[("x", ColumnType::Float)]));
        t.push_row(vec![Value::Float(f64::NAN)]).unwrap();
        let c = ColumnarTable::from_table(&t);
        assert!(!c.column(0).nulls().is_null(0));
        match c.column(0).value_ref(0) {
            ValueRef::Float(x) => assert!(x.is_nan()),
            other => panic!("expected NaN float, got {other:?}"),
        }
    }

    #[test]
    fn all_null_string_column_round_trips() {
        let mut t = Table::new("s", Schema::new(&[("x", ColumnType::Str)]));
        t.push_row(vec![Value::Null]).unwrap();
        let c = ColumnarTable::from_table(&t);
        assert_eq!(c.column(0).value_ref(0), ValueRef::Null);
        assert_eq!(c.to_table().value(0, 0), Value::Null);
    }

    #[test]
    fn encoded_size_is_smaller_than_row_layout() {
        let t = table();
        let c = ColumnarTable::from_table(&t);
        assert!(c.encoded_byte_size() < t.byte_size());
    }
}
