//! Table schemas.

use crate::value::Value;
use crate::SqlError;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Days since data-set epoch.
    Date,
}

impl ColumnType {
    /// Whether `value` inhabits this type (NULL inhabits every type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Date, Value::Date(_))
        )
    }

    /// In-memory width in bytes of one cell (strings estimated).
    pub fn width(&self) -> usize {
        match self {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Str => 24,
            ColumnType::Date => 4,
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    pub fn new(columns: &[(&str, ColumnType)]) -> Self {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in columns {
            assert!(seen.insert(*name), "duplicate column `{name}`");
        }
        Self { columns: columns.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Position and type of `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::UnknownColumn`] when absent.
    pub fn resolve(&self, name: &str) -> Result<(usize, ColumnType), SqlError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i, self.columns[i].1))
            .ok_or_else(|| SqlError::UnknownColumn(name.to_owned()))
    }

    /// Type of the column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn column_type(&self, idx: usize) -> ColumnType {
        self.columns[idx].1
    }

    /// Name of the column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn column_name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Validates a row against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::ArityMismatch`] or [`SqlError::TypeMismatch`].
    pub fn check_row(&self, row: &[Value]) -> Result<(), SqlError> {
        if row.len() != self.arity() {
            return Err(SqlError::ArityMismatch { expected: self.arity(), got: row.len() });
        }
        for (i, v) in row.iter().enumerate() {
            if !self.columns[i].1.admits(v) {
                return Err(SqlError::TypeMismatch {
                    context: format!("column `{}`", self.columns[i].0),
                });
            }
        }
        Ok(())
    }

    /// Bytes per row under [`ColumnType::width`] estimates.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|(_, t)| t.width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str), ("d", ColumnType::Date)])
    }

    #[test]
    fn resolve_columns() {
        let s = schema();
        assert_eq!(s.resolve("id").unwrap(), (0, ColumnType::Int));
        assert_eq!(s.resolve("d").unwrap(), (2, ColumnType::Date));
        assert!(matches!(s.resolve("nope"), Err(SqlError::UnknownColumn(_))));
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s.check_row(&[Value::Int(1), "x".into(), Value::Date(3)]).is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Null, Value::Null]).is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1), "x".into()]),
            Err(SqlError::ArityMismatch { expected: 3, got: 2 })
        ));
        assert!(matches!(
            s.check_row(&[Value::Str("no".into()), "x".into(), Value::Date(1)]),
            Err(SqlError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn float_admits_int() {
        assert!(ColumnType::Float.admits(&Value::Int(3)));
        assert!(!ColumnType::Int.admits(&Value::Float(3.0)));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_panic() {
        Schema::new(&[("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn widths() {
        assert_eq!(schema().row_width(), 8 + 24 + 4);
    }
}
