//! Scalar predicate expressions for filters and join conditions.

use crate::table::Table;
use crate::value::{Value, ValueRef};
use crate::SqlError;
use std::cmp::Ordering;

/// A scalar expression evaluated per row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Comparison of two sub-expressions.
    Compare(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A column reference, e.g. `col("BUYER_ID")`.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.to_owned())
}

/// A literal, e.g. `lit(5)` or `lit("x")`.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

impl Expr {
    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Eq, Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Ne, Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Lt, Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Le, Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Gt, Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Compare(Box::new(self), CmpOp::Ge, Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Column names referenced by this expression, in first-use order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Literal(_) => {}
            Expr::Compare(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) => a.collect_columns(out),
        }
    }

    /// Binds column names to positions in `table`'s schema, producing a
    /// fast evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::UnknownColumn`] for unresolved names.
    pub fn bind(&self, table: &Table) -> Result<BoundExpr, SqlError> {
        self.bind_schema(table.schema())
    }

    /// Binds column names to positions in `schema` — the table-free form
    /// of [`Expr::bind`], shared with the columnar kernels.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::UnknownColumn`] for unresolved names.
    pub fn bind_schema(&self, schema: &crate::schema::Schema) -> Result<BoundExpr, SqlError> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.resolve(name)?.0),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Compare(a, op, b) => BoundExpr::Compare(
                Box::new(a.bind_schema(schema)?),
                *op,
                Box::new(b.bind_schema(schema)?),
            ),
            Expr::And(a, b) => {
                BoundExpr::And(Box::new(a.bind_schema(schema)?), Box::new(b.bind_schema(schema)?))
            }
            Expr::Or(a, b) => {
                BoundExpr::Or(Box::new(a.bind_schema(schema)?), Box::new(b.bind_schema(schema)?))
            }
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind_schema(schema)?)),
        })
    }
}

/// An expression with column references resolved to positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column by position.
    Column(usize),
    /// Literal value.
    Literal(Value),
    /// Comparison.
    Compare(Box<BoundExpr>, CmpOp, Box<BoundExpr>),
    /// Logical AND.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical OR.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical NOT.
    Not(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates to a value on `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Value {
        self.eval_ref(table, row).to_value()
    }

    /// Evaluates to a borrowed value on `row` of `table` — the
    /// allocation-free path used by filters and the columnar kernels'
    /// generic fallback.
    pub fn eval_ref<'a>(&'a self, table: &'a Table, row: usize) -> ValueRef<'a> {
        match self {
            BoundExpr::Column(i) => table.value_ref(row, *i),
            BoundExpr::Literal(v) => v.view(),
            BoundExpr::Compare(a, op, b) => {
                let av = a.eval_ref(table, row);
                let bv = b.eval_ref(table, row);
                if av.is_null() || bv.is_null() {
                    return ValueRef::Null; // SQL three-valued logic
                }
                ValueRef::Int(op.holds(av.total_cmp(&bv)) as i64)
            }
            BoundExpr::And(a, b) => truthy_and(a.eval_ref(table, row), b.eval_ref(table, row)),
            BoundExpr::Or(a, b) => truthy_or(a.eval_ref(table, row), b.eval_ref(table, row)),
            BoundExpr::Not(a) => match a.eval_ref(table, row) {
                ValueRef::Null => ValueRef::Null,
                v => ValueRef::Int((!truthy(v)) as i64),
            },
        }
    }

    /// Evaluates as a filter predicate (NULL counts as false).
    pub fn matches(&self, table: &Table, row: usize) -> bool {
        truthy(self.eval_ref(table, row))
    }
}

impl CmpOp {
    /// Whether an ordering between operands satisfies this operator.
    pub(crate) fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

pub(crate) fn truthy(v: ValueRef<'_>) -> bool {
    match v {
        ValueRef::Int(x) => x != 0,
        ValueRef::Float(x) => x != 0.0,
        ValueRef::Null => false,
        ValueRef::Str(s) => !s.is_empty(),
        ValueRef::Date(_) => true,
    }
}

pub(crate) fn truthy_and<'a>(a: ValueRef<'a>, b: ValueRef<'a>) -> ValueRef<'a> {
    match (a.is_null(), b.is_null()) {
        (false, false) => ValueRef::Int((truthy(a) && truthy(b)) as i64),
        // NULL AND false = false; otherwise NULL.
        (true, false) if !truthy(b) => ValueRef::Int(0),
        (false, true) if !truthy(a) => ValueRef::Int(0),
        _ => ValueRef::Null,
    }
}

pub(crate) fn truthy_or<'a>(a: ValueRef<'a>, b: ValueRef<'a>) -> ValueRef<'a> {
    match (a.is_null(), b.is_null()) {
        (false, false) => ValueRef::Int((truthy(a) || truthy(b)) as i64),
        (true, false) if truthy(b) => ValueRef::Int(1),
        (false, true) if truthy(a) => ValueRef::Int(1),
        _ => ValueRef::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn table() -> Table {
        let mut t =
            Table::new("t", Schema::new(&[("id", ColumnType::Int), ("price", ColumnType::Float)]));
        t.push_row(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Float(3.0)]).unwrap();
        t.push_row(vec![Value::Int(3), Value::Null]).unwrap();
        t
    }

    #[test]
    fn comparisons() {
        let t = table();
        let e = col("price").gt(lit(5.0)).bind(&t).unwrap();
        assert!(e.matches(&t, 0));
        assert!(!e.matches(&t, 1));
        assert!(!e.matches(&t, 2), "NULL comparison is not true");
    }

    #[test]
    fn boolean_logic() {
        let t = table();
        let e = col("id").ge(lit(2)).and(col("price").lt(lit(5.0))).bind(&t).unwrap();
        assert!(!e.matches(&t, 0));
        assert!(e.matches(&t, 1));
        let o = col("id").eq(lit(1)).or(col("id").eq(lit(3))).bind(&t).unwrap();
        assert!(o.matches(&t, 0) && !o.matches(&t, 1) && o.matches(&t, 2));
        let n = col("id").eq(lit(1)).not().bind(&t).unwrap();
        assert!(!n.matches(&t, 0) && n.matches(&t, 1));
    }

    #[test]
    fn three_valued_null_logic() {
        let t = table();
        // price IS NULL on row 2: NULL AND false = false, NULL OR true = true.
        let null_cmp = col("price").gt(lit(0.0));
        let and_false = null_cmp.clone().and(col("id").eq(lit(99))).bind(&t).unwrap();
        assert_eq!(and_false.eval(&t, 2), Value::Int(0));
        let or_true = null_cmp.and(col("id").eq(lit(3)).or(col("id").eq(lit(3)))).bind(&t).unwrap();
        let _ = or_true; // AND with NULL stays NULL when other side true:
        let e = col("price").gt(lit(0.0)).or(col("id").eq(lit(3))).bind(&t).unwrap();
        assert_eq!(e.eval(&t, 2), Value::Int(1));
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(col("nope").eq(lit(1)).bind(&t).is_err());
    }

    #[test]
    fn columns_collected_in_order() {
        let e = col("a").eq(lit(1)).and(col("b").gt(col("a")));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }
}
