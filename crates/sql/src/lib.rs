//! A mini columnar relational engine — the Hive/Impala stand-in of
//! BigDataBench-RS.
//!
//! The paper's realtime-analytics workloads are three relational queries
//! over the e-commerce transaction tables (Table 4): **Select** (scan +
//! filter), **Aggregate** (scan + hash group-by), and **Join** (hash
//! equi-join of ORDER with ORDER_ITEM). Those are exactly the operators
//! this crate implements, over columnar in-memory tables:
//!
//! * [`Table`] — fixed-schema columnar storage ([`schema`], [`value`]);
//! * [`exec`] — `select`, `aggregate`, `hash_join` operators, each with
//!   an instrumented variant that reports genuine column-scan and
//!   hash-probe access patterns to a [`bdb_archsim::Probe`];
//! * [`Database`] — a named-table catalog with a small typed query API.
//!
//! # Example
//!
//! ```
//! use bdb_sql::{Database, Schema, ColumnType, Value, exec};
//! use bdb_sql::expr::{col, lit};
//!
//! let mut db = Database::new();
//! let schema = Schema::new(&[("id", ColumnType::Int), ("price", ColumnType::Float)]);
//! let mut t = bdb_sql::Table::new("goods", schema);
//! t.push_row(vec![Value::Int(1), Value::Float(9.5)]).unwrap();
//! t.push_row(vec![Value::Int(2), Value::Float(3.0)]).unwrap();
//! db.register(t);
//!
//! let rows = exec::select(
//!     db.table("goods").unwrap(),
//!     &col("price").gt(lit(5.0)),
//!     &["id"],
//! ).unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0][0], Value::Int(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod exec;
pub mod expr;
pub mod kernel;
pub mod parser;
pub mod schema;
pub mod table;
pub mod trace;
pub mod value;

pub use column::{ColumnVec, ColumnarTable};
pub use exec::{AggregateFn, Aggregation};
pub use schema::{ColumnType, Schema};
pub use table::{Database, Table};
pub use trace::SqlTraceModel;
pub use value::{Value, ValueRef};

/// Errors produced by the query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A row or expression value did not match the column type.
    TypeMismatch {
        /// Column or expression position.
        context: String,
    },
    /// Row arity differs from the schema.
    ArityMismatch {
        /// Number of columns expected by the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A referenced table does not exist in the database.
    UnknownTable(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            SqlError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            SqlError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema expects {expected}")
            }
            SqlError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
        }
    }
}

impl std::error::Error for SqlError {}
