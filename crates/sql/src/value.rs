//! Cell values.

use std::cmp::Ordering;
use std::fmt;

/// One cell value. `Float` compares with total ordering (NaN greatest)
/// so values can key hash tables and sorts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (covers the seed schema's INT columns).
    Int(i64),
    /// 64-bit float (NUMBER(p,s) columns).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since data-set epoch (DATE columns).
    Date(u32),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The float, widening `Int` if needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A borrowed view of this value.
    pub fn view(&self) -> ValueRef<'_> {
        ValueRef::from(self)
    }

    /// Total-order comparison used by sorts and grouping; `Null` sorts
    /// first, cross-type comparisons order by type tag.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        self.view().total_cmp(&other.view())
    }

    /// A stable 64-bit hash (used by hash joins and group-by).
    pub fn hash64(&self) -> u64 {
        self.view().hash64()
    }
}

/// A borrowed, allocation-free view of one cell value — the hot-path
/// counterpart of [`Value`] for scans, join keys and group keys. It is
/// `Copy`, so row-at-a-time code can pass it around without cloning the
/// backing `String` of a `Str` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed UTF-8 string.
    Str(&'a str),
    /// Days since data-set epoch.
    Date(u32),
    /// SQL NULL.
    Null,
}

impl<'a> ValueRef<'a> {
    /// The integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ValueRef::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The float, widening `Int` if needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ValueRef::Float(x) => Some(*x),
            ValueRef::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Materializes an owned [`Value`] (allocates only for `Str`).
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Int(x) => Value::Int(x),
            ValueRef::Float(x) => Value::Float(x),
            ValueRef::Str(s) => Value::Str(s.to_owned()),
            ValueRef::Date(d) => Value::Date(d),
            ValueRef::Null => Value::Null,
        }
    }

    /// Total-order comparison; same semantics as [`Value::total_cmp`].
    pub fn total_cmp(&self, other: &ValueRef<'_>) -> Ordering {
        use ValueRef::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// A stable 64-bit hash; same function as [`Value::hash64`].
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match self {
            ValueRef::Int(x) => mix(&x.to_le_bytes()),
            ValueRef::Float(x) => mix(&x.to_bits().to_le_bytes()),
            ValueRef::Str(s) => mix(s.as_bytes()),
            ValueRef::Date(d) => mix(&d.to_le_bytes()),
            ValueRef::Null => mix(&[0xFF]),
        }
        h
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> Self {
        match v {
            Value::Int(x) => ValueRef::Int(*x),
            Value::Float(x) => ValueRef::Float(*x),
            Value::Str(s) => ValueRef::Str(s),
            Value::Date(d) => ValueRef::Date(*d),
            Value::Null => ValueRef::Null,
        }
    }
}

fn tag(v: &ValueRef<'_>) -> u8 {
    match v {
        ValueRef::Null => 0,
        ValueRef::Int(_) => 1,
        ValueRef::Float(_) => 2,
        ValueRef::Str(_) => 3,
        ValueRef::Date(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            Value::Float(x) => write!(f, "{x:.6}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "day{d}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn ordering_within_and_across_types() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(1.5)), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Str("a".into()).total_cmp(&Value::Str("b".into())), Ordering::Less);
        assert_eq!(Value::Date(1).total_cmp(&Value::Date(1)), Ordering::Equal);
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn hashes_distinguish_values() {
        assert_ne!(Value::Int(1).hash64(), Value::Int(2).hash64());
        assert_ne!(Value::Str("a".into()).hash64(), Value::Str("b".into()).hash64());
        assert_eq!(Value::Int(7).hash64(), Value::Int(7).hash64());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn value_ref_mirrors_value() {
        let vals = [
            Value::Int(-3),
            Value::Float(2.5),
            Value::Str("abc".into()),
            Value::Date(9),
            Value::Null,
            Value::Float(f64::NAN),
        ];
        for a in &vals {
            assert_eq!(a.view().hash64(), a.hash64());
            assert_eq!(a.view().to_value().hash64(), a.hash64());
            for b in &vals {
                assert_eq!(a.view().total_cmp(&b.view()), a.total_cmp(b), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(ValueRef::Int(5).as_float(), Some(5.0));
        assert!(ValueRef::Null.is_null());
        assert_eq!(Value::Str("x".into()).view(), ValueRef::Str("x"));
    }
}
