//! Query-engine instrumentation model.
//!
//! Columnar scans stream sequentially over column arrays; hash
//! aggregation and hash joins probe scattered hash-table slots. The
//! model registers each table's columns at synthetic addresses so traced
//! operators emit the *real* access pattern of each operator — the
//! sequential/scattered mix that gives the paper's realtime-analytics
//! workloads their cache profile — plus a query-engine code stack
//! (parser/planner/operator layers, Impala-style).

use crate::column::ColumnarTable;
use crate::schema::Schema;
use crate::table::Table;
use bdb_archsim::layout::{regions, splitmix64};
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};
use std::collections::HashMap;

/// Synthetic-address registry for tables plus the engine's code model.
#[derive(Debug, Clone)]
pub struct SqlTraceModel {
    stack: SoftwareStack,
    asp: AddressSpace,
    /// table name -> per-column (base, span) pairs; four epochs of span
    /// are allocated per column so repeated scans read fresh addresses.
    columns: HashMap<String, Vec<(u64, u64)>>,
    /// table name -> per-column (base, span, encoded width) for columnar
    /// tables — spans reflect the *encoded* widths (narrowed ints, dict
    /// codes), which is where the vectorized engine's bandwidth win
    /// comes from.
    columnar: HashMap<String, Vec<(u64, u64, u32)>>,
    hash_area_base: u64,
    hash_area_span: u64,
    /// Bumped per query: tables are far larger than any cache in the
    /// systems the paper measures, so every scan is cold.
    scan_epoch: u64,
    event: u64,
}

impl SqlTraceModel {
    /// Builds the engine model: ~0.8 MiB of code across parse/plan/exec
    /// layers and a hash-table arena sized to exceed L2 but fit L3.
    pub fn new() -> Self {
        let mut asp = AddressSpace::with_bases(regions::SQL_HEAP, regions::SQL_CODE);
        let stack = SoftwareStack::builder("sql-engine")
            .layer(&mut asp, "session", 4, 512, 48, 4096, 1, 8)
            .layer(&mut asp, "planner", 2, 512, 48, 4096, 1, 8)
            .layer(&mut asp, "exec-operators", 8, 512, 96, 4096, 2, 12)
            .build();
        let hash_area_span = 6 << 20;
        let hash_area_base = asp.alloc(hash_area_span, "hash-tables");
        Self {
            stack,
            asp,
            columns: HashMap::new(),
            columnar: HashMap::new(),
            hash_area_base,
            hash_area_span,
            scan_epoch: 0,
            event: 0,
        }
    }

    /// Static code footprint of the modeled engine in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// Registers a table's columns at synthetic addresses sized by the
    /// real row count and column widths.
    pub fn register_table(&mut self, table: &Table) {
        let bases = column_bases(&mut self.asp, table.name(), table.schema(), table.len());
        self.columns.insert(table.name().to_owned(), bases);
    }

    /// One query entering the engine (parse + plan). Starts a fresh scan
    /// epoch: the next pass over any table reads cold addresses.
    pub fn on_query<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.scan_epoch = self.scan_epoch.wrapping_add(1);
        self.stack.invoke(probe, self.event);
        probe.int_ops(40);
    }

    /// A sequential read of `(row, col)` of a registered table.
    pub fn column_read<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        table: &Table,
        row: usize,
        col: usize,
    ) {
        let width = table.schema().column_type(col).width() as u64;
        if let Some(bases) = self.columns.get(table.name()) {
            let (base, span) = bases[col];
            let epoch_off = (self.scan_epoch % 4) * span;
            probe.load(base + epoch_off + row as u64 * width, width as u32);
        }
        probe.int_ops(2);
    }

    /// A hash-table probe or insert keyed by `hash` over a table of
    /// `buckets` buckets.
    pub fn hash_access<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        hash: u64,
        buckets: usize,
        write: bool,
    ) {
        let slot = splitmix64(hash) % (buckets.max(1) as u64);
        let addr = self.hash_area_base + (slot * 48) % self.hash_area_span;
        if write {
            probe.store(addr & !7, 48);
        } else {
            probe.load(addr & !7, 48);
        }
        probe.int_ops(6);
        probe.branch(hash.is_multiple_of(3));
    }

    /// Periodic operator-boundary overhead (row batches crossing
    /// operators).
    pub fn on_batch<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event.wrapping_mul(5));
    }

    /// Per-row operator overhead: Hive executes these queries as
    /// MapReduce jobs, so each row pays a (mostly hot) framework pass.
    pub fn on_row<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event);
    }

    /// Registers a columnar table's columns at synthetic addresses sized
    /// by the *encoded* widths (narrowed ints, dictionary codes).
    pub fn register_columnar(&mut self, table: &ColumnarTable) {
        let bases = (0..table.schema().arity())
            .map(|c| {
                let width = table.column(c).encoded_width() as u32;
                let bytes = (table.len().max(1) as u64) * u64::from(width);
                // Four epochs' worth so successive scans are cold.
                let base = self.asp.alloc(
                    bytes * 4,
                    &format!("{}.{}#col", table.name(), table.schema().column_name(c)),
                );
                (base, bytes, width)
            })
            .collect();
        self.columnar.insert(table.name().to_owned(), bases);
    }

    /// A vectorized sequential scan of `rows` of one column: streams
    /// whole cachelines instead of per-row loads, with ~1 bookkeeping
    /// instruction per 8 rows (the SIMD-ish batched loop).
    pub fn column_scan<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        table: &ColumnarTable,
        col: usize,
        rows: std::ops::Range<usize>,
    ) {
        let Some(bases) = self.columnar.get(table.name()) else {
            probe.int_ops(1);
            return;
        };
        let (base, span, width) = bases[col];
        let epoch_off = (self.scan_epoch % 4) * span;
        let start = base + epoch_off + rows.start as u64 * u64::from(width);
        let end = base + epoch_off + rows.end as u64 * u64::from(width);
        let mut line = start & !63;
        while line < end {
            probe.load(line, 64);
            line += 64;
        }
        probe.int_ops((rows.len() as u64 / 8).max(1));
    }

    /// Late materialization of one cell: a single encoded-width load.
    pub fn gather<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        table: &ColumnarTable,
        col: usize,
        row: usize,
    ) {
        if let Some(bases) = self.columnar.get(table.name()) {
            let (base, span, width) = bases[col];
            let epoch_off = (self.scan_epoch % 4) * span;
            probe.load(base + epoch_off + row as u64 * u64::from(width), width);
        }
        probe.int_ops(1);
    }

    /// A compact hash-table access: the vectorized engine stores 16-byte
    /// (hash, payload-index) slots instead of the row engine's 48-byte
    /// boxed entries.
    pub fn hash_access_compact<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        hash: u64,
        buckets: usize,
        write: bool,
    ) {
        let slot = splitmix64(hash) % (buckets.max(1) as u64);
        let addr = self.hash_area_base + (slot * 16) % self.hash_area_span;
        if write {
            probe.store(addr & !7, 16);
        } else {
            probe.load(addr & !7, 16);
        }
        probe.int_ops(4);
        probe.branch(hash.is_multiple_of(3));
    }

    /// Per-morsel operator overhead: the vectorized engine crosses the
    /// operator stack once per ~1024-row morsel, not once per row.
    pub fn on_morsel<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event);
    }

    /// Pre-touches the engine code (warm-up).
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
    }
}

impl Default for SqlTraceModel {
    fn default() -> Self {
        Self::new()
    }
}

fn column_bases(
    asp: &mut AddressSpace,
    name: &str,
    schema: &Schema,
    rows: usize,
) -> Vec<(u64, u64)> {
    (0..schema.arity())
        .map(|c| {
            let bytes = (rows.max(1) * schema.column_type(c).width()) as u64;
            // Four epochs' worth so successive scans are cold.
            (asp.alloc(bytes * 4, &format!("{name}.{}", schema.column_name(c))), bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::value::Value;
    use bdb_archsim::CountingProbe;

    fn table(rows: usize) -> Table {
        let mut t =
            Table::new("t", Schema::new(&[("id", ColumnType::Int), ("p", ColumnType::Float)]));
        for i in 0..rows {
            t.push_row(vec![Value::Int(i as i64), Value::Float(i as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn register_and_read() {
        let mut m = SqlTraceModel::new();
        let t = table(100);
        m.register_table(&t);
        let mut p = CountingProbe::default();
        m.column_read(&mut p, &t, 5, 0);
        m.column_read(&mut p, &t, 6, 0);
        assert_eq!(p.mix().loads, 2);
    }

    #[test]
    fn unregistered_table_reads_are_computation_only() {
        let mut m = SqlTraceModel::new();
        let t = table(10);
        let mut p = CountingProbe::default();
        m.column_read(&mut p, &t, 0, 0);
        assert_eq!(p.mix().loads, 0);
        assert!(p.mix().int_ops > 0);
    }

    #[test]
    fn hash_access_read_write() {
        let mut m = SqlTraceModel::new();
        let mut p = CountingProbe::default();
        m.hash_access(&mut p, 42, 1024, false);
        m.hash_access(&mut p, 42, 1024, true);
        assert_eq!(p.mix().loads, 1);
        assert_eq!(p.mix().stores, 1);
    }

    #[test]
    fn query_invokes_stack() {
        let mut m = SqlTraceModel::new();
        let mut p = CountingProbe::default();
        m.on_query(&mut p);
        assert!(p.mix().other > 0);
    }

    #[test]
    fn column_scan_streams_whole_cachelines() {
        let mut m = SqlTraceModel::new();
        let t = table(1000);
        let c = crate::column::ColumnarTable::from_table(&t);
        m.register_columnar(&c);
        let mut p = CountingProbe::default();
        // "id" narrows to 4 bytes: 1000 rows = 4000 bytes = 63 lines.
        m.column_scan(&mut p, &c, 0, 0..1000);
        assert!(p.mix().loads >= 62 && p.mix().loads <= 64, "loads = {}", p.mix().loads);
        // Far fewer than one load per row — that's the bandwidth win.
        assert!(p.mix().loads < 1000 / 8);
    }

    #[test]
    fn gather_is_one_encoded_load() {
        let mut m = SqlTraceModel::new();
        let t = table(100);
        let c = crate::column::ColumnarTable::from_table(&t);
        m.register_columnar(&c);
        let mut p = CountingProbe::default();
        m.gather(&mut p, &c, 1, 7);
        assert_eq!(p.mix().loads, 1);
    }

    #[test]
    fn unregistered_columnar_scan_is_computation_only() {
        let mut m = SqlTraceModel::new();
        let t = table(10);
        let c = crate::column::ColumnarTable::from_table(&t);
        let mut p = CountingProbe::default();
        m.column_scan(&mut p, &c, 0, 0..10);
        assert_eq!(p.mix().loads, 0);
        assert!(p.mix().int_ops > 0);
    }

    #[test]
    fn compact_hash_slots_are_smaller_than_row_slots() {
        let mut m = SqlTraceModel::new();
        let mut p = CountingProbe::default();
        m.hash_access_compact(&mut p, 42, 1024, false);
        m.hash_access_compact(&mut p, 42, 1024, true);
        assert_eq!(p.mix().loads, 1);
        assert_eq!(p.mix().stores, 1);
    }
}
