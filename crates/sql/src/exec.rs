//! Query operators: select (scan+filter), aggregate (hash group-by) and
//! hash join.
//!
//! Each operator comes in a plain form and a `*_traced` form that
//! reports its access pattern through a [`Probe`] and [`SqlTraceModel`].

use crate::expr::Expr;
use crate::table::Table;
use crate::trace::SqlTraceModel;
use crate::value::{Value, ValueRef};
use crate::SqlError;
use bdb_archsim::{NullProbe, Probe};
use bdb_telemetry::{span, SpanRecorder};
use std::collections::HashMap;

/// Aggregate functions for [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// Row count.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Arithmetic mean of a numeric column.
    Avg,
    /// Minimum by total order.
    Min,
    /// Maximum by total order.
    Max,
}

/// One aggregation: a function over a column (ignored for `Count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    /// The function.
    pub func: AggregateFn,
    /// The input column name (any column for `Count`).
    pub column: String,
}

impl Aggregation {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        Self { func: AggregateFn::Count, column: String::new() }
    }

    /// `SUM(column)`.
    pub fn sum(column: &str) -> Self {
        Self { func: AggregateFn::Sum, column: column.to_owned() }
    }

    /// `AVG(column)`.
    pub fn avg(column: &str) -> Self {
        Self { func: AggregateFn::Avg, column: column.to_owned() }
    }

    /// `MIN(column)`.
    pub fn min(column: &str) -> Self {
        Self { func: AggregateFn::Min, column: column.to_owned() }
    }

    /// `MAX(column)`.
    pub fn max(column: &str) -> Self {
        Self { func: AggregateFn::Max, column: column.to_owned() }
    }
}

/// Running accumulator for one aggregate over one group. Shared with
/// the columnar kernels so both engines have bit-identical float
/// accumulation semantics.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(u64),
    Sum(f64),
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    pub(crate) fn new(f: AggregateFn) -> Self {
        match f {
            AggregateFn::Count => Acc::Count(0),
            AggregateFn::Sum => Acc::Sum(0.0),
            AggregateFn::Avg => Acc::Avg(0.0, 0),
            AggregateFn::Min => Acc::Min(None),
            AggregateFn::Max => Acc::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: ValueRef<'_>) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => {
                if let Some(x) = v.as_float() {
                    *s += x;
                }
            }
            Acc::Avg(s, n) => {
                if let Some(x) = v.as_float() {
                    *s += x;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| v.total_cmp(&cur.view()) == std::cmp::Ordering::Less)
                {
                    *m = Some(v.to_value());
                }
            }
            Acc::Max(m) => {
                if !v.is_null()
                    && m.as_ref()
                        .is_none_or(|cur| v.total_cmp(&cur.view()) == std::cmp::Ordering::Greater)
                {
                    *m = Some(v.to_value());
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Avg(_, 0) => Value::Null,
            Acc::Avg(s, n) => Value::Float(s / n as f64),
            Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

/// `SELECT projection... FROM table WHERE predicate` — scan + filter.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns in the predicate or
/// projection.
pub fn select(
    table: &Table,
    predicate: &Expr,
    projection: &[&str],
) -> Result<Vec<Vec<Value>>, SqlError> {
    select_traced(table, predicate, projection, &mut NullProbe, &mut None)
}

/// [`select`] with per-operator execution spans on `telemetry`
/// (one `select-scan` span covering the scan+filter).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn select_instrumented(
    table: &Table,
    predicate: &Expr,
    projection: &[&str],
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    select_impl(table, predicate, projection, &mut NullProbe, &mut None, telemetry)
}

/// Instrumented [`select`] (architectural probe form).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn select_traced<P: Probe + ?Sized>(
    table: &Table,
    predicate: &Expr,
    projection: &[&str],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    select_impl(table, predicate, projection, probe, trace, &SpanRecorder::disabled())
}

fn select_impl<P: Probe + ?Sized>(
    table: &Table,
    predicate: &Expr,
    projection: &[&str],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let bound = predicate.bind(table)?;
    let proj: Vec<usize> = projection
        .iter()
        .map(|c| table.schema().resolve(c).map(|(i, _)| i))
        .collect::<Result<_, _>>()?;
    let pred_cols: Vec<usize> = predicate
        .columns()
        .into_iter()
        .map(|c| table.schema().resolve(c).map(|(i, _)| i))
        .collect::<Result<_, _>>()?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    probe.phase("scan");
    let mut scan_span = span!(telemetry, "sql", "select-scan", rows = table.len());
    let mut out = Vec::new();
    for row in 0..table.len() {
        if let Some(t) = trace.as_mut() {
            t.on_row(probe);
            for &c in &pred_cols {
                t.column_read(probe, table, row, c);
            }
            probe.branch(row % 7 == 0);
            if row % 1024 == 0 {
                t.on_batch(probe);
            }
        }
        if bound.matches(table, row) {
            if let Some(t) = trace.as_mut() {
                for &c in &proj {
                    t.column_read(probe, table, row, c);
                }
            }
            out.push(proj.iter().map(|&c| table.value(row, c)).collect());
        }
    }
    scan_span.arg("output_rows", out.len());
    Ok(out)
}

/// `SELECT group_col, aggs... FROM table GROUP BY group_col` — hash
/// aggregation. Returns one row per group: the group key followed by
/// aggregate results, ordered by group key.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate(
    table: &Table,
    group_by: &str,
    aggs: &[Aggregation],
) -> Result<Vec<Vec<Value>>, SqlError> {
    aggregate_traced(table, group_by, aggs, &mut NullProbe, &mut None)
}

/// [`aggregate`] with per-operator execution spans on `telemetry`
/// (one `aggregate` span covering build + finalize).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate_instrumented(
    table: &Table,
    group_by: &str,
    aggs: &[Aggregation],
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    aggregate_impl(table, group_by, aggs, &mut NullProbe, &mut None, telemetry)
}

/// Instrumented [`aggregate`] (architectural probe form).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate_traced<P: Probe + ?Sized>(
    table: &Table,
    group_by: &str,
    aggs: &[Aggregation],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    aggregate_impl(table, group_by, aggs, probe, trace, &SpanRecorder::disabled())
}

fn aggregate_impl<P: Probe + ?Sized>(
    table: &Table,
    group_by: &str,
    aggs: &[Aggregation],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let (gcol, _) = table.schema().resolve(group_by)?;
    let acols: Vec<usize> = aggs
        .iter()
        .map(|a| {
            if a.func == AggregateFn::Count && a.column.is_empty() {
                Ok(gcol)
            } else {
                table.schema().resolve(&a.column).map(|(i, _)| i)
            }
        })
        .collect::<Result<_, _>>()?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    probe.phase("aggregate");
    let mut agg_span = span!(telemetry, "sql", "aggregate", rows = table.len());
    let mut groups: HashMap<u64, (Value, Vec<Acc>)> = HashMap::new();
    let buckets = (table.len() / 4).max(64);
    for row in 0..table.len() {
        let key = table.value_ref(row, gcol);
        let h = key.hash64();
        if let Some(t) = trace.as_mut() {
            t.on_row(probe);
            t.column_read(probe, table, row, gcol);
            t.hash_access(probe, h, buckets, false);
            for &c in &acols {
                t.column_read(probe, table, row, c);
            }
            t.hash_access(probe, h, buckets, true);
            if row % 1024 == 0 {
                t.on_batch(probe);
            }
        }
        let entry = groups
            .entry(h)
            .or_insert_with(|| (key.to_value(), aggs.iter().map(|a| Acc::new(a.func)).collect()));
        for (acc, &c) in entry.1.iter_mut().zip(&acols) {
            acc.update(table.value_ref(row, c));
        }
    }
    let mut rows: Vec<Vec<Value>> = groups
        .into_values()
        .map(|(key, accs)| {
            let mut row = vec![key];
            row.extend(accs.into_iter().map(Acc::finish));
            row
        })
        .collect();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    agg_span.arg("groups", rows.len());
    Ok(rows)
}

/// `SELECT left.*, right.* FROM left JOIN right ON left.lcol = right.rcol`
/// — classic build/probe hash join (build side = left). Returns
/// concatenated rows.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join(
    left: &Table,
    lcol: &str,
    right: &Table,
    rcol: &str,
) -> Result<Vec<Vec<Value>>, SqlError> {
    hash_join_traced(left, lcol, right, rcol, &mut NullProbe, &mut None)
}

/// [`hash_join`] with per-operator execution spans on `telemetry`
/// (`join-build` over the left table, `join-probe` over the right).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join_instrumented(
    left: &Table,
    lcol: &str,
    right: &Table,
    rcol: &str,
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    hash_join_impl(left, lcol, right, rcol, &mut NullProbe, &mut None, telemetry)
}

/// Instrumented [`hash_join`] (architectural probe form).
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join_traced<P: Probe + ?Sized>(
    left: &Table,
    lcol: &str,
    right: &Table,
    rcol: &str,
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    hash_join_impl(left, lcol, right, rcol, probe, trace, &SpanRecorder::disabled())
}

#[allow(clippy::too_many_arguments)]
fn hash_join_impl<P: Probe + ?Sized>(
    left: &Table,
    lcol: &str,
    right: &Table,
    rcol: &str,
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let (li, _) = left.schema().resolve(lcol)?;
    let (ri, _) = right.schema().resolve(rcol)?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    // Build phase over the left table.
    probe.phase("build");
    let build_span = span!(telemetry, "sql", "join-build", rows = left.len());
    let buckets = left.len().max(64);
    let mut build: HashMap<u64, Vec<usize>> = HashMap::with_capacity(left.len());
    for row in 0..left.len() {
        let key = left.value_ref(row, li);
        if key.is_null() {
            continue; // NULL never joins
        }
        let h = key.hash64();
        if let Some(t) = trace.as_mut() {
            t.on_row(probe);
            t.column_read(probe, left, row, li);
            t.hash_access(probe, h, buckets, true);
        }
        build.entry(h).or_default().push(row);
    }
    drop(build_span);
    // Probe phase over the right table.
    probe.phase("probe");
    let mut probe_span = span!(telemetry, "sql", "join-probe", rows = right.len());
    let mut out = Vec::new();
    for row in 0..right.len() {
        let key = right.value_ref(row, ri);
        if key.is_null() {
            continue;
        }
        let h = key.hash64();
        if let Some(t) = trace.as_mut() {
            t.on_row(probe);
            t.column_read(probe, right, row, ri);
            t.hash_access(probe, h, buckets, false);
            if row % 1024 == 0 {
                t.on_batch(probe);
            }
        }
        if let Some(matches) = build.get(&h) {
            for &lrow in matches {
                // Re-check equality (hash collisions).
                if left.value_ref(lrow, li).total_cmp(&key) == std::cmp::Ordering::Equal {
                    if let Some(t) = trace.as_mut() {
                        for c in 0..left.schema().arity() {
                            t.column_read(probe, left, lrow, c);
                        }
                        for c in 0..right.schema().arity() {
                            t.column_read(probe, right, row, c);
                        }
                    }
                    let mut joined =
                        Vec::with_capacity(left.schema().arity() + right.schema().arity());
                    left.append_row_to(lrow, &mut joined);
                    right.append_row_to(row, &mut joined);
                    out.push(joined);
                }
            }
        }
    }
    probe_span.arg("output_rows", out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{ColumnType, Schema};

    fn orders() -> Table {
        let mut t = Table::new(
            "orders",
            Schema::new(&[
                ("order_id", ColumnType::Int),
                ("buyer_id", ColumnType::Int),
                ("date", ColumnType::Date),
            ]),
        );
        for (o, b, d) in [(1, 10, 5), (2, 11, 6), (3, 10, 7), (4, 12, 8)] {
            t.push_row(vec![Value::Int(o), Value::Int(b), Value::Date(d)]).unwrap();
        }
        t
    }

    fn items() -> Table {
        let mut t = Table::new(
            "items",
            Schema::new(&[
                ("item_id", ColumnType::Int),
                ("order_id", ColumnType::Int),
                ("amount", ColumnType::Float),
            ]),
        );
        for (i, o, a) in [(1, 1, 10.0), (2, 1, 5.0), (3, 2, 7.5), (4, 3, 1.0), (5, 9, 99.0)] {
            t.push_row(vec![Value::Int(i), Value::Int(o), Value::Float(a)]).unwrap();
        }
        t
    }

    #[test]
    fn select_filters_and_projects() {
        let t = orders();
        let rows = select(&t, &col("buyer_id").eq(lit(10)), &["order_id"]).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn select_unknown_column_errors() {
        let t = orders();
        assert!(select(&t, &col("nope").eq(lit(1)), &["order_id"]).is_err());
        assert!(select(&t, &col("buyer_id").eq(lit(1)), &["nope"]).is_err());
    }

    #[test]
    fn aggregate_count_sum_avg() {
        let t = items();
        let rows = aggregate(
            &t,
            "order_id",
            &[Aggregation::count(), Aggregation::sum("amount"), Aggregation::avg("amount")],
        )
        .unwrap();
        // Groups sorted by key: 1, 2, 3, 9.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Float(15.0));
        assert_eq!(rows[0][3], Value::Float(7.5));
        assert_eq!(rows[3][0], Value::Int(9));
    }

    #[test]
    fn aggregate_min_max() {
        let t = items();
        let rows =
            aggregate(&t, "order_id", &[Aggregation::min("amount"), Aggregation::max("amount")])
                .unwrap();
        assert_eq!(rows[0][1], Value::Float(5.0));
        assert_eq!(rows[0][2], Value::Float(10.0));
    }

    #[test]
    fn join_matches_foreign_keys() {
        let joined = hash_join(&orders(), "order_id", &items(), "order_id").unwrap();
        // Orders 1 (2 items), 2 (1), 3 (1): 4 joined rows; item 5 dangles.
        assert_eq!(joined.len(), 4);
        for row in &joined {
            assert_eq!(row.len(), 6);
            assert_eq!(row[0], row[4], "join keys equal");
        }
    }

    #[test]
    fn join_ignores_nulls() {
        let mut l = Table::new("l", Schema::new(&[("k", ColumnType::Int)]));
        l.push_row(vec![Value::Null]).unwrap();
        l.push_row(vec![Value::Int(1)]).unwrap();
        let mut r = Table::new("r", Schema::new(&[("k", ColumnType::Int)]));
        r.push_row(vec![Value::Null]).unwrap();
        r.push_row(vec![Value::Int(1)]).unwrap();
        let joined = hash_join(&l, "k", &r, "k").unwrap();
        assert_eq!(joined.len(), 1, "NULL keys never join");
    }

    #[test]
    fn traced_operators_match_plain_results() {
        use bdb_archsim::CountingProbe;
        let t = orders();
        let mut trace = Some(SqlTraceModel::new());
        trace.as_mut().unwrap().register_table(&t);
        let mut probe = CountingProbe::default();
        let traced =
            select_traced(&t, &col("buyer_id").eq(lit(10)), &["order_id"], &mut probe, &mut trace)
                .unwrap();
        let plain = select(&t, &col("buyer_id").eq(lit(10)), &["order_id"]).unwrap();
        assert_eq!(traced, plain);
        assert!(probe.mix().loads > 0, "column reads recorded");
        assert!(probe.mix().other > 0, "engine stack recorded");
    }

    #[test]
    fn traced_aggregate_and_join_record_hash_traffic() {
        use bdb_archsim::CountingProbe;
        let o = orders();
        let i = items();
        let mut trace = Some(SqlTraceModel::new());
        trace.as_mut().unwrap().register_table(&o);
        trace.as_mut().unwrap().register_table(&i);
        let mut probe = CountingProbe::default();
        aggregate_traced(&i, "order_id", &[Aggregation::count()], &mut probe, &mut trace).unwrap();
        let loads_after_agg = probe.mix().loads;
        hash_join_traced(&o, "order_id", &i, "order_id", &mut probe, &mut trace).unwrap();
        assert!(probe.mix().stores > 0, "hash builds recorded");
        assert!(probe.mix().loads > loads_after_agg, "probe loads recorded");
    }

    #[test]
    fn instrumented_operators_emit_spans_and_match_plain_results() {
        let o = orders();
        let i = items();
        let telemetry = SpanRecorder::enabled();
        let sel = select_instrumented(&o, &col("buyer_id").eq(lit(10)), &["order_id"], &telemetry)
            .unwrap();
        assert_eq!(sel, select(&o, &col("buyer_id").eq(lit(10)), &["order_id"]).unwrap());
        let agg =
            aggregate_instrumented(&i, "order_id", &[Aggregation::count()], &telemetry).unwrap();
        assert_eq!(agg, aggregate(&i, "order_id", &[Aggregation::count()]).unwrap());
        let joined = hash_join_instrumented(&o, "order_id", &i, "order_id", &telemetry).unwrap();
        assert_eq!(joined, hash_join(&o, "order_id", &i, "order_id").unwrap());

        let events = telemetry.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("select-scan"), 1);
        assert_eq!(count("aggregate"), 1);
        assert_eq!(count("join-build"), 1);
        assert_eq!(count("join-probe"), 1);
        // Build completes before probe starts.
        let build = events.iter().find(|e| e.name == "join-build").unwrap();
        let probe = events.iter().find(|e| e.name == "join-probe").unwrap();
        assert!(build.start_us <= probe.start_us);
    }

    #[test]
    fn aggregate_on_empty_table() {
        let t = Table::new("e", Schema::new(&[("k", ColumnType::Int)]));
        let rows = aggregate(&t, "k", &[Aggregation::count()]).unwrap();
        assert!(rows.is_empty());
    }
}
