//! A small SQL text front-end for the three query shapes the paper's
//! realtime-analytics workloads use (Hive-QL style).
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT col[, col]* FROM table [WHERE cond [AND cond]*]
//! SELECT key, AGG(col)[, AGG(col)]* FROM table GROUP BY key
//! SELECT * FROM t1 JOIN t2 ON t1.col = t2.col
//! cond := col (=|!=|<|<=|>|>=) literal
//! AGG  := COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
//! ```
//!
//! # Example
//!
//! ```
//! use bdb_sql::{Database, Table, Schema, ColumnType, Value, parser};
//!
//! let mut db = Database::new();
//! let mut t = Table::new("items", Schema::new(&[
//!     ("id", ColumnType::Int), ("price", ColumnType::Float),
//! ]));
//! t.push_row(vec![Value::Int(1), Value::Float(10.0)]).unwrap();
//! t.push_row(vec![Value::Int(2), Value::Float(3.0)]).unwrap();
//! db.register(t);
//!
//! let rows = parser::execute(&db, "SELECT id FROM items WHERE price > 5.0").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

use crate::exec::{self, Aggregation};
use crate::expr::{col, lit, Expr};
use crate::table::Database;
use crate::value::Value;
use crate::SqlError;

/// A parsed query, ready to run against a [`Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Scan + filter + project.
    Select {
        /// Projected column names.
        columns: Vec<String>,
        /// Source table.
        table: String,
        /// Conjunctive predicates (empty = all rows).
        predicates: Vec<(String, CmpOp, Value)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// GROUP BY column.
        key: String,
        /// Aggregations in select-list order.
        aggs: Vec<Aggregation>,
        /// Source table.
        table: String,
    },
    /// Hash equi-join.
    Join {
        /// Left table.
        left: String,
        /// Left join column.
        left_col: String,
        /// Right table.
        right: String,
        /// Right join column.
        right_col: String,
    },
}

/// Comparison operators accepted in `WHERE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Parse errors with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError { message: message.into() }
}

/// Tokenizes on whitespace, commas and parens/operators.
fn tokenize(sql: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' | '\n' | '\r' => flush(&mut cur, &mut tokens),
            ',' | '(' | ')' => {
                flush(&mut cur, &mut tokens);
                tokens.push(c.to_string());
            }
            '=' => {
                flush(&mut cur, &mut tokens);
                tokens.push("=".to_owned());
            }
            '!' | '<' | '>' => {
                flush(&mut cur, &mut tokens);
                let mut op = c.to_string();
                if matches!(chars.peek(), Some('=') | Some('>')) && c != '>'
                    || chars.peek() == Some(&'=')
                {
                    op.push(chars.next().expect("peeked"));
                }
                tokens.push(op);
            }
            '\'' => {
                flush(&mut cur, &mut tokens);
                let mut s = String::from("'");
                for c in chars.by_ref() {
                    if c == '\'' {
                        break;
                    }
                    s.push(c);
                }
                tokens.push(s);
            }
            _ => cur.push(c),
        }
    }
    flush(&mut cur, &mut tokens);
    tokens
}

fn flush(cur: &mut String, tokens: &mut Vec<String>) {
    if !cur.is_empty() {
        tokens.push(std::mem::take(cur));
    }
}

struct Cursor {
    tokens: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<&str, ParseError> {
        let t = self.tokens.get(self.pos).ok_or_else(|| err("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        let t = self.next()?;
        if t.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(err(format!("expected `{kw}`, found `{t}`")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }

    fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

/// Parses one SQL statement into a [`Query`].
///
/// # Errors
///
/// Returns [`ParseError`] describing the first offending token.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let mut c = Cursor { tokens: tokenize(sql), pos: 0 };
    c.expect_kw("SELECT")?;

    // Join form: SELECT * FROM a JOIN b ON a.x = b.y
    if c.peek() == Some("*") {
        c.next()?;
        c.expect_kw("FROM")?;
        let left = c.next()?.to_owned();
        c.expect_kw("JOIN")?;
        let right = c.next()?.to_owned();
        c.expect_kw("ON")?;
        let (lt, lc) = qualified(c.next()?)?;
        c.expect_kw("=")?;
        let (rt, rc) = qualified(c.next()?)?;
        if lt != left || rt != right {
            return Err(err("ON clause must reference `left.col = right.col`"));
        }
        if !c.done() {
            return Err(err(format!("trailing tokens after join: `{}`", c.next()?)));
        }
        return Ok(Query::Join { left, left_col: lc, right, right_col: rc });
    }

    // Select list: plain columns and/or aggregates.
    let mut columns: Vec<String> = Vec::new();
    let mut aggs: Vec<Aggregation> = Vec::new();
    loop {
        let tok = c.next()?.to_owned();
        let upper = tok.to_ascii_uppercase();
        if matches!(upper.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
            c.expect_kw("(")?;
            let arg = c.next()?.to_owned();
            c.expect_kw(")")?;
            let agg = match upper.as_str() {
                "COUNT" => {
                    if arg != "*" {
                        return Err(err("only COUNT(*) is supported"));
                    }
                    Aggregation::count()
                }
                "SUM" => Aggregation::sum(&arg),
                "AVG" => Aggregation::avg(&arg),
                "MIN" => Aggregation::min(&arg),
                _ => Aggregation::max(&arg),
            };
            aggs.push(agg);
        } else {
            columns.push(tok);
        }
        if c.peek() == Some(",") {
            c.next()?;
            continue;
        }
        break;
    }
    c.expect_kw("FROM")?;
    let table = c.next()?.to_owned();

    if c.peek_kw("GROUP") {
        c.next()?;
        c.expect_kw("BY")?;
        let key = c.next()?.to_owned();
        if columns != vec![key.clone()] {
            return Err(err("the select list must be `key, AGG(...)...` for GROUP BY"));
        }
        if aggs.is_empty() {
            return Err(err("GROUP BY requires at least one aggregate"));
        }
        if !c.done() {
            return Err(err(format!("trailing tokens: `{}`", c.next()?)));
        }
        return Ok(Query::Aggregate { key, aggs, table });
    }

    if !aggs.is_empty() {
        return Err(err("aggregates require GROUP BY"));
    }

    let mut predicates = Vec::new();
    if c.peek_kw("WHERE") {
        c.next()?;
        loop {
            let column = c.next()?.to_owned();
            let op = match c.next()? {
                "=" => CmpOp::Eq,
                "!=" | "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(err(format!("unknown operator `{other}`"))),
            };
            let value = literal(c.next()?)?;
            predicates.push((column, op, value));
            if c.peek_kw("AND") {
                c.next()?;
                continue;
            }
            break;
        }
    }
    if !c.done() {
        return Err(err(format!("trailing tokens: `{}`", c.next()?)));
    }
    Ok(Query::Select { columns, table, predicates })
}

fn qualified(tok: &str) -> Result<(String, String), ParseError> {
    tok.split_once('.')
        .map(|(t, c)| (t.to_owned(), c.to_owned()))
        .ok_or_else(|| err(format!("expected `table.column`, found `{tok}`")))
}

fn literal(tok: &str) -> Result<Value, ParseError> {
    if let Some(s) = tok.strip_prefix('\'') {
        return Ok(Value::Str(s.to_owned()));
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(format!("cannot parse literal `{tok}`")))
}

fn build_predicate(predicates: &[(String, CmpOp, Value)]) -> Expr {
    let mut expr: Option<Expr> = None;
    for (column, op, value) in predicates {
        let c = col(column);
        let v = lit(value.clone());
        let this = match op {
            CmpOp::Eq => c.eq(v),
            CmpOp::Ne => c.ne(v),
            CmpOp::Lt => c.lt(v),
            CmpOp::Le => c.le(v),
            CmpOp::Gt => c.gt(v),
            CmpOp::Ge => c.ge(v),
        };
        expr = Some(match expr {
            Some(acc) => acc.and(this),
            None => this,
        });
    }
    expr.unwrap_or_else(|| lit(1).eq(lit(1)))
}

/// Errors from [`execute`]: parse or execution.
#[derive(Debug)]
pub enum QueryError {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// The parsed query failed against the database.
    Sql(SqlError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => e.fmt(f),
            QueryError::Sql(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<SqlError> for QueryError {
    fn from(e: SqlError) -> Self {
        QueryError::Sql(e)
    }
}

/// Parses and executes `sql` against `db`.
///
/// # Errors
///
/// Returns [`QueryError`] on parse failure, unknown tables/columns or
/// type mismatches.
pub fn execute(db: &Database, sql: &str) -> Result<Vec<Vec<Value>>, QueryError> {
    match parse(sql)? {
        Query::Select { columns, table, predicates } => {
            let t = db.table(&table)?;
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            Ok(exec::select(t, &build_predicate(&predicates), &cols)?)
        }
        Query::Aggregate { key, aggs, table } => {
            let t = db.table(&table)?;
            Ok(exec::aggregate(t, &key, &aggs)?)
        }
        Query::Join { left, left_col, right, right_col } => {
            let l = db.table(&left)?;
            let r = db.table(&right)?;
            Ok(exec::hash_join(l, &left_col, r, &right_col)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::table::Table;

    fn db() -> Database {
        let mut db = Database::new();
        let mut items = Table::new(
            "items",
            Schema::new(&[
                ("id", ColumnType::Int),
                ("goods", ColumnType::Int),
                ("price", ColumnType::Float),
            ]),
        );
        for (i, g, p) in [(1, 10, 5.0), (2, 10, 15.0), (3, 11, 25.0), (4, 12, 2.0)] {
            items.push_row(vec![Value::Int(i), Value::Int(g), Value::Float(p)]).unwrap();
        }
        db.register(items);
        let mut names = Table::new(
            "goods",
            Schema::new(&[("gid", ColumnType::Int), ("name", ColumnType::Str)]),
        );
        for (g, n) in [(10, "apple"), (11, "book")] {
            names.push_row(vec![Value::Int(g), Value::Str(n.into())]).unwrap();
        }
        db.register(names);
        db
    }

    #[test]
    fn select_with_where() {
        let rows = execute(&db(), "SELECT id FROM items WHERE price > 10.0").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    }

    #[test]
    fn select_without_where_returns_all() {
        let rows = execute(&db(), "select id from items").unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn conjunctive_where() {
        let rows =
            execute(&db(), "SELECT id FROM items WHERE price >= 5.0 AND goods = 10").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn string_literals() {
        let rows = execute(&db(), "SELECT gid FROM goods WHERE name = 'book'").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(11)]]);
    }

    #[test]
    fn group_by_aggregates() {
        let rows = execute(
            &db(),
            "SELECT goods, COUNT(*), SUM(price), MAX(price) FROM items GROUP BY goods",
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        // goods=10 group: count 2, sum 20, max 15.
        assert_eq!(rows[0][0], Value::Int(10));
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Float(20.0));
        assert_eq!(rows[0][3], Value::Float(15.0));
    }

    #[test]
    fn join_form() {
        let rows =
            execute(&db(), "SELECT * FROM items JOIN goods ON items.goods = goods.gid").unwrap();
        assert_eq!(rows.len(), 3, "goods 12 has no name row");
        for r in &rows {
            assert_eq!(r.len(), 5);
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse("SELECT FROM items").is_err());
        assert!(parse("SELECT id items").unwrap_err().message.contains("FROM"));
        assert!(parse("SELECT SUM(x) FROM t").unwrap_err().message.contains("GROUP BY"));
        assert!(parse("SELECT COUNT(x) FROM t GROUP BY k").is_err());
        assert!(parse("SELECT a FROM t WHERE a ~ 3").is_err());
        assert!(parse("SELECT * FROM a JOIN b ON a.x = c.y").is_err());
    }

    #[test]
    fn execution_errors_surface() {
        let e = execute(&db(), "SELECT nope FROM items").unwrap_err();
        assert!(matches!(e, QueryError::Sql(SqlError::UnknownColumn(_))));
        let e = execute(&db(), "SELECT id FROM missing").unwrap_err();
        assert!(matches!(e, QueryError::Sql(SqlError::UnknownTable(_))));
    }

    #[test]
    fn tokenizer_handles_operators_and_strings() {
        assert_eq!(tokenize("a<=3 AND b!='x y'"), vec!["a", "<=", "3", "AND", "b", "!=", "'x y"]);
        assert_eq!(tokenize("COUNT(*)"), vec!["COUNT", "(", "*", ")"]);
    }

    #[test]
    fn parse_roundtrip_structures() {
        let q = parse("SELECT k, COUNT(*) FROM t GROUP BY k").unwrap();
        assert!(matches!(q, Query::Aggregate { .. }));
        let q = parse("SELECT a, b FROM t WHERE a < 5").unwrap();
        match q {
            Query::Select { columns, predicates, .. } => {
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(predicates.len(), 1);
                assert_eq!(predicates[0].1, CmpOp::Lt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
