//! Batched predicate evaluation producing selection vectors.
//!
//! A predicate [`Expr`] compiles once per query into a [`CompiledFilter`]
//! tree whose leaves are typed column-vs-literal comparisons; each morsel
//! is then evaluated with branch-light inner loops into a tri-state
//! vector using Kleene three-valued logic encoded as `u8`:
//! `FALSE = 0`, `UNKNOWN = 1` (SQL NULL), `TRUE = 2`. Under this
//! encoding `AND = min`, `OR = max`, `NOT = 2 − x`, which is exactly the
//! row engine's `truthy_and`/`truthy_or`/`Not` semantics — so the
//! columnar filter accepts precisely the rows the oracle accepts
//! (a row passes iff its tri-state is `TRUE`).

use crate::column::{ColumnData, ColumnarTable};
use crate::expr::{truthy, truthy_and, truthy_or, BoundExpr, CmpOp, Expr};
use crate::value::ValueRef;
use crate::SqlError;
use std::ops::Range;

/// Kleene tri-state: definitely false.
pub(crate) const TRI_FALSE: u8 = 0;
/// Kleene tri-state: unknown (SQL NULL).
pub(crate) const TRI_UNKNOWN: u8 = 1;
/// Kleene tri-state: definitely true.
pub(crate) const TRI_TRUE: u8 = 2;

/// A predicate compiled against one table's columnar layout.
#[derive(Debug)]
pub(crate) struct CompiledFilter {
    root: FilterNode,
}

#[derive(Debug)]
enum FilterNode {
    /// Same tri-state for every row.
    Const(u8),
    /// Tri-state fixed for non-null rows, `UNKNOWN` for null rows
    /// (cross-type comparisons order by type tag, constant per column).
    NonNullConst {
        col: usize,
        truth: bool,
    },
    /// Integer column (either encoding) vs integer literal.
    CmpI64 {
        col: usize,
        op: CmpOp,
        rhs: i64,
    },
    /// Numeric column vs literal compared as `f64` total order.
    CmpF64 {
        col: usize,
        op: CmpOp,
        rhs: f64,
    },
    /// Date column vs date literal.
    CmpDate {
        col: usize,
        op: CmpOp,
        rhs: u32,
    },
    /// Dictionary column vs string literal: verdict precomputed per code.
    DictPass {
        col: usize,
        pass: Vec<bool>,
    },
    /// Bare column used as a boolean (SQL truthiness).
    TruthyCol {
        col: usize,
    },
    And(Box<FilterNode>, Box<FilterNode>),
    Or(Box<FilterNode>, Box<FilterNode>),
    Not(Box<FilterNode>),
    /// Row-at-a-time fallback for shapes without a typed fast path
    /// (column-vs-column and nested comparisons).
    Generic(BoundExpr),
}

impl CompiledFilter {
    /// Compiles `predicate` against `table`'s schema and encodings.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::UnknownColumn`] for unresolved names.
    pub(crate) fn compile(predicate: &Expr, table: &ColumnarTable) -> Result<Self, SqlError> {
        Ok(Self { root: compile_node(predicate, table)? })
    }

    /// Evaluates the morsel `rows`, filling `tri` with one Kleene
    /// tri-state per row (indexed from the start of the morsel).
    pub(crate) fn eval_morsel(&self, table: &ColumnarTable, rows: Range<usize>, tri: &mut Vec<u8>) {
        tri.clear();
        tri.resize(rows.len(), TRI_FALSE);
        eval_node(&self.root, table, rows, tri);
    }

    /// Appends to `sel` the row ids of the morsel whose tri-state is
    /// `TRUE` — the selection vector consumed by late materialization.
    pub(crate) fn select_rows(tri: &[u8], base: usize, sel: &mut Vec<u32>) {
        for (i, &t) in tri.iter().enumerate() {
            if t == TRI_TRUE {
                sel.push((base + i) as u32);
            }
        }
    }
}

fn tri_of(v: ValueRef<'_>) -> u8 {
    if v.is_null() {
        TRI_UNKNOWN
    } else if truthy(v) {
        TRI_TRUE
    } else {
        TRI_FALSE
    }
}

fn type_tag(v: &ValueRef<'_>) -> u8 {
    match v {
        ValueRef::Null => 0,
        ValueRef::Int(_) => 1,
        ValueRef::Float(_) => 2,
        ValueRef::Str(_) => 3,
        ValueRef::Date(_) => 4,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn compile_node(e: &Expr, t: &ColumnarTable) -> Result<FilterNode, SqlError> {
    Ok(match e {
        Expr::And(a, b) => {
            FilterNode::And(Box::new(compile_node(a, t)?), Box::new(compile_node(b, t)?))
        }
        Expr::Or(a, b) => {
            FilterNode::Or(Box::new(compile_node(a, t)?), Box::new(compile_node(b, t)?))
        }
        Expr::Not(a) => FilterNode::Not(Box::new(compile_node(a, t)?)),
        Expr::Column(name) => FilterNode::TruthyCol { col: t.schema().resolve(name)?.0 },
        Expr::Literal(v) => FilterNode::Const(tri_of(v.view())),
        Expr::Compare(a, op, b) => match (&**a, &**b) {
            (Expr::Column(name), Expr::Literal(v)) => compile_cmp(t, name, *op, v.view())?,
            (Expr::Literal(v), Expr::Column(name)) => compile_cmp(t, name, flip(*op), v.view())?,
            _ => FilterNode::Generic(e.bind_schema(t.schema())?),
        },
    })
}

/// Typed `column op literal` fast path. Falls back to a constant node
/// when the comparison is decided by type tags alone, matching
/// `ValueRef::total_cmp`'s cross-type ordering.
fn compile_cmp(
    t: &ColumnarTable,
    name: &str,
    op: CmpOp,
    lit: ValueRef<'_>,
) -> Result<FilterNode, SqlError> {
    let col = t.schema().resolve(name)?.0;
    if lit.is_null() {
        // Comparing anything with NULL is NULL.
        return Ok(FilterNode::Const(TRI_UNKNOWN));
    }
    let data = t.column(col).data();
    Ok(match (data, lit) {
        (ColumnData::Int64(_) | ColumnData::Int32(_), ValueRef::Int(x)) => {
            FilterNode::CmpI64 { col, op, rhs: x }
        }
        (ColumnData::Int64(_) | ColumnData::Int32(_), ValueRef::Float(x)) => {
            FilterNode::CmpF64 { col, op, rhs: x }
        }
        (ColumnData::Float64(_), ValueRef::Int(x)) => FilterNode::CmpF64 { col, op, rhs: x as f64 },
        (ColumnData::Float64(_), ValueRef::Float(x)) => FilterNode::CmpF64 { col, op, rhs: x },
        (ColumnData::Date32(_), ValueRef::Date(d)) => FilterNode::CmpDate { col, op, rhs: d },
        (ColumnData::Dict { values, .. }, ValueRef::Str(s)) => FilterNode::DictPass {
            col,
            pass: values.iter().map(|v| op.holds(v.as_str().cmp(s))).collect(),
        },
        // Cross-type: total_cmp orders by type tag, constant per column.
        (_, lit) => {
            let col_tag = match data {
                ColumnData::Int64(_) | ColumnData::Int32(_) => 1,
                ColumnData::Float64(_) => 2,
                ColumnData::Dict { .. } => 3,
                ColumnData::Date32(_) => 4,
            };
            FilterNode::NonNullConst { col, truth: op.holds(col_tag.cmp(&type_tag(&lit))) }
        }
    })
}

/// Evaluates `node` over the morsel into `out` (one tri-state per row).
fn eval_node(node: &FilterNode, t: &ColumnarTable, rows: Range<usize>, out: &mut [u8]) {
    match node {
        FilterNode::Const(v) => out.fill(*v),
        FilterNode::NonNullConst { col, truth } => {
            let nulls = t.column(*col).nulls();
            let fixed = if *truth { TRI_TRUE } else { TRI_FALSE };
            for (i, row) in rows.enumerate() {
                out[i] = if nulls.is_null(row) { TRI_UNKNOWN } else { fixed };
            }
        }
        FilterNode::CmpI64 { col, op, rhs } => {
            let c = t.column(*col);
            let nulls = c.nulls();
            match c.data() {
                ColumnData::Int64(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds(v[row].cmp(rhs)) as u8) * 2
                        };
                    }
                }
                ColumnData::Int32(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds((v[row] as i64).cmp(rhs)) as u8) * 2
                        };
                    }
                }
                _ => unreachable!("CmpI64 compiled for integer columns only"),
            }
        }
        FilterNode::CmpF64 { col, op, rhs } => {
            let c = t.column(*col);
            let nulls = c.nulls();
            match c.data() {
                ColumnData::Float64(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds(v[row].total_cmp(rhs)) as u8) * 2
                        };
                    }
                }
                ColumnData::Int64(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds((v[row] as f64).total_cmp(rhs)) as u8) * 2
                        };
                    }
                }
                ColumnData::Int32(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds(f64::from(v[row]).total_cmp(rhs)) as u8) * 2
                        };
                    }
                }
                _ => unreachable!("CmpF64 compiled for numeric columns only"),
            }
        }
        FilterNode::CmpDate { col, op, rhs } => {
            let c = t.column(*col);
            let nulls = c.nulls();
            match c.data() {
                ColumnData::Date32(v) => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (op.holds(v[row].cmp(rhs)) as u8) * 2
                        };
                    }
                }
                _ => unreachable!("CmpDate compiled for date columns only"),
            }
        }
        FilterNode::DictPass { col, pass } => {
            let c = t.column(*col);
            let nulls = c.nulls();
            match c.data() {
                ColumnData::Dict { codes, .. } => {
                    for (i, row) in rows.enumerate() {
                        out[i] = if nulls.is_null(row) {
                            TRI_UNKNOWN
                        } else {
                            (pass[codes[row] as usize] as u8) * 2
                        };
                    }
                }
                _ => unreachable!("DictPass compiled for dictionary columns only"),
            }
        }
        FilterNode::TruthyCol { col } => {
            let c = t.column(*col);
            for (i, row) in rows.enumerate() {
                out[i] = tri_of(c.value_ref(row));
            }
        }
        FilterNode::And(a, b) => {
            eval_node(a, t, rows.clone(), out);
            let mut rhs = vec![TRI_FALSE; out.len()];
            eval_node(b, t, rows, &mut rhs);
            for (o, r) in out.iter_mut().zip(&rhs) {
                *o = (*o).min(*r); // Kleene AND
            }
        }
        FilterNode::Or(a, b) => {
            eval_node(a, t, rows.clone(), out);
            let mut rhs = vec![TRI_FALSE; out.len()];
            eval_node(b, t, rows, &mut rhs);
            for (o, r) in out.iter_mut().zip(&rhs) {
                *o = (*o).max(*r); // Kleene OR
            }
        }
        FilterNode::Not(a) => {
            eval_node(a, t, rows, out);
            for o in out.iter_mut() {
                *o = 2 - *o; // Kleene NOT
            }
        }
        FilterNode::Generic(expr) => {
            for (i, row) in rows.enumerate() {
                out[i] = tri_of(eval_columnar(expr, t, row));
            }
        }
    }
}

/// Row-at-a-time [`BoundExpr`] evaluation over columnar storage —
/// mirrors `BoundExpr::eval_ref` exactly, reading through
/// [`ColumnVec::value_ref`](crate::column::ColumnVec::value_ref).
fn eval_columnar<'a>(e: &'a BoundExpr, t: &'a ColumnarTable, row: usize) -> ValueRef<'a> {
    match e {
        BoundExpr::Column(i) => t.column(*i).value_ref(row),
        BoundExpr::Literal(v) => v.view(),
        BoundExpr::Compare(a, op, b) => {
            let av = eval_columnar(a, t, row);
            let bv = eval_columnar(b, t, row);
            if av.is_null() || bv.is_null() {
                return ValueRef::Null;
            }
            ValueRef::Int(op.holds(av.total_cmp(&bv)) as i64)
        }
        BoundExpr::And(a, b) => truthy_and(eval_columnar(a, t, row), eval_columnar(b, t, row)),
        BoundExpr::Or(a, b) => truthy_or(eval_columnar(a, t, row), eval_columnar(b, t, row)),
        BoundExpr::Not(a) => match eval_columnar(a, t, row) {
            ValueRef::Null => ValueRef::Null,
            v => ValueRef::Int((!truthy(v)) as i64),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::{ColumnType, Schema};
    use crate::table::Table;
    use crate::value::Value;

    fn table() -> ColumnarTable {
        let mut t = Table::new(
            "t",
            Schema::new(&[
                ("id", ColumnType::Int),
                ("p", ColumnType::Float),
                ("s", ColumnType::Str),
            ]),
        );
        t.push_row(vec![Value::Int(1), Value::Float(10.0), "a".into()]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Float(3.0), "b".into()]).unwrap();
        t.push_row(vec![Value::Int(3), Value::Null, "a".into()]).unwrap();
        ColumnarTable::from_table(&t)
    }

    fn tri_for(e: &Expr, t: &ColumnarTable) -> Vec<u8> {
        let f = CompiledFilter::compile(e, t).unwrap();
        let mut tri = Vec::new();
        f.eval_morsel(t, 0..t.len(), &mut tri);
        tri
    }

    #[test]
    fn typed_comparisons() {
        let t = table();
        assert_eq!(tri_for(&col("id").ge(lit(2)), &t), vec![0, 2, 2]);
        assert_eq!(tri_for(&col("p").gt(lit(5.0)), &t), vec![2, 0, 1], "NULL compares UNKNOWN");
        assert_eq!(tri_for(&col("s").eq(lit("a")), &t), vec![2, 0, 2]);
        assert_eq!(tri_for(&lit(5).gt(col("id")), &t), vec![2, 2, 2], "literal-first flips");
    }

    #[test]
    fn kleene_logic_matches_row_engine() {
        let t = table();
        // NULL AND false = false, NULL AND true = NULL.
        let null_side = col("p").gt(lit(0.0));
        assert_eq!(tri_for(&null_side.clone().and(col("id").eq(lit(99))), &t)[2], TRI_FALSE);
        assert_eq!(tri_for(&null_side.clone().and(col("id").eq(lit(3))), &t)[2], TRI_UNKNOWN);
        // NULL OR true = true, NOT NULL = NULL.
        assert_eq!(tri_for(&null_side.clone().or(col("id").eq(lit(3))), &t)[2], TRI_TRUE);
        assert_eq!(tri_for(&null_side.not(), &t)[2], TRI_UNKNOWN);
    }

    #[test]
    fn cross_type_comparison_is_constant_fold() {
        let t = table();
        // Int column vs Str literal: tag(Int)=1 < tag(Str)=3.
        assert_eq!(tri_for(&col("id").lt(lit("x")), &t), vec![2, 2, 2]);
        assert_eq!(tri_for(&col("id").gt(lit("x")), &t), vec![0, 0, 0]);
        // NULL literal: always UNKNOWN.
        assert_eq!(tri_for(&col("id").eq(Expr::Literal(Value::Null)), &t), vec![1, 1, 1]);
    }

    #[test]
    fn generic_fallback_handles_column_vs_column() {
        let t = table();
        let tri = tri_for(&col("id").lt(col("p")), &t);
        assert_eq!(tri, vec![2, 2, 1], "1<10.0, 2<3.0, 3<NULL→UNKNOWN");
    }

    #[test]
    fn selection_vector_picks_true_rows() {
        let t = table();
        let f = CompiledFilter::compile(&col("id").ge(lit(2)), &t).unwrap();
        let mut tri = Vec::new();
        f.eval_morsel(&t, 0..t.len(), &mut tri);
        let mut sel = Vec::new();
        CompiledFilter::select_rows(&tri, 0, &mut sel);
        assert_eq!(sel, vec![1, 2]);
    }
}
