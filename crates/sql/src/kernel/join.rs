//! Partitioned hash join over typed key columns.
//!
//! Build and probe both run morsel-parallel: the build side is hashed
//! and split into [`PARTITIONS`] disjoint hash tables (stitched in
//! morsel order so collision chains keep global row order), then probe
//! morsels look up their partition's table independently. Matches
//! materialize late — only matched rows gather their payload columns —
//! and per-morsel outputs concatenate in morsel order, so the result
//! row order is exactly the row engine's probe order.

use super::agg::{partition_of, PARTITIONS};
use super::project::gather_row;
use super::{for_each_index, for_each_morsel};
use crate::column::ColumnarTable;
use crate::value::Value;
use bdb_telemetry::{span, SpanRecorder};
use std::collections::HashMap;

/// Morsel-parallel partitioned hash join; returns `left.row ++
/// right.row` for every match, in probe order.
pub(crate) fn join_parallel(
    left: &ColumnarTable,
    li: usize,
    right: &ColumnarTable,
    ri: usize,
    telemetry: &SpanRecorder,
) -> Vec<Vec<Value>> {
    // Build pass 1: hash the left key column into partitions.
    let per_morsel: Vec<[Vec<(u32, u64)>; PARTITIONS]> = for_each_morsel(left.len(), |m, rows| {
        let _s = span!(telemetry, "sql", "build-morsel", morsel = m, rows = rows.len());
        let mut parts: [Vec<(u32, u64)>; PARTITIONS] = std::array::from_fn(|_| Vec::new());
        let col = left.column(li);
        for row in rows {
            let key = col.value_ref(row);
            if key.is_null() {
                continue; // NULL never joins
            }
            let h = key.hash64();
            parts[partition_of(h)].push((row as u32, h));
        }
        parts
    });
    let mut parts: Vec<Vec<(u32, u64)>> = (0..PARTITIONS).map(|_| Vec::new()).collect();
    for morsel in per_morsel {
        for (p, rows) in morsel.into_iter().enumerate() {
            parts[p].extend(rows);
        }
    }
    // Build pass 2: one hash table per partition, chains in row order.
    let tables: Vec<HashMap<u64, Vec<u32>>> = for_each_index(PARTITIONS, |p| {
        let mut span = span!(telemetry, "sql", "build-partition", partition = p);
        let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(parts[p].len());
        for &(row, h) in &parts[p] {
            table.entry(h).or_default().push(row);
        }
        span.arg("keys", table.len());
        table
    });
    // Probe: morsels of the right table look up their partition table
    // and materialize matches late.
    let lcols: Vec<usize> = (0..left.schema().arity()).collect();
    let rcols: Vec<usize> = (0..right.schema().arity()).collect();
    let out_per_morsel: Vec<Vec<Vec<Value>>> = for_each_morsel(right.len(), |m, rows| {
        let mut span = span!(telemetry, "sql", "probe-morsel", morsel = m, rows = rows.len());
        let col = right.column(ri);
        let lkey = left.column(li);
        let mut out = Vec::new();
        for row in rows {
            let key = col.value_ref(row);
            if key.is_null() {
                continue;
            }
            let h = key.hash64();
            if let Some(matches) = tables[partition_of(h)].get(&h) {
                for &lrow in matches {
                    // Re-check equality (hash collisions).
                    if lkey.value_ref(lrow as usize).total_cmp(&key) == std::cmp::Ordering::Equal {
                        let mut joined = Vec::with_capacity(lcols.len() + rcols.len());
                        gather_row(left, &lcols, lrow as usize, &mut joined);
                        gather_row(right, &rcols, row, &mut joined);
                        out.push(joined);
                    }
                }
            }
        }
        span.arg("output_rows", out.len());
        out
    });
    out_per_morsel.into_iter().flatten().collect()
}
