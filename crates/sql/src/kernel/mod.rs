//! Vectorized columnar execution: morsel-driven batched kernels.
//!
//! This is the engine behind the query workloads. Each operator runs
//! over a [`ColumnarTable`] in fixed-size morsels of [`MORSEL`] rows:
//!
//! * **scan/filter** ([`select`]) — a compiled predicate evaluates each
//!   morsel with typed branch-light loops into a Kleene tri-state
//!   vector, producing a selection vector; projection columns are
//!   gathered late, only for selected rows;
//! * **hash aggregation** ([`aggregate`]) — group hashes are computed
//!   per morsel and rows are hash-partitioned so partitions aggregate
//!   in parallel while keeping float accumulation bit-identical to the
//!   row engine;
//! * **partitioned hash join** ([`hash_join`]) — typed key columns are
//!   hashed into per-partition tables, probed morsel-parallel, with
//!   late materialization of matched rows only.
//!
//! The plain and `_instrumented` forms schedule morsels across worker
//! threads (claimed from an atomic counter, results merged in morsel
//! index order, so results are identical for any worker count — the
//! same deterministic worker-pool convention as `bdb-mapreduce`), with
//! one `bdb-telemetry` span per morsel. The `_traced` forms run the
//! same kernels single-threaded under an architectural [`Probe`] with
//! `scan`/`filter`/`agg`/`build`/`probe` phase marks, reading columns
//! through the [`SqlTraceModel`]'s cacheline-granular columnar address
//! model. The row-at-a-time operators in [`crate::exec`] remain as the
//! differential-testing oracle: every kernel returns exactly the rows,
//! values and row order the oracle returns.

mod agg;
mod filter;
mod join;
mod project;

use crate::column::ColumnarTable;
use crate::exec::{AggregateFn, Aggregation};
use crate::expr::Expr;
use crate::schema::{ColumnType, Schema};
use crate::trace::SqlTraceModel;
use crate::value::Value;
use crate::SqlError;
use bdb_telemetry::{span, SpanRecorder};
use filter::CompiledFilter;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use bdb_archsim::Probe;

/// Rows per morsel: big enough to amortize per-batch overhead, small
/// enough that a morsel's working set stays cache-resident.
pub const MORSEL: usize = 1024;

/// The morsel row ranges covering `rows`.
fn morsel_ranges(rows: usize) -> impl Iterator<Item = (usize, Range<usize>)> {
    (0..rows.div_ceil(MORSEL)).map(move |m| (m, m * MORSEL..((m + 1) * MORSEL).min(rows)))
}

/// Runs `f` once per index in `0..n` across worker threads and returns
/// results in index order (deterministic for any worker count).
fn for_each_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map_or(4, |w| w.get()).clamp(1, n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("result slot") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot").expect("every index ran"))
        .collect()
}

/// Morsel-parallel driver: workers claim morsels from a shared counter;
/// results merge in morsel order.
fn for_each_morsel<R, F>(rows: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let n = rows.div_ceil(MORSEL);
    for_each_index(n, |m| f(m, m * MORSEL..((m + 1) * MORSEL).min(rows)))
}

fn resolve(schema: &Schema, name: &str) -> Result<usize, SqlError> {
    schema.resolve(name).map(|(i, _)| i)
}

fn resolve_all(schema: &Schema, names: &[&str]) -> Result<Vec<usize>, SqlError> {
    names.iter().map(|n| resolve(schema, n)).collect()
}

/// Aggregation input columns, mirroring the row engine: `COUNT(*)`
/// counts via the group column.
fn resolve_agg_cols(
    schema: &Schema,
    gcol: usize,
    aggs: &[Aggregation],
) -> Result<Vec<usize>, SqlError> {
    aggs.iter()
        .map(|a| {
            if a.func == AggregateFn::Count && a.column.is_empty() {
                Ok(gcol)
            } else {
                resolve(schema, &a.column)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// select
// ---------------------------------------------------------------------

/// Vectorized `SELECT projection... FROM table WHERE predicate`.
/// Same results, in the same row order, as [`crate::exec::select`].
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns in the predicate or
/// projection.
pub fn select(
    table: &ColumnarTable,
    predicate: &Expr,
    projection: &[&str],
) -> Result<Vec<Vec<Value>>, SqlError> {
    select_instrumented(table, predicate, projection, &SpanRecorder::disabled())
}

/// [`select`] with one `scan-morsel` span per morsel on `telemetry`.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn select_instrumented(
    table: &ColumnarTable,
    predicate: &Expr,
    projection: &[&str],
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let compiled = CompiledFilter::compile(predicate, table)?;
    let proj = resolve_all(table.schema(), projection)?;
    let per_morsel = for_each_morsel(table.len(), |m, rows| {
        let mut span = span!(telemetry, "sql", "scan-morsel", morsel = m, rows = rows.len());
        let mut tri = Vec::new();
        compiled.eval_morsel(table, rows.clone(), &mut tri);
        let mut sel = Vec::new();
        CompiledFilter::select_rows(&tri, rows.start, &mut sel);
        let out = project::gather_rows(table, &proj, &sel);
        span.arg("output_rows", out.len());
        out
    });
    Ok(per_morsel.into_iter().flatten().collect())
}

/// [`select`] under an architectural probe: single-threaded morsel loop
/// emitting `scan` (column scans) and `filter` (predicate + gather)
/// phase activity through the columnar trace model.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn select_traced<P: Probe + ?Sized>(
    table: &ColumnarTable,
    predicate: &Expr,
    projection: &[&str],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let compiled = CompiledFilter::compile(predicate, table)?;
    let proj = resolve_all(table.schema(), projection)?;
    let pred_cols = resolve_all(table.schema(), &predicate.columns())?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    let mut out = Vec::new();
    let mut tri = Vec::new();
    let mut sel = Vec::new();
    for (_m, rows) in morsel_ranges(table.len()) {
        if let Some(t) = trace.as_mut() {
            probe.phase("scan");
            t.on_morsel(probe);
            for &c in &pred_cols {
                t.column_scan(probe, table, c, rows.clone());
            }
        }
        compiled.eval_morsel(table, rows.clone(), &mut tri);
        sel.clear();
        CompiledFilter::select_rows(&tri, rows.start, &mut sel);
        if let Some(t) = trace.as_mut() {
            probe.phase("filter");
            // One comparison per row per predicate column, one
            // selectivity branch per morsel — the vectorized loop is
            // branch-free inside.
            probe.int_ops((rows.len() * pred_cols.len().max(1)) as u64);
            probe.branch(sel.len() * 2 >= rows.len());
            for &row in &sel {
                for &c in &proj {
                    t.gather(probe, table, c, row as usize);
                }
            }
        }
        out.extend(project::gather_rows(table, &proj, &sel));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// aggregate
// ---------------------------------------------------------------------

/// Vectorized `SELECT group_col, aggs... FROM table GROUP BY group_col`.
/// Bit-identical results (including float sums) to
/// [`crate::exec::aggregate`], in the same key order.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate(
    table: &ColumnarTable,
    group_by: &str,
    aggs: &[Aggregation],
) -> Result<Vec<Vec<Value>>, SqlError> {
    aggregate_instrumented(table, group_by, aggs, &SpanRecorder::disabled())
}

/// [`aggregate`] with per-morsel and per-partition spans on `telemetry`.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate_instrumented(
    table: &ColumnarTable,
    group_by: &str,
    aggs: &[Aggregation],
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let gcol = resolve(table.schema(), group_by)?;
    let acols = resolve_agg_cols(table.schema(), gcol, aggs)?;
    Ok(agg::aggregate_parallel(table, gcol, &acols, aggs, telemetry))
}

/// [`aggregate`] under an architectural probe: single-threaded morsel
/// loop emitting `scan` (column scans) and `agg` (hash-table traffic)
/// phases.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn aggregate_traced<P: Probe + ?Sized>(
    table: &ColumnarTable,
    group_by: &str,
    aggs: &[Aggregation],
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let gcol = resolve(table.schema(), group_by)?;
    let acols = resolve_agg_cols(table.schema(), gcol, aggs)?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    // Float-accumulating aggregations pay one FP add per row.
    let fp_per_row = acols
        .iter()
        .zip(aggs)
        .filter(|(&c, a)| {
            matches!(a.func, AggregateFn::Sum | AggregateFn::Avg)
                && matches!(table.schema().column_type(c), ColumnType::Float | ColumnType::Int)
        })
        .count() as u64;
    let buckets = (table.len() / 4).max(64);
    let mut gt = agg::GroupTable::default();
    for (_m, rows) in morsel_ranges(table.len()) {
        if let Some(t) = trace.as_mut() {
            probe.phase("scan");
            t.on_morsel(probe);
            t.column_scan(probe, table, gcol, rows.clone());
            for &c in &acols {
                t.column_scan(probe, table, c, rows.clone());
            }
            probe.phase("agg");
        }
        for row in rows {
            let h = table.column(gcol).value_ref(row).hash64();
            if let Some(t) = trace.as_mut() {
                t.hash_access_compact(probe, h, buckets, false);
                t.hash_access_compact(probe, h, buckets, true);
                if fp_per_row > 0 {
                    probe.fp_ops(fp_per_row);
                }
            }
            gt.update(table, gcol, &acols, aggs, row, h);
        }
    }
    Ok(agg::finish_rows([gt]))
}

// ---------------------------------------------------------------------
// hash join
// ---------------------------------------------------------------------

/// Vectorized `left JOIN right ON left.lcol = right.rcol` — partitioned
/// build/probe hash join (build side = left). Same concatenated rows,
/// in the same probe order, as [`crate::exec::hash_join`].
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join(
    left: &ColumnarTable,
    lcol: &str,
    right: &ColumnarTable,
    rcol: &str,
) -> Result<Vec<Vec<Value>>, SqlError> {
    hash_join_instrumented(left, lcol, right, rcol, &SpanRecorder::disabled())
}

/// [`hash_join`] with per-morsel build/probe spans on `telemetry`.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join_instrumented(
    left: &ColumnarTable,
    lcol: &str,
    right: &ColumnarTable,
    rcol: &str,
    telemetry: &SpanRecorder,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let li = resolve(left.schema(), lcol)?;
    let ri = resolve(right.schema(), rcol)?;
    Ok(join::join_parallel(left, li, right, ri, telemetry))
}

/// [`hash_join`] under an architectural probe: single-threaded morsel
/// loops emitting `build` and `probe` phases with compact hash-slot
/// traffic and late-materialization gathers.
///
/// # Errors
///
/// Returns [`SqlError`] for unknown columns.
pub fn hash_join_traced<P: Probe + ?Sized>(
    left: &ColumnarTable,
    lcol: &str,
    right: &ColumnarTable,
    rcol: &str,
    probe: &mut P,
    trace: &mut Option<SqlTraceModel>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let li = resolve(left.schema(), lcol)?;
    let ri = resolve(right.schema(), rcol)?;
    if let Some(t) = trace.as_mut() {
        t.on_query(probe);
    }
    let buckets = left.len().max(64);
    // Build over the left table.
    let mut build: HashMap<u64, Vec<u32>> = HashMap::with_capacity(left.len());
    for (_m, rows) in morsel_ranges(left.len()) {
        if let Some(t) = trace.as_mut() {
            probe.phase("build");
            t.on_morsel(probe);
            t.column_scan(probe, left, li, rows.clone());
        }
        for row in rows {
            let key = left.column(li).value_ref(row);
            if key.is_null() {
                continue;
            }
            let h = key.hash64();
            if let Some(t) = trace.as_mut() {
                t.hash_access_compact(probe, h, buckets, true);
            }
            build.entry(h).or_default().push(row as u32);
        }
    }
    // Probe over the right table.
    let lcols: Vec<usize> = (0..left.schema().arity()).collect();
    let rcols: Vec<usize> = (0..right.schema().arity()).collect();
    let mut out = Vec::new();
    for (_m, rows) in morsel_ranges(right.len()) {
        if let Some(t) = trace.as_mut() {
            probe.phase("probe");
            t.on_morsel(probe);
            t.column_scan(probe, right, ri, rows.clone());
        }
        for row in rows {
            let key = right.column(ri).value_ref(row);
            if key.is_null() {
                continue;
            }
            let h = key.hash64();
            if let Some(t) = trace.as_mut() {
                t.hash_access_compact(probe, h, buckets, false);
            }
            if let Some(matches) = build.get(&h) {
                for &lrow in matches {
                    if left.column(li).value_ref(lrow as usize).total_cmp(&key)
                        == std::cmp::Ordering::Equal
                    {
                        if let Some(t) = trace.as_mut() {
                            for &c in &lcols {
                                t.gather(probe, left, c, lrow as usize);
                            }
                            for &c in &rcols {
                                t.gather(probe, right, c, row);
                            }
                        }
                        let mut joined = Vec::with_capacity(lcols.len() + rcols.len());
                        project::gather_row(left, &lcols, lrow as usize, &mut joined);
                        project::gather_row(right, &rcols, row, &mut joined);
                        out.push(joined);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::expr::{col, lit};
    use crate::table::Table;
    use crate::value::Value;

    fn tables() -> (Table, Table) {
        let mut orders = Table::new(
            "orders",
            Schema::new(&[
                ("order_id", ColumnType::Int),
                ("buyer_id", ColumnType::Int),
                ("date", ColumnType::Date),
            ]),
        );
        for (o, b, d) in [(1, 10, 5), (2, 11, 6), (3, 10, 7), (4, 12, 8)] {
            orders.push_row(vec![Value::Int(o), Value::Int(b), Value::Date(d)]).unwrap();
        }
        let mut items = Table::new(
            "items",
            Schema::new(&[
                ("item_id", ColumnType::Int),
                ("order_id", ColumnType::Int),
                ("amount", ColumnType::Float),
            ]),
        );
        for (i, o, a) in [(1, 1, 10.0), (2, 1, 5.0), (3, 2, 7.5), (4, 3, 1.0), (5, 9, 99.0)] {
            items.push_row(vec![Value::Int(i), Value::Int(o), Value::Float(a)]).unwrap();
        }
        (orders, items)
    }

    #[test]
    fn select_matches_row_oracle() {
        let (orders, _) = tables();
        let c = ColumnarTable::from_table(&orders);
        let pred = col("buyer_id").eq(lit(10));
        assert_eq!(
            select(&c, &pred, &["order_id"]).unwrap(),
            exec::select(&orders, &pred, &["order_id"]).unwrap()
        );
    }

    #[test]
    fn aggregate_matches_row_oracle() {
        let (_, items) = tables();
        let c = ColumnarTable::from_table(&items);
        let aggs = [Aggregation::count(), Aggregation::sum("amount"), Aggregation::avg("amount")];
        assert_eq!(
            aggregate(&c, "order_id", &aggs).unwrap(),
            exec::aggregate(&items, "order_id", &aggs).unwrap()
        );
    }

    #[test]
    fn join_matches_row_oracle_in_order() {
        let (orders, items) = tables();
        let co = ColumnarTable::from_table(&orders);
        let ci = ColumnarTable::from_table(&items);
        assert_eq!(
            hash_join(&co, "order_id", &ci, "order_id").unwrap(),
            exec::hash_join(&orders, "order_id", &items, "order_id").unwrap()
        );
    }

    #[test]
    fn traced_kernels_match_parallel_results() {
        use bdb_archsim::CountingProbe;
        let (orders, items) = tables();
        let co = ColumnarTable::from_table(&orders);
        let ci = ColumnarTable::from_table(&items);
        let mut trace = Some(SqlTraceModel::new());
        trace.as_mut().unwrap().register_columnar(&co);
        trace.as_mut().unwrap().register_columnar(&ci);
        let mut probe = CountingProbe::default();
        let pred = col("buyer_id").eq(lit(10));
        assert_eq!(
            select_traced(&co, &pred, &["order_id"], &mut probe, &mut trace).unwrap(),
            select(&co, &pred, &["order_id"]).unwrap()
        );
        let aggs = [Aggregation::count(), Aggregation::sum("amount")];
        assert_eq!(
            aggregate_traced(&ci, "order_id", &aggs, &mut probe, &mut trace).unwrap(),
            aggregate(&ci, "order_id", &aggs).unwrap()
        );
        assert_eq!(
            hash_join_traced(&co, "order_id", &ci, "order_id", &mut probe, &mut trace).unwrap(),
            hash_join(&co, "order_id", &ci, "order_id").unwrap()
        );
        assert!(probe.mix().loads > 0, "column scans recorded");
        assert!(probe.mix().stores > 0, "hash builds recorded");
        assert!(probe.mix().other > 0, "engine stack recorded");
    }

    #[test]
    fn instrumented_kernels_emit_morsel_spans() {
        let (orders, items) = tables();
        let co = ColumnarTable::from_table(&orders);
        let ci = ColumnarTable::from_table(&items);
        let telemetry = SpanRecorder::enabled();
        select_instrumented(&co, &col("buyer_id").gt(lit(0)), &["order_id"], &telemetry).unwrap();
        aggregate_instrumented(&ci, "order_id", &[Aggregation::count()], &telemetry).unwrap();
        hash_join_instrumented(&co, "order_id", &ci, "order_id", &telemetry).unwrap();
        let events = telemetry.events();
        for name in ["scan-morsel", "agg-morsel", "agg-partition", "build-morsel", "probe-morsel"] {
            assert!(events.iter().any(|e| e.name == name), "span {name} present");
        }
    }

    #[test]
    fn unknown_columns_error() {
        let (orders, _) = tables();
        let c = ColumnarTable::from_table(&orders);
        assert!(select(&c, &col("nope").eq(lit(1)), &["order_id"]).is_err());
        assert!(select(&c, &col("buyer_id").eq(lit(1)), &["nope"]).is_err());
        assert!(aggregate(&c, "nope", &[Aggregation::count()]).is_err());
        assert!(hash_join(&c, "nope", &c, "order_id").is_err());
    }

    #[test]
    fn empty_table_is_fine() {
        let t = Table::new("e", Schema::new(&[("k", ColumnType::Int)]));
        let c = ColumnarTable::from_table(&t);
        assert!(select(&c, &col("k").gt(lit(0)), &["k"]).unwrap().is_empty());
        assert!(aggregate(&c, "k", &[Aggregation::count()]).unwrap().is_empty());
        assert!(hash_join(&c, "k", &c, "k").unwrap().is_empty());
    }

    #[test]
    fn results_stable_across_morsel_boundaries() {
        // More rows than one morsel so the parallel path really splits.
        let mut t =
            Table::new("big", Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Float)]));
        for i in 0..(MORSEL * 3 + 17) {
            t.push_row(vec![Value::Int((i % 97) as i64), Value::Float(i as f64 * 0.25)]).unwrap();
        }
        let c = ColumnarTable::from_table(&t);
        let pred = col("k").lt(lit(13));
        assert_eq!(select(&c, &pred, &["v"]).unwrap(), exec::select(&t, &pred, &["v"]).unwrap());
        let aggs = [Aggregation::count(), Aggregation::sum("v"), Aggregation::min("v")];
        assert_eq!(aggregate(&c, "k", &aggs).unwrap(), exec::aggregate(&t, "k", &aggs).unwrap());
    }
}
