//! Hash aggregation over column batches.
//!
//! The parallel path is hash-partitioned so float accumulation stays
//! bit-identical to the row oracle: rows are split by group hash into
//! [`PARTITIONS`] disjoint partitions (a group lives wholly in one
//! partition), partition lists are stitched in morsel order so each
//! partition sees its rows in global row order, and partitions then
//! aggregate independently — every group's values are added in exactly
//! the order the single-threaded row engine adds them, regardless of
//! worker count.

use super::{for_each_index, for_each_morsel};
use crate::column::ColumnarTable;
use crate::exec::{Acc, Aggregation};
use crate::value::Value;
use bdb_archsim::layout::splitmix64;
use bdb_telemetry::{span, SpanRecorder};
use std::collections::HashMap;

/// Number of hash partitions in the parallel paths (power of two).
pub(crate) const PARTITIONS: usize = 16;

/// The partition a group hash belongs to (any pure function of the
/// hash works; `splitmix64` decorrelates it from bucket selection).
pub(crate) fn partition_of(h: u64) -> usize {
    (splitmix64(h) & (PARTITIONS as u64 - 1)) as usize
}

/// Group state: key plus one accumulator per aggregation, keyed by the
/// group hash exactly like the row engine's `aggregate`.
#[derive(Debug, Default)]
pub(crate) struct GroupTable {
    groups: HashMap<u64, (Value, Vec<Acc>)>,
}

impl GroupTable {
    /// Folds one row into its group (creating it on first sight).
    pub(crate) fn update(
        &mut self,
        t: &ColumnarTable,
        gcol: usize,
        acols: &[usize],
        aggs: &[Aggregation],
        row: usize,
        h: u64,
    ) {
        let entry = self.groups.entry(h).or_insert_with(|| {
            (
                t.column(gcol).value_ref(row).to_value(),
                aggs.iter().map(|a| Acc::new(a.func)).collect(),
            )
        });
        for (acc, &c) in entry.1.iter_mut().zip(acols) {
            acc.update(t.column(c).value_ref(row));
        }
    }
}

/// Finalizes accumulated groups into output rows ordered by group key
/// (same ordering as the row engine).
pub(crate) fn finish_rows(tables: impl IntoIterator<Item = GroupTable>) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = tables
        .into_iter()
        .flat_map(|t| t.groups.into_values())
        .map(|(key, accs)| {
            let mut row = vec![key];
            row.extend(accs.into_iter().map(Acc::finish));
            row
        })
        .collect();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    rows
}

/// Morsel-parallel partitioned hash aggregation.
pub(crate) fn aggregate_parallel(
    t: &ColumnarTable,
    gcol: usize,
    acols: &[usize],
    aggs: &[Aggregation],
    telemetry: &SpanRecorder,
) -> Vec<Vec<Value>> {
    // Pass 1: hash the group column morsel-by-morsel and split row ids
    // into partitions.
    let per_morsel: Vec<[Vec<(u32, u64)>; PARTITIONS]> = for_each_morsel(t.len(), |m, rows| {
        let mut span = span!(telemetry, "sql", "agg-morsel", morsel = m, rows = rows.len());
        let mut parts: [Vec<(u32, u64)>; PARTITIONS] = std::array::from_fn(|_| Vec::new());
        let col = t.column(gcol);
        for row in rows {
            let h = col.value_ref(row).hash64();
            parts[partition_of(h)].push((row as u32, h));
        }
        span.arg("partitions_touched", parts.iter().filter(|p| !p.is_empty()).count());
        parts
    });
    // Stitch per-partition lists in morsel order: global row order within
    // each partition, the invariant float exactness rests on.
    let mut parts: Vec<Vec<(u32, u64)>> = (0..PARTITIONS).map(|_| Vec::new()).collect();
    for morsel in per_morsel {
        for (p, rows) in morsel.into_iter().enumerate() {
            parts[p].extend(rows);
        }
    }
    // Pass 2: aggregate partitions independently.
    let tables = for_each_index(PARTITIONS, |p| {
        let mut span = span!(telemetry, "sql", "agg-partition", partition = p);
        let mut gt = GroupTable::default();
        for &(row, h) in &parts[p] {
            gt.update(t, gcol, acols, aggs, row as usize, h);
        }
        span.arg("rows", parts[p].len());
        gt
    });
    finish_rows(tables)
}
