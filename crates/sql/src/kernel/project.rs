//! Late materialization: gather selected rows into owned output rows.
//!
//! Kernels carry selection vectors (row ids) through filter/join stages
//! and only touch the projected columns here, at the very end — rows
//! that fail the predicate never pay for their payload columns.

use crate::column::ColumnarTable;
use crate::value::Value;

/// Appends the projected cells of `row` onto `out`.
pub(crate) fn gather_row(t: &ColumnarTable, cols: &[usize], row: usize, out: &mut Vec<Value>) {
    out.reserve(cols.len());
    for &c in cols {
        out.push(t.column(c).value_ref(row).to_value());
    }
}

/// Materializes one output row per selected row id.
pub(crate) fn gather_rows(t: &ColumnarTable, cols: &[usize], sel: &[u32]) -> Vec<Vec<Value>> {
    sel.iter()
        .map(|&row| {
            let mut out = Vec::with_capacity(cols.len());
            gather_row(t, cols, row as usize, &mut out);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::table::Table;

    #[test]
    fn gathers_in_selection_order() {
        let mut t = Table::new("t", Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Str)]));
        for (a, b) in [(1, "x"), (2, "y"), (3, "z")] {
            t.push_row(vec![Value::Int(a), b.into()]).unwrap();
        }
        let c = ColumnarTable::from_table(&t);
        let rows = gather_rows(&c, &[1, 0], &[2, 0]);
        assert_eq!(rows, vec![vec!["z".into(), Value::Int(3)], vec!["x".into(), Value::Int(1)]]);
    }
}
