//! Columnar tables and the database catalog.

use crate::schema::{ColumnType, Schema};
use crate::value::{Value, ValueRef};
use crate::SqlError;
use std::collections::HashMap;

/// Column storage, one vector per column (with a null bitmap folded into
/// `Option`-free representation: nulls are sentinel slots in `nulls`).
#[derive(Debug, Clone)]
enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Date(Vec<u32>),
}

impl Column {
    fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Column::Int(Vec::new()),
            ColumnType::Float => Column::Float(Vec::new()),
            ColumnType::Str => Column::Str(Vec::new()),
            ColumnType::Date => Column::Date(Vec::new()),
        }
    }

    fn push(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => c.push(*x),
            (Column::Int(c), Value::Null) => c.push(i64::MIN),
            (Column::Float(c), Value::Float(x)) => c.push(*x),
            (Column::Float(c), Value::Int(x)) => c.push(*x as f64),
            (Column::Float(c), Value::Null) => c.push(f64::NAN),
            (Column::Str(c), Value::Str(s)) => c.push(s.clone()),
            (Column::Str(c), Value::Null) => c.push(String::new()),
            (Column::Date(c), Value::Date(d)) => c.push(*d),
            (Column::Date(c), Value::Null) => c.push(u32::MAX),
            _ => unreachable!("schema checked before push"),
        }
    }

    fn get_ref(&self, row: usize) -> ValueRef<'_> {
        match self {
            Column::Int(c) => ValueRef::Int(c[row]),
            Column::Float(c) => ValueRef::Float(c[row]),
            Column::Str(c) => ValueRef::Str(&c[row]),
            Column::Date(c) => ValueRef::Date(c[row]),
        }
    }
}

/// A named columnar table.
///
/// # Example
///
/// ```
/// use bdb_sql::{Table, Schema, ColumnType, Value};
/// let mut t = Table::new("t", Schema::new(&[("x", ColumnType::Int)]));
/// t.push_row(vec![Value::Int(7)]).unwrap();
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.value(0, 0), Value::Int(7));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Null positions per column (sparse).
    nulls: Vec<std::collections::HashSet<usize>>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn new(name: &str, schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|i| Column::new(schema.column_type(i))).collect();
        let nulls = (0..schema.arity()).map(|_| std::collections::HashSet::new()).collect();
        Self { name: name.to_owned(), schema, columns, rows: 0, nulls }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Estimated resident bytes.
    pub fn byte_size(&self) -> usize {
        self.rows * self.schema.row_width()
    }

    /// Appends one row after validating it against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::ArityMismatch`] or [`SqlError::TypeMismatch`].
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), SqlError> {
        self.schema.check_row(&row)?;
        for (i, v) in row.iter().enumerate() {
            if v.is_null() {
                self.nulls[i].insert(self.rows);
            }
            self.columns[i].push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// The value at `(row, col)`, NULL-aware.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.value_ref(row, col).to_value()
    }

    /// A borrowed view of the value at `(row, col)` — the hot-path
    /// accessor: no `String` clone for `Str` cells.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn value_ref(&self, row: usize, col: usize) -> ValueRef<'_> {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        if self.nulls[col].contains(&row) {
            return ValueRef::Null;
        }
        self.columns[col].get_ref(row)
    }

    /// Materializes one full row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.schema.arity());
        self.append_row_to(row, &mut out);
        out
    }

    /// Appends the cells of `row` onto `out`, reusing the caller's
    /// buffer instead of allocating a fresh `Vec` per row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn append_row_to(&self, row: usize, out: &mut Vec<Value>) {
        out.reserve(self.schema.arity());
        for c in 0..self.schema.arity() {
            out.push(self.value(row, c));
        }
    }
}

/// A catalog of named tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Looks up a table.
    ///
    /// # Errors
    ///
    /// Returns [`SqlError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables.get(name).ok_or_else(|| SqlError::UnknownTable(name.to_owned()))
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(&[
                ("id", ColumnType::Int),
                ("p", ColumnType::Float),
                ("s", ColumnType::Str),
            ]),
        );
        t.push_row(vec![Value::Int(1), Value::Float(1.5), "a".into()]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null, "b".into()]).unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(1, 1), Value::Null);
        assert_eq!(t.row(1), vec![Value::Int(2), Value::Null, "b".into()]);
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = Table::new("t", Schema::new(&[("x", ColumnType::Float)]));
        t.push_row(vec![Value::Int(3)]).unwrap();
        assert_eq!(t.value(0, 0), Value::Float(3.0));
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = table();
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.push_row(vec!["x".into(), Value::Float(0.0), "y".into()]).is_err());
        assert_eq!(t.len(), 2, "failed pushes must not change the table");
    }

    #[test]
    fn byte_size_grows() {
        let t = table();
        assert_eq!(t.byte_size(), 2 * (8 + 8 + 24));
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        db.register(table());
        assert!(db.table("t").is_ok());
        assert!(matches!(db.table("x"), Err(SqlError::UnknownTable(_))));
        assert_eq!(db.table_names().count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_row_panics() {
        table().value(5, 0);
    }
}
