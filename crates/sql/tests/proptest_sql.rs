//! Property-based tests: operators against naive reference evaluation
//! over randomly generated tables.

use bdb_sql::exec::{aggregate, hash_join, select, Aggregation};
use bdb_sql::expr::{col, lit};
use bdb_sql::{ColumnType, Schema, Table, Value};
use proptest::prelude::*;
use std::collections::HashMap;

fn table_from(rows: &[(i64, f64)]) -> Table {
    let mut t = Table::new("t", Schema::new(&[("k", ColumnType::Int), ("x", ColumnType::Float)]));
    for (k, x) in rows {
        t.push_row(vec![Value::Int(*k), Value::Float(*x)]).expect("schema");
    }
    t
}

proptest! {
    /// select == naive filter for threshold predicates.
    #[test]
    fn select_matches_filter(
        rows in proptest::collection::vec((0i64..50, -100.0f64..100.0), 0..200),
        threshold in -100.0f64..100.0,
    ) {
        let t = table_from(&rows);
        let got = select(&t, &col("x").gt(lit(threshold)), &["k"]).expect("query");
        let expect: Vec<i64> =
            rows.iter().filter(|(_, x)| *x > threshold).map(|(k, _)| *k).collect();
        let got_keys: Vec<i64> = got.iter().map(|r| r[0].as_int().expect("int")).collect();
        prop_assert_eq!(got_keys, expect);
    }

    /// Compound predicates obey boolean algebra: AND result is the
    /// intersection of the individual selects.
    #[test]
    fn and_is_intersection(
        rows in proptest::collection::vec((0i64..20, -10.0f64..10.0), 0..100),
        a in -10.0f64..10.0,
        b in 0i64..20,
    ) {
        let t = table_from(&rows);
        let both = select(&t, &col("x").gt(lit(a)).and(col("k").lt(lit(b))), &["k", "x"])
            .expect("query");
        let left = select(&t, &col("x").gt(lit(a)), &["k", "x"]).expect("query");
        for row in &both {
            prop_assert!(left.contains(row));
            prop_assert!(row[0].as_int().expect("int") < b);
        }
    }

    /// aggregate(COUNT, SUM) == naive grouping.
    #[test]
    fn aggregate_matches_naive(
        rows in proptest::collection::vec((0i64..10, -50.0f64..50.0), 0..150),
    ) {
        let t = table_from(&rows);
        let got = aggregate(&t, "k", &[Aggregation::count(), Aggregation::sum("x")])
            .expect("query");
        let mut expect: HashMap<i64, (i64, f64)> = HashMap::new();
        for (k, x) in &rows {
            let e = expect.entry(*k).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += x;
        }
        prop_assert_eq!(got.len(), expect.len());
        for row in got {
            let k = row[0].as_int().expect("key");
            let (count, sum) = expect[&k];
            prop_assert_eq!(row[1].as_int().expect("count"), count);
            let got_sum = row[2].as_float().expect("sum");
            prop_assert!((got_sum - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        }
    }

    /// MIN/MAX agree with iterator min/max per group.
    #[test]
    fn min_max_match(rows in proptest::collection::vec((0i64..5, -50.0f64..50.0), 1..80)) {
        let t = table_from(&rows);
        let got = aggregate(&t, "k", &[Aggregation::min("x"), Aggregation::max("x")])
            .expect("query");
        for row in got {
            let k = row[0].as_int().expect("key");
            let xs: Vec<f64> = rows.iter().filter(|(rk, _)| *rk == k).map(|(_, x)| *x).collect();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(row[1].as_float().expect("min"), min);
            prop_assert_eq!(row[2].as_float().expect("max"), max);
        }
    }

    /// hash_join == nested-loop join (row multiset equality).
    #[test]
    fn join_matches_nested_loop(
        left in proptest::collection::vec((0i64..15, -9.0f64..9.0), 0..60),
        right in proptest::collection::vec((0i64..15, -9.0f64..9.0), 0..60),
    ) {
        let lt = table_from(&left);
        let rt = table_from(&right);
        let got = hash_join(&lt, "k", &rt, "k").expect("join");
        let mut expect = 0usize;
        for (lk, _) in &left {
            for (rk, _) in &right {
                if lk == rk {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(got.len(), expect);
        for row in &got {
            prop_assert_eq!(row.len(), 4);
            prop_assert_eq!(row[0].clone(), row[2].clone());
        }
    }

    /// Joins are symmetric in cardinality.
    #[test]
    fn join_cardinality_symmetric(
        left in proptest::collection::vec((0i64..8, 0.0f64..1.0), 0..40),
        right in proptest::collection::vec((0i64..8, 0.0f64..1.0), 0..40),
    ) {
        let lt = table_from(&left);
        let rt = table_from(&right);
        let ab = hash_join(&lt, "k", &rt, "k").expect("join").len();
        let ba = hash_join(&rt, "k", &lt, "k").expect("join").len();
        prop_assert_eq!(ab, ba);
    }
}
