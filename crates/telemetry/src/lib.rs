//! Suite-wide telemetry for BigDataBench-RS: spans, metrics, and
//! Chrome-trace/Perfetto export.
//!
//! The paper's contribution is *measurement* — per-workload MIPS, MPKI
//! and data-processed-per-second — and phase-level behaviour (map vs.
//! shuffle vs. reduce) is what distinguishes the workloads. This crate
//! is the shared observability substrate every engine reports through:
//!
//! * [`SpanRecorder`] + [`span!`] — a low-overhead span API. The
//!   disabled recorder ([`SpanRecorder::disabled`]) costs one branch per
//!   span site: no clock read, no allocation, no argument evaluation.
//!   Spans are thread-tagged, so parallel map tasks land on separate
//!   timeline rows.
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`LatencyHistogram`]s shared by handle.
//! * [`chrome_trace_json`] / [`TraceSession`] — export to the Chrome
//!   trace-event format, loadable in `chrome://tracing` or the Perfetto
//!   UI, plus a plain-text metrics summary.
//!
//! Zero external dependencies by design: telemetry must build wherever
//! the suite builds, including fully offline environments, so the JSON
//! writer is hand-rolled.
//!
//! # Example
//!
//! ```
//! use bdb_telemetry::{span, SpanRecorder, MetricsRegistry};
//!
//! let recorder = SpanRecorder::enabled();
//! let metrics = MetricsRegistry::new();
//! {
//!     let _s = span!(recorder, "demo", "work", items = 3usize);
//!     metrics.counter("demo.items").add(3);
//! }
//! let events = recorder.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "work");
//! let json = bdb_telemetry::chrome_trace_json("demo", &events, Some(&metrics));
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome_trace;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome_trace::{
    chrome_trace_json, chrome_trace_json_with_tracks, file_stem, CounterTrack, TraceSession,
};
pub use metrics::{
    assert_prometheus_grammar, bucket_bound, bucket_index, prometheus_name, Counter, Gauge,
    HistogramHandle, LatencyHistogram, MetricsRegistry,
};
pub use span::{current_thread_id, ArgValue, SpanEvent, SpanGuard, SpanRecorder};
