//! Named metrics: counters, gauges and log-bucketed histograms.
//!
//! A [`MetricsRegistry`] hands out cheap atomic handles keyed by name;
//! the registry renders a plain-text summary next to each exported
//! trace. [`LatencyHistogram`] lives here (promoted out of
//! `bdb-serving`, which re-exports it) so every engine can share one
//! histogram implementation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const BUCKETS: usize = 400;
const GROWTH: f64 = 1.05;

/// Geometric bucket upper bounds, computed once. Bucket `i`'s upper
/// bound is `ceil(GROWTH^i)` microseconds; precomputing keeps
/// `percentile()` queries from re-deriving powers on every call.
fn bounds() -> &'static [u64; BUCKETS] {
    static BOUNDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0u64; BUCKETS];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = GROWTH.powi(i as i32).ceil() as u64;
        }
        b
    })
}

fn bucket_for(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let b = (micros as f64).ln() / GROWTH.ln();
    (b.ceil() as usize).min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> u64 {
    bounds()[i.min(BUCKETS - 1)]
}

/// The index of the log bucket a `micros` sample lands in. Exposed so
/// observability layers can reason about bucket-level agreement (e.g.
/// "rolling p99 matches the whole-run histogram within one bucket").
pub fn bucket_index(micros: u64) -> usize {
    bucket_for(micros)
}

/// The upper bound (in microseconds) of the bucket a `micros` sample
/// lands in — the `le` bound its `_bucket` series line would carry.
pub fn bucket_bound(micros: u64) -> u64 {
    bucket_upper(bucket_for(micros))
}

/// A log-bucketed latency histogram (1 µs granularity at the low end,
/// ~2% relative error overall), cheap enough to update per request.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket `i` covers `[bound(i-1), bound(i))` where bounds grow
    /// geometrically from 1 µs.
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
    max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_micros(micros);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.counts[bucket_for(micros)] += 1;
        self.total += 1;
        self.sum_micros += micros as u128;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / self.total as u128) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound, so
    /// within ~5% above the true value). Zero when empty. The reported
    /// value is clamped to [`LatencyHistogram::max`], so the final
    /// bucket never over-reports: `percentile(1.0)` equals the recorded
    /// maximum exactly.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(bucket_upper(i).min(self.max_micros));
            }
        }
        self.max()
    }

    /// Median latency — `percentile(0.5)`.
    pub fn p50(&self) -> Duration {
        self.percentile(0.5)
    }

    /// 99th-percentile latency — `percentile(0.99)`.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency — `percentile(0.999)`, the tail the
    /// online-services scenario is judged by.
    pub fn p999(&self) -> Duration {
        self.percentile(0.999)
    }

    /// Sum of all recorded samples in microseconds.
    pub fn sum_micros(&self) -> u128 {
        self.sum_micros
    }

    /// Cumulative distribution over the non-empty buckets: for each
    /// bucket that holds at least one sample, its upper bound in
    /// microseconds and the number of samples at or below that bound.
    /// Bounds and counts are both strictly increasing — the shape the
    /// Prometheus `_bucket{le="..."}` series requires.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cumulative += c;
                out.push((bucket_upper(i), cumulative));
            }
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A named monotonic counter; clone of a registry slot.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge (last-write-wins signed value).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared histogram slot from a registry.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<LatencyHistogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.0.lock().expect("histogram poisoned").record(latency);
    }

    /// Records one sample in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.0.lock().expect("histogram poisoned").record_micros(micros);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LatencyHistogram>>>>,
}

/// A registry of named metrics. Cloning shares the underlying slots, so
/// engines can hold a clone and the exporter another.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        Counter(Arc::clone(
            map.entry(name.to_owned()).or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        Gauge(Arc::clone(map.entry(name.to_owned()).or_insert_with(|| Arc::new(AtomicI64::new(0)))))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.inner.histograms.lock().expect("registry poisoned");
        HistogramHandle(Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new()))),
        ))
    }

    /// Current counter values, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshots of every histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, LatencyHistogram)> {
        self.inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().expect("histogram poisoned").clone()))
            .collect()
    }

    /// Renders every metric as aligned plain text, one per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counter_values() {
            out.push_str(&format!("counter  {name:<40} {v}\n"));
        }
        for (name, v) in self.gauge_values() {
            out.push_str(&format!("gauge    {name:<40} {v}\n"));
        }
        for (name, h) in self.histogram_snapshots() {
            out.push_str(&format!(
                "hist     {name:<40} count={} mean={}us p50={}us p95={}us p99={}us max={}us\n",
                h.count(),
                h.mean().as_micros(),
                h.percentile(0.50).as_micros(),
                h.percentile(0.95).as_micros(),
                h.percentile(0.99).as_micros(),
                h.max().as_micros(),
            ));
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4, the `text/plain` scrape format).
    ///
    /// Metric names are sanitized to `[a-zA-Z0-9_:]`. Counters and
    /// gauges render as single samples; histograms render as the
    /// canonical `_bucket`/`_sum`/`_count` triplet in microseconds,
    /// with cumulative bucket counts over the non-empty buckets plus
    /// the mandatory `le="+Inf"` bucket.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counter_values() {
            let n = prometheus_name(&name);
            out.push_str(&format!("# HELP {n} Monotonic counter.\n"));
            out.push_str(&format!("# TYPE {n} counter\n"));
            out.push_str(&format!("{n} {v}\n"));
        }
        for (name, v) in self.gauge_values() {
            let n = prometheus_name(&name);
            out.push_str(&format!("# HELP {n} Gauge.\n"));
            out.push_str(&format!("# TYPE {n} gauge\n"));
            out.push_str(&format!("{n} {v}\n"));
        }
        for (name, h) in self.histogram_snapshots() {
            let n = prometheus_name(&name);
            out.push_str(&format!("# HELP {n} Latency histogram (microseconds).\n"));
            out.push_str(&format!("# TYPE {n} histogram\n"));
            for (bound, cumulative) in h.cumulative_buckets() {
                out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", h.sum_micros()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }
}

/// Maps a registry metric name onto the Prometheus name charset
/// `[a-zA-Z0-9_:]`, e.g. `serving.request_us` → `serving_request_us`.
/// A leading digit is prefixed with `_`. Public so sibling exporters
/// (e.g. the observability layer's exemplar-bearing exposition) name
/// their series through the same mapping.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn valid_prometheus_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || "_:".contains(c))
        && s.chars().all(|c| c.is_ascii_alphanumeric() || "_:".contains(c))
}

/// Scans a `{label="value",...}` block starting at `s[0] == '{'`,
/// asserting every pair is well-formed. Label values may use the text
/// format's escape sequences (`\\`, `\"`, `\n`); a raw quote or an
/// unknown escape is a grammar violation. Returns the byte index just
/// past the closing `}`.
fn scan_label_block(s: &str, line: &str) -> usize {
    let b = s.as_bytes();
    debug_assert_eq!(b.first(), Some(&b'{'));
    let mut i = 1;
    if b.get(i) == Some(&b'}') {
        return i + 1;
    }
    loop {
        let name_start = i;
        while i < b.len() && b[i] != b'=' {
            i += 1;
        }
        assert!(i < b.len(), "label pair has an '=': {line}");
        assert!(valid_prometheus_identifier(&s[name_start..i]), "label name valid: {line}");
        i += 1;
        assert!(b.get(i) == Some(&b'"'), "label value quoted: {line}");
        i += 1;
        loop {
            assert!(i < b.len(), "label value closes its quote: {line}");
            match b[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    assert!(
                        matches!(b.get(i + 1), Some(b'\\' | b'"' | b'n')),
                        "label value escape must be \\\\, \\\" or \\n: {line}"
                    );
                    i += 2;
                }
                _ => i += 1,
            }
        }
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return i + 1,
            _ => panic!("label pairs separated by ',' and closed by '}}': {line}"),
        }
    }
}

/// Asserts `text` follows the Prometheus text exposition 0.0.4 grammar
/// rules this suite's exporters must honor: `# HELP`/`# TYPE` comments,
/// metric names in `[a-zA-Z_:][a-zA-Z0-9_:]*`, optional
/// `{label="value"}` pairs with escape-aware values, a parseable sample
/// value (`+Inf` allowed), every sample preceded by its family's TYPE
/// comment — plus OpenMetrics-style exemplar suffixes
/// (`... # {trace_id="..."} value [timestamp]`) on sample lines.
///
/// Test support shared across crates: the telemetry exporter tests and
/// the observability layer's exemplar exposition tests both validate
/// through this one grammar.
///
/// # Panics
///
/// Panics (with the offending line) on the first grammar violation.
pub fn assert_prometheus_grammar(text: &str) {
    let mut typed: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            let name = parts.next().unwrap_or("");
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "only HELP/TYPE comments are meaningful: {line}"
            );
            assert!(valid_prometheus_identifier(name), "comment names a valid metric: {line}");
            if keyword == "TYPE" {
                let ty = parts.next().unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty),
                    "TYPE must name a known type: {line}"
                );
                assert!(!typed.contains(&name.to_owned()), "one TYPE per family: {line}");
                typed.push(name.to_owned());
            }
            continue;
        }
        // Sample line: name[{labels}] value [# {labels} value [ts]]
        let (sample, exemplar) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        let name_end = sample
            .find(|c: char| !(c.is_ascii_alphanumeric() || "_:".contains(c)))
            .unwrap_or(sample.len());
        let name = &sample[..name_end];
        assert!(valid_prometheus_identifier(name), "sample names a valid metric: {line}");
        let mut rest = &sample[name_end..];
        if rest.starts_with('{') {
            rest = &rest[scan_label_block(rest, line)..];
        }
        let value = rest.strip_prefix(' ').unwrap_or_else(|| panic!("sample has a value: {line}"));
        assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "value must parse: {line}");
        if let Some(exemplar) = exemplar {
            assert!(exemplar.starts_with('{'), "exemplar starts with a label set: {line}");
            let rest = &exemplar[scan_label_block(exemplar, line)..];
            let fields: Vec<&str> = rest.split_whitespace().collect();
            assert!(
                (1..=2).contains(&fields.len()),
                "exemplar carries a value and optional timestamp: {line}"
            );
            for f in fields {
                assert!(f.parse::<f64>().is_ok(), "exemplar fields must parse: {line}");
            }
        }
        // Samples of a family follow its TYPE comment.
        let family = typed.iter().any(|t| {
            name == t
                || name
                    .strip_prefix(t.as_str())
                    .is_some_and(|suffix| ["_bucket", "_sum", "_count"].contains(&suffix))
        });
        assert!(family, "sample {name} preceded by its TYPE comment: {line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.0), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.percentile(1.0), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn single_sample_all_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(777));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = h.percentile(q).as_micros() as f64;
            assert!((p - 777.0).abs() / 777.0 < 0.06, "q={q} p={p}");
        }
        assert_eq!(h.mean(), Duration::from_micros(777));
        assert_eq!(h.max(), Duration::from_micros(777));
    }

    #[test]
    fn max_bucket_clamps() {
        let mut h = LatencyHistogram::new();
        // Far beyond the last bucket bound: must clamp to BUCKETS - 1,
        // not index out of bounds.
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 1);
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
        // The reported percentile is the last bucket's bound, capped by
        // the observed max.
        let p = h.percentile(0.99);
        assert_eq!(p, Duration::from_micros(bucket_upper(BUCKETS - 1)));
        assert!(p <= h.max());
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= Duration::from_micros(450) && p50 <= Duration::from_micros(600));
        assert!(p99 >= Duration::from_micros(900));
    }

    #[test]
    fn bucket_bound_roundtrip() {
        // Regression: a value at bucket i's upper bound must never be
        // classified into an earlier bucket, or percentile() would
        // under-report.
        for i in 0..BUCKETS {
            assert!(bucket_for(bucket_upper(i)) >= i, "bucket {i}");
        }
        // And bounds are non-decreasing.
        for i in 1..BUCKETS {
            assert!(bucket_upper(i) >= bucket_upper(i - 1));
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn merge_percentile_roundtrip_across_bucket_boundaries() {
        // Split a sample set across two histograms with values landing
        // exactly on, just below and just above bucket bounds; the
        // merge must be indistinguishable from recording the union
        // directly — same distribution, same percentiles, same
        // exposition buckets.
        let boundary_values: Vec<u64> = (0..BUCKETS)
            .step_by(25)
            .map(bucket_upper)
            .flat_map(|b| [b.saturating_sub(1), b, b + 1])
            .collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for (i, &us) in boundary_values.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record_micros(us);
            union.record_micros(us);
        }

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), union.count());
        assert_eq!(merged.sum_micros(), union.sum_micros());
        assert_eq!(merged.max(), union.max());
        assert_eq!(
            merged.cumulative_buckets(),
            union.cumulative_buckets(),
            "merge lands every sample in the same bucket as direct recording"
        );
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.percentile(q), union.percentile(q), "q={q}");
        }
        // Merging in the other order is equivalent too.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped.cumulative_buckets(), merged.cumulative_buckets());
        assert_eq!(flipped.percentile(0.5), merged.percentile(0.5));
    }

    #[test]
    fn registry_slots_are_shared() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("x.ops");
        let c2 = reg.counter("x.ops");
        c1.add(3);
        c2.inc();
        assert_eq!(reg.counter("x.ops").get(), 4);

        reg.gauge("x.level").set(-7);
        assert_eq!(reg.gauge("x.level").get(), -7);

        reg.histogram("x.lat").record(Duration::from_micros(100));
        assert_eq!(reg.histogram("x.lat").snapshot().count(), 1);
    }

    #[test]
    fn registry_clone_shares_state() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.counter("shared").add(5);
        assert_eq!(reg.counter("shared").get(), 5);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_complete() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 1, 50, 50, 50, 4000, 123_456] {
            h.record_micros(us);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds strictly increase");
            assert!(w[0].1 < w[1].1, "cumulative counts strictly increase");
        }
        assert_eq!(buckets.last().unwrap().1, h.count(), "last bucket covers all samples");
        assert_eq!(h.sum_micros(), (1 + 1 + 50 + 50 + 50 + 4000 + 123_456) as u128);
    }

    #[test]
    fn prometheus_text_format_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("serving.requests").add(7);
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("serving.request_us");
        for us in [3u64, 3, 90, 90, 1500, 88_000] {
            h.record_micros(us);
        }
        let text = reg.prometheus_text();

        // Names are sanitized and HELP/TYPE precede each family.
        assert!(text.contains("# HELP serving_requests "));
        assert!(text.contains("# TYPE serving_requests counter\n"));
        assert!(text.contains("serving_requests 7\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth -2\n"));
        assert!(text.contains("# TYPE serving_request_us histogram\n"));
        assert!(!text.contains("serving.request"), "dots must be sanitized away");

        // Bucket series: cumulative counts are monotone non-decreasing
        // and end at the +Inf bucket, which equals _count.
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|l| l.starts_with("serving_request_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative bucket counts must not decrease: {line}");
            last = v;
            if line.contains("le=\"+Inf\"") {
                inf = Some(v);
            }
        }
        let snapshot = h.snapshot();
        assert_eq!(inf, Some(snapshot.count()), "+Inf bucket equals sample count");
        assert!(text.contains(&format!("serving_request_us_count {}\n", snapshot.count())));
        assert!(text.contains(&format!("serving_request_us_sum {}\n", snapshot.sum_micros())));
        assert!(MetricsRegistry::new().prometheus_text().is_empty());
    }

    #[test]
    fn prometheus_name_charset() {
        assert_eq!(prometheus_name("a.b-c/d e"), "a_b_c_d_e");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(prometheus_name("9lives"), "_9lives");
    }

    #[test]
    fn prometheus_text_is_grammatical() {
        let reg = MetricsRegistry::new();
        reg.counter("serving.requests").add(7);
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("serving.request_us");
        for us in [3u64, 90, 1500] {
            h.record_micros(us);
        }
        assert_prometheus_grammar(&reg.prometheus_text());
    }

    #[test]
    fn prometheus_zero_sample_histogram_renders_complete_family() {
        // A histogram that was registered but never recorded must still
        // expose the mandatory +Inf bucket and _sum/_count at zero —
        // scrapers reject a TYPE'd family with no samples.
        let reg = MetricsRegistry::new();
        reg.histogram("idle.latency_us");
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE idle_latency_us histogram\n"), "{text}");
        assert!(text.contains("idle_latency_us_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(text.contains("idle_latency_us_sum 0\n"), "{text}");
        assert!(text.contains("idle_latency_us_count 0\n"), "{text}");
        assert_prometheus_grammar(&text);
    }

    #[test]
    fn prometheus_hostile_names_escape_and_stay_grammatical() {
        let reg = MetricsRegistry::new();
        reg.counter("2-fast 2.furious").inc();
        reg.counter("sørt/älloc bytes").add(3);
        reg.gauge("a{b}=\"c\"").set(1);
        reg.histogram("p99 (µs)").record_micros(5);
        let text = reg.prometheus_text();
        assert!(text.contains("_2_fast_2_furious 1\n"), "{text}");
        assert!(text.contains("s_rt__lloc_bytes 3\n"), "{text}");
        assert_prometheus_grammar(&text);
    }

    #[test]
    fn p999_convenience_tracks_percentile() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record_micros(i);
        }
        assert_eq!(h.p50(), h.percentile(0.5));
        assert_eq!(h.p99(), h.percentile(0.99));
        assert_eq!(h.p999(), h.percentile(0.999));
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        let p999 = h.p999().as_micros() as f64;
        assert!((p999 - 9990.0).abs() / 9990.0 < 0.06, "p999={p999}");
    }

    #[test]
    fn final_bucket_percentile_never_exceeds_recorded_max() {
        // A single sample: every quantile is exactly that sample, not
        // its bucket's upper bound.
        let mut h = LatencyHistogram::new();
        h.record_micros(777);
        assert_eq!(h.percentile(1.0), Duration::from_micros(777));
        assert_eq!(h.p999(), Duration::from_micros(777));

        // All-zero samples: bucket 0's upper bound is 1 µs, but the
        // recorded max is 0 — percentile(1.0) must not invent latency.
        let mut h = LatencyHistogram::new();
        for _ in 0..5 {
            h.record_micros(0);
        }
        assert_eq!(h.percentile(1.0), Duration::ZERO);

        // A spread distribution: no quantile exceeds the max.
        let mut h = LatencyHistogram::new();
        for us in [3u64, 90, 1500, 88_000, 123_456] {
            h.record_micros(us);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert!(h.percentile(q) <= h.max(), "q={q}");
        }
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn bucket_bound_covers_its_sample() {
        for us in [0u64, 1, 2, 50, 777, 88_000] {
            assert!(bucket_bound(us) >= us, "{us}");
            assert_eq!(bucket_bound(us), bucket_upper(bucket_index(us)));
        }
    }

    #[test]
    fn exemplar_suffixes_are_grammatical() {
        let text = "\
# HELP svc_request_us Latency histogram (microseconds).\n\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"128\"} 40 # {trace_id=\"00c0ffee5eed1234\"} 117 1.500\n\
svc_request_us_bucket{le=\"+Inf\"} 41 # {trace_id=\"deadbeef00000001\"} 90210\n\
svc_request_us_sum 52710\n\
svc_request_us_count 41\n";
        assert_prometheus_grammar(text);
    }

    #[test]
    fn hostile_exemplar_trace_ids_escape_and_validate() {
        // Escaped quote/backslash/newline in the exemplar label value
        // are legal text-format escapes and must be accepted.
        let escaped = "\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"a\\\"b\\\\c\\nd\"} 5\n\
svc_request_us_sum 5\n\
svc_request_us_count 1\n";
        assert_prometheus_grammar(escaped);

        // A raw, unescaped quote inside the value is a violation.
        let raw_quote = "\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"a\"b\"} 5\n";
        assert!(std::panic::catch_unwind(|| assert_prometheus_grammar(raw_quote)).is_err());

        // An unknown escape (\q) is a violation too.
        let bad_escape = "\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"a\\qb\"} 5\n";
        assert!(std::panic::catch_unwind(|| assert_prometheus_grammar(bad_escape)).is_err());

        // Exemplars need a parseable value...
        let no_value = "\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} nope\n";
        assert!(std::panic::catch_unwind(|| assert_prometheus_grammar(no_value)).is_err());

        // ...and at most a value plus one timestamp.
        let extra = "\
# TYPE svc_request_us histogram\n\
svc_request_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 5 6 7\n";
        assert!(std::panic::catch_unwind(|| assert_prometheus_grammar(extra)).is_err());
    }

    #[test]
    fn summary_lists_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(2);
        reg.gauge("b.gauge").set(1);
        reg.histogram("c.hist").record(Duration::from_micros(50));
        let s = reg.summary();
        assert!(s.contains("counter  a.count"));
        assert!(s.contains("gauge    b.gauge"));
        assert!(s.contains("hist     c.hist"));
        assert!(s.contains("count=1"));
        assert_eq!(MetricsRegistry::new().summary(), "(no metrics recorded)\n");
    }
}
