//! Named metrics: counters, gauges and log-bucketed histograms.
//!
//! A [`MetricsRegistry`] hands out cheap atomic handles keyed by name;
//! the registry renders a plain-text summary next to each exported
//! trace. [`LatencyHistogram`] lives here (promoted out of
//! `bdb-serving`, which re-exports it) so every engine can share one
//! histogram implementation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const BUCKETS: usize = 400;
const GROWTH: f64 = 1.05;

/// Geometric bucket upper bounds, computed once. Bucket `i`'s upper
/// bound is `ceil(GROWTH^i)` microseconds; precomputing keeps
/// `percentile()` queries from re-deriving powers on every call.
fn bounds() -> &'static [u64; BUCKETS] {
    static BOUNDS: OnceLock<[u64; BUCKETS]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0u64; BUCKETS];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = GROWTH.powi(i as i32).ceil() as u64;
        }
        b
    })
}

fn bucket_for(micros: u64) -> usize {
    if micros == 0 {
        return 0;
    }
    let b = (micros as f64).ln() / GROWTH.ln();
    (b.ceil() as usize).min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> u64 {
    bounds()[i.min(BUCKETS - 1)]
}

/// A log-bucketed latency histogram (1 µs granularity at the low end,
/// ~2% relative error overall), cheap enough to update per request.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket `i` covers `[bound(i-1), bound(i))` where bounds grow
    /// geometrically from 1 µs.
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
    max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_micros(micros);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.counts[bucket_for(micros)] += 1;
        self.total += 1;
        self.sum_micros += micros as u128;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / self.total as u128) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound, so
    /// within ~5% above the true value). Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(bucket_upper(i).min(self.max_micros.max(1)));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A named monotonic counter; clone of a registry slot.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge (last-write-wins signed value).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared histogram slot from a registry.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<LatencyHistogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.0.lock().expect("histogram poisoned").record(latency);
    }

    /// Records one sample in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.0.lock().expect("histogram poisoned").record_micros(micros);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().expect("histogram poisoned").clone()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LatencyHistogram>>>>,
}

/// A registry of named metrics. Cloning shares the underlying slots, so
/// engines can hold a clone and the exporter another.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        Counter(Arc::clone(
            map.entry(name.to_owned()).or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        Gauge(Arc::clone(map.entry(name.to_owned()).or_insert_with(|| Arc::new(AtomicI64::new(0)))))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.inner.histograms.lock().expect("registry poisoned");
        HistogramHandle(Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Mutex::new(LatencyHistogram::new()))),
        ))
    }

    /// Current counter values, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshots of every histogram, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, LatencyHistogram)> {
        self.inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().expect("histogram poisoned").clone()))
            .collect()
    }

    /// Renders every metric as aligned plain text, one per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counter_values() {
            out.push_str(&format!("counter  {name:<40} {v}\n"));
        }
        for (name, v) in self.gauge_values() {
            out.push_str(&format!("gauge    {name:<40} {v}\n"));
        }
        for (name, h) in self.histogram_snapshots() {
            out.push_str(&format!(
                "hist     {name:<40} count={} mean={}us p50={}us p95={}us p99={}us max={}us\n",
                h.count(),
                h.mean().as_micros(),
                h.percentile(0.50).as_micros(),
                h.percentile(0.95).as_micros(),
                h.percentile(0.99).as_micros(),
                h.max().as_micros(),
            ));
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.0), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.percentile(1.0), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn single_sample_all_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(777));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = h.percentile(q).as_micros() as f64;
            assert!((p - 777.0).abs() / 777.0 < 0.06, "q={q} p={p}");
        }
        assert_eq!(h.mean(), Duration::from_micros(777));
        assert_eq!(h.max(), Duration::from_micros(777));
    }

    #[test]
    fn max_bucket_clamps() {
        let mut h = LatencyHistogram::new();
        // Far beyond the last bucket bound: must clamp to BUCKETS - 1,
        // not index out of bounds.
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 1);
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
        // The reported percentile is the last bucket's bound, capped by
        // the observed max.
        let p = h.percentile(0.99);
        assert_eq!(p, Duration::from_micros(bucket_upper(BUCKETS - 1)));
        assert!(p <= h.max());
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= Duration::from_micros(450) && p50 <= Duration::from_micros(600));
        assert!(p99 >= Duration::from_micros(900));
    }

    #[test]
    fn bucket_bound_roundtrip() {
        // Regression: a value at bucket i's upper bound must never be
        // classified into an earlier bucket, or percentile() would
        // under-report.
        for i in 0..BUCKETS {
            assert!(bucket_for(bucket_upper(i)) >= i, "bucket {i}");
        }
        // And bounds are non-decreasing.
        for i in 1..BUCKETS {
            assert!(bucket_upper(i) >= bucket_upper(i - 1));
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn registry_slots_are_shared() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("x.ops");
        let c2 = reg.counter("x.ops");
        c1.add(3);
        c2.inc();
        assert_eq!(reg.counter("x.ops").get(), 4);

        reg.gauge("x.level").set(-7);
        assert_eq!(reg.gauge("x.level").get(), -7);

        reg.histogram("x.lat").record(Duration::from_micros(100));
        assert_eq!(reg.histogram("x.lat").snapshot().count(), 1);
    }

    #[test]
    fn registry_clone_shares_state() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.counter("shared").add(5);
        assert_eq!(reg.counter("shared").get(), 5);
    }

    #[test]
    fn summary_lists_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(2);
        reg.gauge("b.gauge").set(1);
        reg.histogram("c.hist").record(Duration::from_micros(50));
        let s = reg.summary();
        assert!(s.contains("counter  a.count"));
        assert!(s.contains("gauge    b.gauge"));
        assert!(s.contains("hist     c.hist"));
        assert!(s.contains("count=1"));
        assert_eq!(MetricsRegistry::new().summary(), "(no metrics recorded)\n");
    }
}
