//! Chrome trace-event-format export.
//!
//! Produces a JSON array of trace events loadable in `chrome://tracing`
//! and in the Perfetto UI (<https://ui.perfetto.dev> — "Open trace
//! file"). Spans become complete (`"ph":"X"`) events, instants become
//! `"ph":"i"`, counters become `"ph":"C"` samples, and process/thread
//! names are attached via `"ph":"M"` metadata events.

use crate::json::ObjectWriter;
use crate::metrics::MetricsRegistry;
use crate::span::{ArgValue, SpanEvent, SpanRecorder};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Process id used for all exported events (the suite is one process).
const PID: u64 = 1;

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    let mut o = ObjectWriter::new(out);
    for (k, v) in args {
        match v {
            ArgValue::Int(i) => o.field_i64(k, *i),
            ArgValue::Float(f) => o.field_f64(k, *f),
            ArgValue::Str(s) => o.field_str(k, s),
        };
    }
    o.finish();
}

fn write_event(out: &mut String, e: &SpanEvent) {
    let mut o = ObjectWriter::new(out);
    o.field_str("name", e.name)
        .field_str("cat", e.cat)
        .field_str("ph", if e.dur_us.is_some() { "X" } else { "i" })
        .field_u64("ts", e.start_us)
        .field_u64("pid", PID)
        .field_u64("tid", e.tid);
    if let Some(dur) = e.dur_us {
        o.field_u64("dur", dur);
    } else {
        o.field_str("s", "t"); // instant scope: thread
    }
    if !e.args.is_empty() {
        write_args(o.field_raw("args"), &e.args);
    }
    o.finish();
}

fn write_metadata(out: &mut String, name: &str, tid: Option<u64>, value: &str) {
    let mut o = ObjectWriter::new(out);
    o.field_str("name", name).field_str("ph", "M").field_u64("ts", 0).field_u64("pid", PID);
    if let Some(tid) = tid {
        o.field_u64("tid", tid);
    }
    {
        let args = o.field_raw("args");
        let mut a = ObjectWriter::new(args);
        a.field_str("name", value);
        a.finish();
    }
    o.finish();
}

fn write_counter_sample(out: &mut String, ts: u64, name: &str, value: u64) {
    let mut o = ObjectWriter::new(out);
    o.field_str("name", name).field_str("ph", "C").field_u64("ts", ts).field_u64("pid", PID);
    {
        let args = o.field_raw("args");
        let mut a = ObjectWriter::new(args);
        a.field_u64("value", value);
        a.finish();
    }
    o.finish();
}

/// A named series of `(ts_us, value)` counter samples to render as a
/// `"ph":"C"` track — e.g. the busy-worker count a profiler derives
/// post hoc. Unlike span args, track names are runtime strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterTrack {
    /// Counter name shown in the trace viewer.
    pub name: String,
    /// `(timestamp µs, value)` samples, ascending by timestamp.
    pub samples: Vec<(u64, u64)>,
}

/// Renders `events` (plus optional final counter samples from
/// `metrics`) as a Chrome trace-event JSON array.
pub fn chrome_trace_json(
    process_name: &str,
    events: &[SpanEvent],
    metrics: Option<&MetricsRegistry>,
) -> String {
    chrome_trace_json_with_tracks(process_name, events, metrics, &[])
}

/// [`chrome_trace_json`] plus derived [`CounterTrack`] sample series.
pub fn chrome_trace_json_with_tracks(
    process_name: &str,
    events: &[SpanEvent],
    metrics: Option<&MetricsRegistry>,
    tracks: &[CounterTrack],
) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push('[');
    let mut first = true;
    let mut emit = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    emit(&mut out);
    write_metadata(&mut out, "process_name", None, process_name);
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    for tid in tids {
        emit(&mut out);
        write_metadata(&mut out, "thread_name", Some(tid), &format!("worker-{tid}"));
    }
    for e in events {
        emit(&mut out);
        write_event(&mut out, e);
        // Span args keyed `counter.*` are performance-counter deltas
        // (see `CounterSnapshot::named_counters` in bdb-archsim): also
        // emit each as a "ph":"C" sample at the span's end so Perfetto
        // renders counter tracks over time, not just one final value.
        let sample_ts = e.start_us + e.dur_us.unwrap_or(0);
        for (k, v) in &e.args {
            if let (true, ArgValue::Int(i)) = (k.starts_with("counter."), v) {
                emit(&mut out);
                write_counter_sample(&mut out, sample_ts, k, (*i).max(0) as u64);
            }
        }
    }
    for track in tracks {
        for &(ts, value) in &track.samples {
            emit(&mut out);
            write_counter_sample(&mut out, ts, &track.name, value);
        }
    }
    if let Some(metrics) = metrics {
        let end_ts = events.iter().map(|e| e.start_us + e.dur_us.unwrap_or(0)).max().unwrap_or(0);
        for (name, value) in metrics.counter_values() {
            emit(&mut out);
            write_counter_sample(&mut out, end_ts, &name, value);
        }
    }
    out.push_str("\n]\n");
    out
}

/// A bundle of recorder + registry for one workload run, with one-call
/// export of `<name>.trace.json` and `<name>.metrics.txt`.
#[derive(Debug, Clone)]
pub struct TraceSession {
    /// Workload name; becomes the process name and the file stem.
    pub name: String,
    /// Span sink; attach to engines.
    pub recorder: SpanRecorder,
    /// Metric sink; attach to engines.
    pub metrics: MetricsRegistry,
}

impl TraceSession {
    /// A collecting session.
    pub fn enabled(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            recorder: SpanRecorder::enabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The session's trace as Chrome trace-event JSON.
    pub fn trace_json(&self) -> String {
        self.trace_json_with_tracks(&[])
    }

    /// The session's trace, with extra derived counter tracks appended
    /// (e.g. a profiler's busy-worker series).
    pub fn trace_json_with_tracks(&self, tracks: &[CounterTrack]) -> String {
        chrome_trace_json_with_tracks(
            &self.name,
            &self.recorder.events(),
            Some(&self.metrics),
            tracks,
        )
    }

    /// The session's metrics as plain text.
    pub fn metrics_summary(&self) -> String {
        format!("== metrics: {} ==\n{}", self.name, self.metrics.summary())
    }

    /// Writes `<name>.trace.json` and `<name>.metrics.txt` into `dir`
    /// (created if missing); returns the two paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        self.write_with_tracks(dir, &[])
    }

    /// [`TraceSession::write`] with extra counter tracks baked into the
    /// trace JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_with_tracks(
        &self,
        dir: &Path,
        tracks: &[CounterTrack],
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let stem = file_stem(&self.name);
        let trace_path = dir.join(format!("{stem}.trace.json"));
        let metrics_path = dir.join(format!("{stem}.metrics.txt"));
        std::fs::File::create(&trace_path)?
            .write_all(self.trace_json_with_tracks(tracks).as_bytes())?;
        std::fs::File::create(&metrics_path)?.write_all(self.metrics_summary().as_bytes())?;
        Ok((trace_path, metrics_path))
    }
}

/// Lowercases `name` and maps every non-alphanumeric character to `-`,
/// collapsing runs and trimming the ends, so any workload name — e.g.
/// `"OLTP: read/write 50%"` — yields a safe, tidy file stem. Exposed so
/// sibling artifacts (profiles, reports) can sit next to the trace
/// under the same stem.
pub fn file_stem(name: &str) -> String {
    let mut stem = String::with_capacity(name.len());
    for c in name.to_lowercase().chars() {
        if c.is_alphanumeric() {
            stem.push(c);
        } else if !stem.ends_with('-') && !stem.is_empty() {
            stem.push('-');
        }
    }
    let stem = stem.trim_end_matches('-').to_owned();
    if stem.is_empty() {
        "trace".to_owned()
    } else {
        stem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, start: u64, dur: u64, tid: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us: start, dur_us: Some(dur), tid, args: Vec::new() }
    }

    #[test]
    fn empty_trace_is_an_array() {
        let json = chrome_trace_json("empty", &[], None);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn events_become_complete_x_events() {
        let events = vec![event("a", 0, 10, 1), event("b", 5, 2, 2)];
        let json = chrome_trace_json("t", &events, None);
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn counters_appended_from_registry() {
        let reg = MetricsRegistry::new();
        reg.counter("ops").add(42);
        let json = chrome_trace_json("t", &[event("a", 0, 3, 1)], Some(&reg));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":42"));
        // Counter sampled at the end of the timeline.
        assert!(json.contains("\"ts\":3"));
    }

    #[test]
    fn counter_args_become_intermediate_samples() {
        // Two spans carrying the same counter key → two "C" samples at
        // the spans' end timestamps, plus the end-of-run registry
        // sample for backward compatibility.
        let mut a = event("map", 0, 10, 1);
        a.args.push(("counter.l1d_misses", ArgValue::Int(100)));
        a.args.push(("rows", ArgValue::Int(5))); // not a counter: no sample
        let mut b = event("reduce", 10, 7, 1);
        b.args.push(("counter.l1d_misses", ArgValue::Int(40)));
        let reg = MetricsRegistry::new();
        reg.counter("ops").add(1);
        let json = chrome_trace_json("t", &[a, b], Some(&reg));
        let samples = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"C\"") && l.contains("counter.l1d_misses"))
            .count();
        assert_eq!(samples, 2, "one sample per span carrying the counter");
        assert!(json.contains("\"name\":\"counter.l1d_misses\",\"ph\":\"C\",\"ts\":10"));
        assert!(json.contains("\"name\":\"counter.l1d_misses\",\"ph\":\"C\",\"ts\":17"));
        assert!(!json.contains("\"name\":\"rows\",\"ph\":\"C\""));
        // End-of-run registry sample still present at the timeline end.
        assert!(json.contains("\"name\":\"ops\",\"ph\":\"C\",\"ts\":17"));
    }

    #[test]
    fn file_stems_sanitize_all_non_alphanumerics() {
        assert_eq!(file_stem("OLTP: read/write 50%"), "oltp-read-write-50");
        assert_eq!(file_stem("Unit Test"), "unit-test");
        assert_eq!(file_stem("a***b"), "a-b");
        assert_eq!(file_stem("///"), "trace");
    }

    #[test]
    fn session_with_hostile_name_writes_sanitized_files() {
        let session = TraceSession::enabled("OLTP: read/write 50%");
        session.metrics.counter("done").inc();
        let dir = std::env::temp_dir().join(format!("bdb-telemetry-stem-{}", std::process::id()));
        let (trace, metrics) = session.write(&dir).unwrap();
        assert!(trace.ends_with("oltp-read-write-50.trace.json"), "{trace:?}");
        assert!(metrics.ends_with("oltp-read-write-50.metrics.txt"), "{metrics:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counter_tracks_render_as_c_samples() {
        let track = CounterTrack {
            name: "busy workers".to_owned(),
            samples: vec![(0, 2), (40, 1), (100, 0)],
        };
        let json = chrome_trace_json_with_tracks("t", &[event("a", 0, 100, 1)], None, &[track]);
        assert!(json.contains("\"name\":\"busy workers\",\"ph\":\"C\",\"ts\":0"));
        assert!(json.contains("\"name\":\"busy workers\",\"ph\":\"C\",\"ts\":40"));
        assert!(json.contains("\"name\":\"busy workers\",\"ph\":\"C\",\"ts\":100"));
        let samples = json
            .lines()
            .filter(|l| l.contains("busy workers") && l.contains("\"ph\":\"C\""))
            .count();
        assert_eq!(samples, 3);
    }

    #[test]
    fn args_are_serialized() {
        let mut e = event("a", 0, 1, 1);
        e.args.push(("n", ArgValue::Int(5)));
        e.args.push(("ratio", ArgValue::Float(0.5)));
        e.args.push(("tag", ArgValue::Str("x\"y".into())));
        let json = chrome_trace_json("t", &[e], None);
        assert!(json.contains("\"args\":{\"n\":5,\"ratio\":0.5,\"tag\":\"x\\\"y\"}"));
    }

    #[test]
    fn session_roundtrip_to_files() {
        let session = TraceSession::enabled("Unit Test");
        {
            let _s = session.recorder.span("test", "work");
        }
        session.metrics.counter("done").inc();
        let dir = std::env::temp_dir().join(format!("bdb-telemetry-{}", std::process::id()));
        let (trace, metrics) = session.write(&dir).unwrap();
        assert!(trace.ends_with("unit-test.trace.json"));
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains("\"work\""));
        let summary = std::fs::read_to_string(&metrics).unwrap();
        assert!(summary.contains("done"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
