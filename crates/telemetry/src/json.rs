//! A minimal hand-rolled JSON writer.
//!
//! The telemetry crate must build with zero external dependencies (the
//! build environment may be offline), so trace export writes JSON through
//! this small helper instead of `serde_json`. It only ever *writes* —
//! parsing for the golden tests lives in the integration-test crate.

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` in a JSON-legal form (`NaN`/`inf` become `0`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` always keeps a decimal point or exponent, so the value
        // round-trips as a JSON number even when integral.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push('0');
    }
}

/// An object writer that tracks comma placement.
#[derive(Debug)]
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens `{` on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        Self { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, key);
        self.out.push(':');
    }

    /// Writes `"key": "value"`.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(self.out, value);
        self
    }

    /// Writes `"key": value` for an unsigned integer.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// Writes `"key": value` for a signed integer.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// Writes `"key": value` for a float.
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(self.out, value);
        self
    }

    /// Writes `"key":` and hands the raw buffer over for a nested value.
    pub fn field_raw(&mut self, key: &str) -> &mut String {
        self.key(key);
        self.out
    }

    /// Closes the object with `}`.
    pub fn finish(self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn escapes_every_control_character() {
        // RFC 8259 §7: U+0000..U+001F MUST be escaped. Anything the
        // short forms don't cover must come out as \u00XX.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let mut s = String::new();
            write_escaped(&mut s, &c.to_string());
            let body = &s[1..s.len() - 1];
            let expected = match c {
                '\n' => "\\n".to_owned(),
                '\r' => "\\r".to_owned(),
                '\t' => "\\t".to_owned(),
                _ => format!("\\u{code:04x}"),
            };
            assert_eq!(body, expected, "control char U+{code:04X}");
        }
    }

    #[test]
    fn escapes_backslash_sequences() {
        let mut s = String::new();
        write_escaped(&mut s, r"C:\temp\new");
        // The backslash is escaped, so `\n`/`\t` in the source text
        // stay literal characters rather than becoming escapes.
        assert_eq!(s, r#""C:\\temp\\new""#);
        let mut s = String::new();
        write_escaped(&mut s, "\\\"");
        assert_eq!(s, r#""\\\"""#);
    }

    #[test]
    fn passes_through_printable_and_unicode() {
        let mut s = String::new();
        write_escaped(&mut s, "héllo ∆ 漢字 ~");
        assert_eq!(s, "\"héllo ∆ 漢字 ~\"");
    }

    #[test]
    fn field_str_emits_valid_json_for_hostile_values() {
        let mut s = String::new();
        let mut o = ObjectWriter::new(&mut s);
        o.field_str("k", "line1\nline2\tcol\u{1f}end\\");
        o.finish();
        assert_eq!(s, "{\"k\":\"line1\\nline2\\tcol\\u001fend\\\\\"}");
        // Keys are escaped through the same path as values.
        let mut s = String::new();
        let mut o = ObjectWriter::new(&mut s);
        o.field_u64("a\"b\n", 1);
        o.finish();
        assert_eq!(s, "{\"a\\\"b\\n\":1}");
    }

    #[test]
    fn object_commas() {
        let mut s = String::new();
        let mut o = ObjectWriter::new(&mut s);
        o.field_str("name", "x").field_u64("ts", 7).field_f64("v", 1.5);
        o.finish();
        assert_eq!(s, "{\"name\":\"x\",\"ts\":7,\"v\":1.5}");
    }

    #[test]
    fn floats_stay_legal() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        s.push(' ');
        write_f64(&mut s, 2.0);
        assert_eq!(s, "0 2.0");
    }
}
