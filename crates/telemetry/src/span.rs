//! Low-overhead span recording.
//!
//! A [`SpanRecorder`] collects timestamped, thread-tagged spans that the
//! Chrome-trace exporter turns into a navigable timeline. The recorder is
//! cheap to clone (it is a handle to shared state) and has a disabled
//! mode — [`SpanRecorder::disabled`] — whose `span()` call is a single
//! branch with no clock read and no allocation, so engines can keep the
//! instrumentation in place on hot paths unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer argument (counts, ids, byte totals).
    Int(i64),
    /// Floating-point argument (ratios, deltas).
    Float(f64),
    /// String argument.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Int(i64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Int(i64::from(v))
    }
}

/// One completed span (a Chrome trace "complete" / `X` event) or an
/// instant marker (`dur_us == None`).
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (e.g. `"map-task"`).
    pub name: &'static str,
    /// Category — by convention the subsystem (e.g. `"mapreduce"`).
    pub cat: &'static str,
    /// Start timestamp in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// Recording thread, as a small dense id.
    pub tid: u64,
    /// Span arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the current thread, stable for its lifetime.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

/// Default cap on buffered events, to bound memory on runaway loops.
const DEFAULT_CAPACITY: usize = 4 << 20;

/// Handle for recording spans; clone freely, share across threads.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    inner: Option<Arc<Inner>>,
}

impl SpanRecorder {
    /// A recorder that collects events (epoch = now).
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled recorder holding at most `capacity` events; further
    /// events are counted in [`SpanRecorder::dropped_events`] and
    /// discarded.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                capacity,
            })),
        }
    }

    /// The no-op recorder: `span()` costs one branch, records nothing.
    #[inline]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether spans are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it is recorded when the returned guard drops.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { inner: None, cat, name, start_us: 0, args: Vec::new() },
            Some(inner) => SpanGuard {
                inner: Some(inner),
                cat,
                name,
                start_us: inner.epoch.elapsed().as_micros() as u64,
                args: Vec::new(),
            },
        }
    }

    /// Opens a span with arguments built lazily — `args()` only runs when
    /// the recorder is enabled, so disabled-mode callers pay nothing.
    #[inline]
    pub fn span_args<F>(&self, cat: &'static str, name: &'static str, args: F) -> SpanGuard<'_>
    where
        F: FnOnce() -> Vec<(&'static str, ArgValue)>,
    {
        match &self.inner {
            None => SpanGuard { inner: None, cat, name, start_us: 0, args: Vec::new() },
            Some(inner) => SpanGuard {
                inner: Some(inner),
                cat,
                name,
                start_us: inner.epoch.elapsed().as_micros() as u64,
                args: args(),
            },
        }
    }

    /// Records an instant event (a point on the timeline).
    pub fn instant(&self, cat: &'static str, name: &'static str) {
        if let Some(inner) = &self.inner {
            let now = inner.epoch.elapsed().as_micros() as u64;
            inner.push(SpanEvent {
                name,
                cat,
                start_us: now,
                dur_us: None,
                tid: current_thread_id(),
                args: Vec::new(),
            });
        }
    }

    /// Microseconds since the recorder's epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Snapshot of the events recorded so far, sorted by start time.
    pub fn events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut v = inner.events.lock().expect("span buffer poisoned").clone();
                v.sort_by_key(|e| e.start_us);
                v
            }
        }
    }

    /// Events discarded because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }
}

impl Inner {
    fn push(&self, event: SpanEvent) {
        let mut events = self.events.lock().expect("span buffer poisoned");
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(event);
        }
    }
}

/// RAII guard: records the span from construction to drop.
#[derive(Debug)]
#[must_use = "the span is recorded when this guard drops"]
pub struct SpanGuard<'a> {
    inner: Option<&'a Arc<Inner>>,
    cat: &'static str,
    name: &'static str,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard<'_> {
    /// Attaches an argument (no-op when the recorder is disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.inner.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner {
            let end = inner.epoch.elapsed().as_micros() as u64;
            inner.push(SpanEvent {
                name: self.name,
                cat: self.cat,
                start_us: self.start_us,
                dur_us: Some(end.saturating_sub(self.start_us)),
                tid: current_thread_id(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// Opens a span on a [`SpanRecorder`]: `span!(rec, "cat", "name")` or
/// `span!(rec, "cat", "name", key = value, ...)`. Bind the result —
/// `let _s = span!(...)` — so the span covers the enclosing scope.
/// Argument expressions are only evaluated when the recorder is enabled.
#[macro_export]
macro_rules! span {
    ($rec:expr, $cat:expr, $name:expr $(,)?) => {
        $rec.span($cat, $name)
    };
    ($rec:expr, $cat:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $rec.span_args($cat, $name, || {
            vec![$((stringify!($key), $crate::ArgValue::from($value))),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_records_nothing() {
        let rec = SpanRecorder::disabled();
        {
            let mut s = rec.span("t", "noop");
            s.arg("k", 1u64);
        }
        rec.instant("t", "mark");
        assert!(!rec.is_enabled());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn spans_nest_and_are_ordered() {
        let rec = SpanRecorder::enabled();
        {
            let _outer = rec.span("t", "outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = rec.span("t", "inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let events = rec.events();
        assert_eq!(events.len(), 2);
        // Sorted by start: outer first, and it encloses inner.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].name, "inner");
        let (o, i) = (&events[0], &events[1]);
        assert!(o.start_us <= i.start_us);
        assert!(
            o.start_us + o.dur_us.unwrap() >= i.start_us + i.dur_us.unwrap(),
            "outer encloses inner"
        );
    }

    #[test]
    fn macro_args_are_lazy() {
        let rec = SpanRecorder::disabled();
        let mut evaluated = false;
        {
            let _s = span!(
                rec,
                "t",
                "s",
                flag = {
                    evaluated = true;
                    1u64
                }
            );
        }
        assert!(!evaluated, "disabled recorder must not evaluate args");

        let rec = SpanRecorder::enabled();
        {
            let _s = span!(rec, "t", "s", items = 3usize, label = "x");
        }
        let events = rec.events();
        assert_eq!(events[0].args.len(), 2);
        assert_eq!(events[0].args[0], ("items", ArgValue::Int(3)));
        assert_eq!(events[0].args[1], ("label", ArgValue::Str("x".into())));
    }

    #[test]
    fn threads_get_distinct_ids() {
        let rec = SpanRecorder::enabled();
        let r2 = rec.clone();
        let handle = std::thread::spawn(move || {
            let _s = r2.span("t", "worker");
        });
        {
            let _s = rec.span("t", "main");
        }
        handle.join().unwrap();
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid, "threads tag distinct ids");
    }

    #[test]
    fn capacity_bounds_memory() {
        let rec = SpanRecorder::with_capacity(2);
        for _ in 0..5 {
            let _s = rec.span("t", "s");
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped_events(), 3);
    }

    #[test]
    fn instants_have_no_duration() {
        let rec = SpanRecorder::enabled();
        rec.instant("t", "mark");
        let events = rec.events();
        assert_eq!(events[0].dur_us, None);
    }
}
