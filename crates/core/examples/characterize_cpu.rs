//! Characterize one workload on both of the paper's processors and
//! print the micro-architectural comparison (the per-workload view
//! behind Figures 5 and 6).
//!
//! ```text
//! cargo run --release -p bigdatabench --example characterize_cpu [workload]
//! ```
//!
//! `workload` is a case-insensitive prefix of a workload name
//! ("sort", "k-means", "nutch", ...); default is WordCount.

use bigdatabench::{MachineConfig, Suite, WorkloadId};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "wordcount".to_owned());
    let id = WorkloadId::ALL
        .iter()
        .copied()
        .find(|w| w.name().to_lowercase().starts_with(&wanted.to_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("no workload matches `{wanted}`; options:");
            for w in WorkloadId::ALL {
                eprintln!("  {w}");
            }
            std::process::exit(2);
        });

    let suite = Suite::new();
    println!("characterizing {} (baseline input) on both machines...\n", id.name());
    let e5645 = suite.run_traced(id, 1, MachineConfig::xeon_e5645());
    let e5310 = suite.run_traced(id, 1, MachineConfig::xeon_e5310());

    println!("{:<22} {:>12} {:>12}", "", "Xeon E5645", "Xeon E5310");
    let row = |name: &str, a: f64, b: f64| {
        println!("{name:<22} {a:>12.3} {b:>12.3}");
    };
    row("MIPS", e5645.mips(), e5310.mips());
    row("IPC", e5645.ipc(), e5310.ipc());
    row("L1I MPKI", e5645.l1i_mpki(), e5310.l1i_mpki());
    row("L2 MPKI", e5645.l2_mpki(), e5310.l2_mpki());
    row("L3 MPKI", e5645.l3_mpki(), e5310.l3_mpki());
    row("ITLB MPKI", e5645.itlb_mpki(), e5310.itlb_mpki());
    row("DTLB MPKI", e5645.dtlb_mpki(), e5310.dtlb_mpki());
    row("FP intensity", e5645.fp_intensity(), e5310.fp_intensity());
    row("INT intensity", e5645.int_intensity(), e5310.int_intensity());
    println!(
        "\nint:fp ratio {:.1}; {} dynamic instructions simulated",
        e5645.mix.int_to_fp_ratio(),
        e5645.instructions()
    );
    println!(
        "\nThe E5310 has no L3: watch DRAM traffic (and therefore operation\n\
         intensity) shift between the two columns — the effect behind the\n\
         paper's Figure 5 discussion."
    );
}
