//! Quickstart: run a handful of workloads natively, then characterize
//! one on the simulated Xeon E5645.
//!
//! ```text
//! cargo run --release -p bigdatabench --example quickstart
//! ```

use bigdatabench::{MachineConfig, Suite, WorkloadId};

fn main() {
    // `Suite::new()` uses library-scale inputs (about 1 MiB of text per
    // micro benchmark); everything below finishes in seconds.
    let suite = Suite::new();

    println!("BigDataBench-RS quickstart\n");
    println!("== native runs (user-perceivable metrics) ==");
    for id in [
        WorkloadId::WordCount,
        WorkloadId::Bfs,
        WorkloadId::Read,
        WorkloadId::AggregateQuery,
        WorkloadId::NutchServer,
    ] {
        let report = suite.run_native(id, 1);
        println!(
            "{:<24} {:>12.0} {:<6} ({})",
            report.workload,
            report.metric.value(),
            report.metric.unit(),
            report.detail
        );
    }

    println!("\n== characterization (simulated Xeon E5645) ==");
    let report = suite.run_traced(WorkloadId::WordCount, 1, MachineConfig::xeon_e5645());
    println!("WordCount @ baseline input:");
    println!("{report}");
    println!(
        "\nThe deep MapReduce software stack produces the high L1I miss\n\
         rate the paper reports for Hadoop workloads; compare the L1I\n\
         MPKI above ({:.1}) with a compute kernel's (≈0).",
        report.l1i_mpki()
    );
}
