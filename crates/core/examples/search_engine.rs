//! The search-engine scenario end to end — the paper's motivating
//! internet-service domain (Table 4, "Search Engine" rows).
//!
//! 1. Generate a synthetic web corpus with BDGS text generation.
//! 2. Build the inverted index as a MapReduce job (the Index workload).
//! 3. Rank the synthetic web graph with PageRank.
//! 4. Serve queries from the index under increasing offered load and
//!    watch the Nutch-style front-end saturate.
//!
//! ```text
//! cargo run --release -p bigdatabench --example search_engine
//! ```

use bdb_datagen::text::TextGenerator;
use bdb_datagen::{GraphGenerator, RmatParams};
use bdb_graph::{pagerank, CsrGraph, PageRankConfig};
use bdb_serving::loadgen::run_offered_load;
use bdb_serving::search::SearchServer;
use std::time::Duration;

fn main() {
    // 1. Corpus.
    let mut gen = TextGenerator::wikipedia(2026);
    let mut docs = Vec::new();
    gen.documents(2_000, |d| docs.push(d));
    let corpus_bytes: usize = docs.iter().map(String::len).sum();
    println!("generated {} documents ({} KiB)", docs.len(), corpus_bytes / 1024);

    // 2. Index them through the search server (same structure the Index
    //    workload builds via MapReduce).
    let mut server = SearchServer::build(docs.len() as u32, 7);
    println!("inverted index: {} terms over {} documents", server.term_count(), server.doc_count());

    // 3. PageRank over a Google-web-fitted synthetic graph.
    let edges = GraphGenerator::new(RmatParams::google_web(), 99).generate(4096);
    let graph = CsrGraph::from_edges(edges.nodes, &edges.edges);
    let (ranks, iters) = pagerank::pagerank(&graph, PageRankConfig::default());
    let mut top: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nPageRank converged in {iters} iterations; top pages:");
    for (page, rank) in top.iter().take(5) {
        println!("  page {page:>5}  rank {rank:.5}");
    }

    // 4. Drive the front-end at the paper's offered loads.
    println!("\nNutch-style front-end under offered load (queueing simulation):");
    println!("{:>10} {:>12} {:>10} {:>10}", "offered", "achieved", "p50", "p99");
    for multiplier in [1u32, 4, 8, 16, 32] {
        let offered = 100.0 * multiplier as f64;
        let report = run_offered_load(&mut server, offered, Duration::from_secs(10), 6, 300, 11);
        println!(
            "{:>10.0} {:>12.1} {:>9.2?} {:>9.2?}{}",
            offered,
            report.achieved_rps,
            report.latency.percentile(0.5),
            report.latency.percentile(0.99),
            if report.saturated() { "  <- saturated" } else { "" }
        );
    }
}
