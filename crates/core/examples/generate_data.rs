//! BDGS demo: generate every data flavor and verify the synthetic data
//! preserves the seed characteristics (the "veracity" V of the 4V).
//!
//! ```text
//! cargo run --release -p bigdatabench --example generate_data
//! ```

use bdb_datagen::stats::{estimate_zipf_exponent, rank_frequencies};
use bdb_datagen::text::TextGenerator;
use bdb_datagen::{
    EcommerceGenerator, GraphGenerator, ResumeGenerator, ReviewGenerator, RmatParams, SEED_DATASETS,
};

fn main() {
    println!("BDGS — Big Data Generator Suite demo\n");
    println!("seed inventory (paper Table 2):");
    for seed in &SEED_DATASETS {
        println!("  {:<28} {}", seed.kind.to_string(), seed.size_description);
    }

    // Text: check the word-frequency distribution follows Zipf's law
    // like the Wikipedia seed.
    let mut text = TextGenerator::wikipedia(1);
    let corpus = text.corpus(400_000);
    let words: Vec<&str> = corpus.split_whitespace().collect();
    let freqs = rank_frequencies(words.iter().copied());
    let exponent = estimate_zipf_exponent(&freqs).expect("enough words");
    println!(
        "\ntext: {} KiB, {} distinct words, fitted Zipf exponent {:.2} (seed: 1.0)",
        corpus.len() / 1024,
        freqs.len(),
        exponent
    );

    // Graph: degree distribution shape of the web-graph generator.
    let graph = GraphGenerator::new(RmatParams::google_web(), 2).generate(1 << 14);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.2} (seed: 5.83), max degree {}",
        graph.nodes,
        graph.edges.len(),
        graph.avg_degree(),
        graph.max_degree()
    );

    // Tables: the ORDER/ITEM ratio of the transaction seed.
    let (orders, items) = EcommerceGenerator::new(3).generate(10_000);
    println!(
        "tables: {} orders / {} items = {:.2} items per order (seed: 6.28)",
        orders.len(),
        items.len(),
        items.len() as f64 / orders.len() as f64
    );

    // Reviews: the J-shaped rating histogram.
    let reviews = ReviewGenerator::new(4).generate(50_000);
    let mut hist = [0u64; 6];
    for r in &reviews {
        hist[r.score as usize] += 1;
    }
    println!("reviews: rating histogram 1..5 = {:?} (J-shaped)", &hist[1..]);

    // Resumés: institution skew.
    let resumes = ResumeGenerator::new(5).generate(20_000);
    let inst_freqs = rank_frequencies(resumes.iter().map(|r| r.institution));
    println!(
        "resumes: {} records over {} institutions; top institution holds {:.1}%",
        resumes.len(),
        inst_freqs.len(),
        inst_freqs[0] as f64 / resumes.len() as f64 * 100.0
    );
}
