//! The e-commerce scenario: generate Table-3-shaped transaction data,
//! run the three relational-query workloads over it, then train the
//! recommendation and sentiment models on synthetic reviews.
//!
//! ```text
//! cargo run --release -p bigdatabench --example ecommerce_analytics
//! ```

use bdb_datagen::convert::{reviews_to_labeled, reviews_to_ratings};
use bdb_datagen::{EcommerceGenerator, ReviewGenerator};
use bdb_mlkit::{ItemCf, NaiveBayes};
use bdb_sql::exec::{aggregate, hash_join, select, Aggregation};
use bdb_sql::expr::{col, lit};
use bdb_sql::{ColumnType, Schema, Table, Value};

fn main() {
    // Transaction tables with the seed's schema and skew.
    let (orders, items) = EcommerceGenerator::new(42).generate(20_000);
    println!(
        "generated {} orders, {} items ({:.2} items/order)",
        orders.len(),
        items.len(),
        items.len() as f64 / orders.len() as f64
    );

    let mut order_t = Table::new(
        "orders",
        Schema::new(&[("ORDER_ID", ColumnType::Int), ("BUYER_ID", ColumnType::Int)]),
    );
    for o in &orders {
        order_t
            .push_row(vec![Value::Int(o.order_id as i64), Value::Int(o.buyer_id as i64)])
            .expect("schema");
    }
    let mut item_t = Table::new(
        "items",
        Schema::new(&[
            ("ORDER_ID", ColumnType::Int),
            ("GOODS_ID", ColumnType::Int),
            ("GOODS_AMOUNT", ColumnType::Float),
        ]),
    );
    for i in &items {
        item_t
            .push_row(vec![
                Value::Int(i.order_id as i64),
                Value::Int(i.goods_id as i64),
                Value::Float(i.goods_amount),
            ])
            .expect("schema");
    }

    // Select Query: high-value line items.
    let expensive =
        select(&item_t, &col("GOODS_AMOUNT").gt(lit(500.0)), &["ORDER_ID"]).expect("valid query");
    println!("\nSelect Query: {} line items above 500", expensive.len());

    // Aggregate Query: revenue per goods, top 5.
    let mut revenue =
        aggregate(&item_t, "GOODS_ID", &[Aggregation::sum("GOODS_AMOUNT")]).expect("valid query");
    revenue
        .sort_by(|a, b| b[1].as_float().unwrap_or(0.0).total_cmp(&a[1].as_float().unwrap_or(0.0)));
    println!("Aggregate Query: top goods by revenue:");
    for row in revenue.iter().take(5) {
        println!("  goods {:>6}  revenue {:>12.2}", row[0], row[1].as_float().unwrap_or(0.0));
    }

    // Join Query: order x item join cardinality.
    let joined = hash_join(&order_t, "ORDER_ID", &item_t, "ORDER_ID").expect("valid join");
    println!("Join Query: {} joined rows", joined.len());

    // Reviews → recommendations + sentiment.
    let reviews = ReviewGenerator::new(7).generate(30_000);
    let ratings = reviews_to_ratings(&reviews);
    let cf = ItemCf::train(&ratings, 20);
    println!("\nCollaborative Filtering: {} items with neighbors", cf.item_count());
    println!("  recommendations for user 1:");
    for (item, predicted) in cf.recommend(1, 5) {
        println!("    item {item:>8}  predicted rating {predicted:.2}");
    }

    let docs: Vec<(usize, String)> = reviews_to_labeled(&reviews)
        .lines()
        .map(|l| {
            let (label, text) = l.split_once('\t').expect("labeled");
            ((label == "pos") as usize, text.to_owned())
        })
        .collect();
    let split = docs.len() * 9 / 10;
    let bayes = NaiveBayes::train(&docs[..split], 2);
    println!(
        "\nNaive Bayes: vocab {}, held-out accuracy {:.1}%",
        bayes.vocab_size(),
        bayes.accuracy(&docs[split..]) * 100.0
    );
}
