//! The paper's future-work experiment, as a runnable example: the same
//! WordCount on the MapReduce stack and on the Spark-style in-memory
//! dataflow stack, characterized side by side on the simulated Xeon
//! E5645.
//!
//! ```text
//! cargo run --release -p bigdatabench --example stack_comparison
//! ```

use bdb_archsim::{MachineConfig, SimProbe};
use bdb_dataflow::Dataset;
use bdb_mapreduce::{Emitter, Engine, FrameworkModel, Job};
use bigdatabench::CharacterizationReport;

struct WordCount;
impl Job for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: bdb_archsim::Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<String, u64>,
        _p: &mut P,
    ) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, v: Vec<u64>) -> Vec<u64> {
        vec![v.into_iter().sum()]
    }
    fn reduce<P: bdb_archsim::Probe + ?Sized>(
        &self,
        k: String,
        v: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((k, v.into_iter().sum()));
    }
}

fn main() {
    let lines: Vec<String> = bdb_datagen::text::TextGenerator::wikipedia(11)
        .corpus(512 << 10)
        .lines()
        .map(str::to_owned)
        .collect();
    let machine = MachineConfig::xeon_e5645();
    let warm = lines.len() / 5;

    // --- MapReduce (Hadoop-like) stack ---
    let mut probe = SimProbe::new(machine.clone());
    let engine = Engine::builder().build();
    let mut fw = FrameworkModel::new();
    fw.warm(&mut probe);
    engine.run_traced_with(&WordCount, &lines[..warm], &mut probe, &mut fw);
    probe.reset_stats();
    let (hadoop_out, _) = engine.run_traced_with(&WordCount, &lines, &mut probe, &mut fw);
    let hadoop = probe.finish();

    // --- In-memory dataflow (Spark-like) stack ---
    let wordcount = |ds: &Dataset<String>| {
        ds.flat_map(|l| l.split_whitespace().map(str::to_owned).collect())
            .key_by(|w| w.clone())
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b)
    };
    let mut probe = SimProbe::new(machine);
    wordcount(&Dataset::from_vec(lines[..warm].to_vec())).collect_traced(&mut probe);
    probe.reset_stats();
    let (flow_out, _) = wordcount(&Dataset::from_vec(lines)).collect_traced(&mut probe);
    let dataflow = probe.finish();

    assert_eq!(
        {
            let mut a = hadoop_out.clone();
            a.sort();
            a
        },
        {
            let mut b = flow_out.clone();
            b.sort();
            b
        },
        "both stacks compute the same answer"
    );

    println!(
        "WordCount over 512 KiB of Wikipedia-style text ({} distinct words)\n",
        flow_out.len()
    );
    println!("{:<14} {:>12} {:>12}", "", "MapReduce", "dataflow");
    let row = |name: &str, f: fn(&CharacterizationReport) -> f64| {
        println!("{name:<14} {:>12.3} {:>12.3}", f(&hadoop), f(&dataflow));
    };
    row("L1I MPKI", |r| r.l1i_mpki());
    row("L2 MPKI", |r| r.l2_mpki());
    row("L3 MPKI", |r| r.l3_mpki());
    row("ITLB MPKI", |r| r.itlb_mpki());
    row("DTLB MPKI", |r| r.dtlb_mpki());
    row("IPC", |r| r.ipc());
    println!(
        "\nThe paper's Section 6.3.2 conjecture — that the deep software\n\
         stack causes the front-end stalls — checks out: the in-memory\n\
         engine runs the same job with {:.0}x fewer L1I misses per\n\
         kilo-instruction.",
        hadoop.l1i_mpki() / dataflow.l1i_mpki().max(1e-9)
    );
}
