//! Figure-level orchestration: the data behind each of the paper's
//! evaluation figures (2, 3-1, 3-2, 4, 5, 6).
//!
//! Each function returns plain rows; `bdb-bench`'s `reproduce` binary
//! formats them as the paper's tables/series and EXPERIMENTS.md records
//! the comparison.

use crate::report::WorkloadReport;
use crate::scale::RunScale;
use crate::suite::Suite;
use crate::workload::WorkloadId;
use bdb_archsim::{CharacterizationReport, MachineConfig};
use bdb_refbench::{characterize_suite, RefSuite};
use serde::{Deserialize, Serialize};

/// Refbench kernel scale used for suite averages — large enough that
/// the streaming kernels (STREAM, PTRANS, RandomAccess) exceed the L3.
const REF_SCALE: usize = 1 << 20;

/// Figure 2 — L3 MPKI under the small (baseline) versus large input.
///
/// Following the paper, the *large* input is the multiplier at which the
/// workload achieved its best user-perceivable performance in the native
/// sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// L3 MPKI at the baseline input.
    pub small_l3_mpki: f64,
    /// L3 MPKI at the best-performing input.
    pub large_l3_mpki: f64,
    /// Which multiplier was "large".
    pub large_multiplier: u32,
}

/// Computes Figure 2 for every workload.
pub fn figure2(suite: &Suite, machine: &MachineConfig) -> Vec<Fig2Row> {
    WorkloadId::ALL
        .iter()
        .map(|&id| {
            let native = suite.sweep_native(id);
            let large_multiplier = best_multiplier(&native);
            let small = suite.run_traced(id, 1, machine.clone());
            let large = suite.run_traced(id, large_multiplier, machine.clone());
            Fig2Row {
                workload: id.name().to_owned(),
                small_l3_mpki: small.l3_mpki(),
                large_l3_mpki: large.l3_mpki(),
                large_multiplier,
            }
        })
        .collect()
}

fn best_multiplier(sweep: &[WorkloadReport]) -> u32 {
    sweep
        .iter()
        .max_by(|a, b| a.metric.value().total_cmp(&b.metric.value()))
        .map_or(32, |r| r.multiplier)
}

/// One point of the Figure 3 sweeps: traced MIPS plus native speedup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Data-volume multiplier.
    pub multiplier: u32,
    /// Timing-model MIPS (Figure 3-1).
    pub mips: f64,
    /// Native metric normalized to the baseline run (Figure 3-2).
    pub speedup: f64,
    /// L3 MPKI at this multiplier (supporting data for Figure 2's
    /// discussion).
    pub l3_mpki: f64,
}

/// Computes the Figure 3 sweep (5 multipliers) for one workload.
pub fn figure3_for(suite: &Suite, id: WorkloadId, machine: &MachineConfig) -> Vec<Fig3Row> {
    let native = suite.sweep_native(id);
    let baseline_value =
        native.first().map(|r| r.metric.value()).filter(|v| *v > 0.0).unwrap_or(1.0);
    let traced = suite.sweep_traced(id, machine);
    native
        .iter()
        .zip(&traced)
        .map(|(n, t)| Fig3Row {
            workload: id.name().to_owned(),
            multiplier: n.multiplier,
            mips: t.mips(),
            speedup: n.metric.value() / baseline_value,
            l3_mpki: t.l3_mpki(),
        })
        .collect()
}

/// Computes Figure 3 for every workload.
pub fn figure3(suite: &Suite, machine: &MachineConfig) -> Vec<Fig3Row> {
    WorkloadId::ALL.iter().flat_map(|&id| figure3_for(suite, id, machine)).collect()
}

/// Figure 4 — dynamic instruction breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Workload or suite-average name.
    pub name: String,
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Fraction of integer-class instructions.
    pub int: f64,
    /// Fraction of FP instructions.
    pub fp: f64,
    /// Integer-to-FP ratio.
    pub int_fp_ratio: f64,
}

fn fig4_row(name: &str, r: &CharacterizationReport) -> Fig4Row {
    use bdb_archsim::metrics::InstClass;
    Fig4Row {
        name: name.to_owned(),
        load: r.mix.fraction(InstClass::Load),
        store: r.mix.fraction(InstClass::Store),
        branch: r.mix.fraction(InstClass::Branch),
        int: r.mix.fraction(InstClass::Int),
        fp: r.mix.fraction(InstClass::Fp),
        int_fp_ratio: r.mix.int_to_fp_ratio(),
    }
}

/// All per-workload traced reports at the baseline multiplier, in Table
/// 6 order — shared input for Figures 4, 5 and 6.
pub fn baseline_reports(
    suite: &Suite,
    machine: &MachineConfig,
) -> Vec<(WorkloadId, CharacterizationReport)> {
    WorkloadId::ALL.iter().map(|&id| (id, suite.run_traced(id, 1, machine.clone()))).collect()
}

/// Computes Figure 4: 19 workloads + the BigDataBench average + the four
/// traditional-suite averages.
pub fn figure4(
    reports: &[(WorkloadId, CharacterizationReport)],
    machine: &MachineConfig,
) -> Vec<Fig4Row> {
    let mut rows: Vec<Fig4Row> = reports.iter().map(|(id, r)| fig4_row(id.name(), r)).collect();
    rows.push(fig4_row("Avg_BigData", &average_report(reports)));
    for suite in RefSuite::ALL {
        let r = characterize_suite(suite, REF_SCALE, machine.clone());
        rows.push(fig4_row(suite.label(), &r));
    }
    rows
}

/// Merges per-workload reports into a suite-average report (sums event
/// counts, recomputes derived metrics).
pub fn average_report(reports: &[(WorkloadId, CharacterizationReport)]) -> CharacterizationReport {
    let mut avg = CharacterizationReport {
        machine: reports.first().map(|(_, r)| r.machine.clone()).unwrap_or_default(),
        ..Default::default()
    };
    for (_, r) in reports {
        avg.mix.merge(&r.mix);
        avg.l1i.stats.accesses += r.l1i.stats.accesses;
        avg.l1i.stats.misses += r.l1i.stats.misses;
        avg.l1d.stats.accesses += r.l1d.stats.accesses;
        avg.l1d.stats.misses += r.l1d.stats.misses;
        avg.l2.stats.accesses += r.l2.stats.accesses;
        avg.l2.stats.misses += r.l2.stats.misses;
        if let Some(l3) = r.l3 {
            let entry = avg.l3.get_or_insert_with(Default::default);
            entry.stats.accesses += l3.stats.accesses;
            entry.stats.misses += l3.stats.misses;
        }
        avg.itlb.stats.accesses += r.itlb.stats.accesses;
        avg.itlb.stats.misses += r.itlb.stats.misses;
        avg.dtlb.stats.accesses += r.dtlb.stats.accesses;
        avg.dtlb.stats.misses += r.dtlb.stats.misses;
        avg.dram_bytes += r.dram_bytes;
        avg.requested_bytes += r.requested_bytes;
        avg.mispredicts += r.mispredicts;
        avg.cycles += r.cycles;
        avg.freq_mhz = r.freq_mhz;
    }
    avg
}

/// Figure 5 — operation intensity on both machines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Workload or suite-average name.
    pub name: String,
    /// FP operations per DRAM byte on the Xeon E5310.
    pub fp_e5310: f64,
    /// FP operations per DRAM byte on the Xeon E5645.
    pub fp_e5645: f64,
    /// Integer-class operations per DRAM byte on the E5310.
    pub int_e5310: f64,
    /// Integer-class operations per DRAM byte on the E5645.
    pub int_e5645: f64,
}

/// Computes Figure 5: per workload plus suite averages, on both
/// processor configurations.
pub fn figure5(suite: &Suite) -> Vec<Fig5Row> {
    let e5645 = MachineConfig::xeon_e5645();
    let e5310 = MachineConfig::xeon_e5310();
    let rep45 = baseline_reports(suite, &e5645);
    let rep10 = baseline_reports(suite, &e5310);
    let mut rows: Vec<Fig5Row> = rep45
        .iter()
        .zip(&rep10)
        .map(|((id, r45), (_, r10))| Fig5Row {
            name: id.name().to_owned(),
            fp_e5310: r10.fp_intensity(),
            fp_e5645: r45.fp_intensity(),
            int_e5310: r10.int_intensity(),
            int_e5645: r45.int_intensity(),
        })
        .collect();
    let avg45 = average_report(&rep45);
    let avg10 = average_report(&rep10);
    rows.push(Fig5Row {
        name: "Avg_BigData".to_owned(),
        fp_e5310: avg10.fp_intensity(),
        fp_e5645: avg45.fp_intensity(),
        int_e5310: avg10.int_intensity(),
        int_e5645: avg45.int_intensity(),
    });
    for suite_kind in RefSuite::ALL {
        let r45 = characterize_suite(suite_kind, REF_SCALE, e5645.clone());
        let r10 = characterize_suite(suite_kind, REF_SCALE, e5310.clone());
        rows.push(Fig5Row {
            name: suite_kind.label().to_owned(),
            fp_e5310: r10.fp_intensity(),
            fp_e5645: r45.fp_intensity(),
            int_e5310: r10.int_intensity(),
            int_e5645: r45.int_intensity(),
        });
    }
    rows
}

/// Figure 6 — memory-hierarchy behaviour (cache and TLB MPKI).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload or suite-average name.
    pub name: String,
    /// L1 instruction cache MPKI.
    pub l1i_mpki: f64,
    /// L2 MPKI.
    pub l2_mpki: f64,
    /// L3 MPKI.
    pub l3_mpki: f64,
    /// Instruction TLB MPKI.
    pub itlb_mpki: f64,
    /// Data TLB MPKI.
    pub dtlb_mpki: f64,
}

fn fig6_row(name: &str, r: &CharacterizationReport) -> Fig6Row {
    Fig6Row {
        name: name.to_owned(),
        l1i_mpki: r.l1i_mpki(),
        l2_mpki: r.l2_mpki(),
        l3_mpki: r.l3_mpki(),
        itlb_mpki: r.itlb_mpki(),
        dtlb_mpki: r.dtlb_mpki(),
    }
}

/// Computes Figure 6 rows from baseline reports plus suite averages.
pub fn figure6(
    reports: &[(WorkloadId, CharacterizationReport)],
    machine: &MachineConfig,
) -> Vec<Fig6Row> {
    let mut rows: Vec<Fig6Row> = reports.iter().map(|(id, r)| fig6_row(id.name(), r)).collect();
    rows.push(fig6_row("Avg_BigData", &average_report(reports)));
    for suite in RefSuite::ALL {
        let r = characterize_suite(suite, REF_SCALE, machine.clone());
        rows.push(fig6_row(suite.label(), &r));
    }
    rows
}

/// One row of the per-phase breakdown: an execution phase of one
/// workload (map/spill/shuffle/reduce for MapReduce jobs, `iter-N` for
/// iterative algorithms, per-operator for SQL) with the figure-level
/// metrics recomputed over that phase alone. This is the drill-down
/// behind Figures 2–6: the same MPKI and instruction-mix axes, but
/// attributed to the phase that caused them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Workload name.
    pub workload: String,
    /// Phase name, in first-appearance order.
    pub phase: String,
    /// Instructions retired within the phase.
    pub instructions: u64,
    /// This phase's share of the run's instructions (0..=1).
    pub instruction_share: f64,
    /// This phase's share of the run's modeled cycles (0..=1).
    pub cycle_share: f64,
    /// Timing-model MIPS over the phase alone.
    pub mips: f64,
    /// L1 instruction-cache MPKI within the phase.
    pub l1i_mpki: f64,
    /// L2 MPKI within the phase.
    pub l2_mpki: f64,
    /// L3 MPKI within the phase.
    pub l3_mpki: f64,
}

/// Expands one traced report into per-phase rows. Empty when the run
/// recorded no phase marks (e.g. refbench kernels).
pub fn phase_rows(workload: &str, report: &CharacterizationReport) -> Vec<PhaseRow> {
    let total_instructions = report.mix.total().max(1);
    let total_cycles = report.cycles.max(1);
    report
        .phase_reports()
        .iter()
        .map(|(phase, r)| PhaseRow {
            workload: workload.to_owned(),
            phase: phase.clone(),
            instructions: r.mix.total(),
            instruction_share: r.mix.total() as f64 / total_instructions as f64,
            cycle_share: r.cycles as f64 / total_cycles as f64,
            mips: r.mips(),
            l1i_mpki: r.l1i_mpki(),
            l2_mpki: r.l2_mpki(),
            l3_mpki: r.l3_mpki(),
        })
        .collect()
}

/// Computes the per-phase breakdown for every workload in `reports`.
pub fn phase_breakdown(reports: &[(WorkloadId, CharacterizationReport)]) -> Vec<PhaseRow> {
    reports.iter().flat_map(|(id, r)| phase_rows(id.name(), r)).collect()
}

/// Convenience: the multipliers of [`RunScale::MULTIPLIERS`] as labels.
pub fn multiplier_labels() -> Vec<String> {
    RunScale::MULTIPLIERS
        .iter()
        .map(|m| if *m == 1 { "Baseline".to_owned() } else { format!("{m}X") })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        Suite::with_fraction(1.0 / 64.0)
    }

    #[test]
    fn fig3_sweep_has_five_points_per_workload() {
        let suite = tiny_suite();
        let rows = figure3_for(&suite, WorkloadId::Grep, &MachineConfig::xeon_e5645());
        assert_eq!(rows.len(), 5);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9, "baseline normalizes to 1");
        assert!(rows.iter().all(|r| r.mips > 0.0));
    }

    #[test]
    fn average_report_sums() {
        let suite = tiny_suite();
        let machine = MachineConfig::xeon_e5645();
        let reports: Vec<_> = [WorkloadId::Grep, WorkloadId::Bfs]
            .iter()
            .map(|&id| (id, suite.run_traced(id, 1, machine.clone())))
            .collect();
        let avg = average_report(&reports);
        assert_eq!(avg.mix.total(), reports[0].1.mix.total() + reports[1].1.mix.total());
        assert!(avg.l3.is_some());
    }

    #[test]
    fn multiplier_labels_match_paper() {
        assert_eq!(multiplier_labels(), vec!["Baseline", "4X", "8X", "16X", "32X"]);
    }

    #[test]
    fn phase_rows_partition_a_mapreduce_run() {
        let suite = tiny_suite();
        let report = suite.run_traced(WorkloadId::WordCount, 1, MachineConfig::xeon_e5645());
        let rows = phase_rows("WordCount", &report);
        assert!(!rows.is_empty(), "traced WordCount records phases");
        let names: Vec<&str> = rows.iter().map(|r| r.phase.as_str()).collect();
        assert!(names.contains(&"map"), "phases: {names:?}");
        assert!(names.contains(&"reduce"), "phases: {names:?}");
        let instructions: u64 = rows.iter().map(|r| r.instructions).sum();
        assert_eq!(instructions, report.mix.total(), "phases partition the instruction stream");
        let inst_share: f64 = rows.iter().map(|r| r.instruction_share).sum();
        let cycle_share: f64 = rows.iter().map(|r| r.cycle_share).sum();
        assert!((inst_share - 1.0).abs() < 1e-9, "shares sum to 1: {inst_share}");
        assert!((cycle_share - 1.0).abs() < 1e-9, "cycle shares sum to 1: {cycle_share}");
        assert!(rows.iter().filter(|r| r.instructions > 0).all(|r| r.mips > 0.0));
    }

    #[test]
    fn phase_rows_name_iterations_for_iterative_workloads() {
        let suite = tiny_suite();
        let report = suite.run_traced(WorkloadId::PageRank, 1, MachineConfig::xeon_e5645());
        let rows = phase_rows("PageRank", &report);
        assert!(rows.iter().any(|r| r.phase == "iter-1"), "per-iteration phases recorded");
    }
}
