//! The suite facade: build, run and sweep workloads.

use crate::report::WorkloadReport;
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use crate::workloads;
use bdb_archsim::{CharacterizationReport, MachineConfig};

/// Entry point for running BigDataBench-RS workloads.
///
/// A `Suite` fixes the global shrink fraction and seed; each run method
/// takes the paper's data-volume multiplier.
///
/// # Example
///
/// ```
/// use bigdatabench::{Suite, WorkloadId};
///
/// let suite = Suite::quick();
/// let report = suite.run_native(WorkloadId::Grep, 1);
/// assert_eq!(report.workload, "Grep");
/// assert!(report.metric.value() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    fraction: f64,
    seed: u64,
}

impl Suite {
    /// Full library-scale inputs (baseline ≈ 1 MiB of text, 2^12
    /// vertices, ...; a full 19-workload native run takes seconds).
    pub fn new() -> Self {
        Self { fraction: 1.0, seed: RunScale::baseline().seed }
    }

    /// Tiny inputs (1/16 of library scale) for tests and smoke runs.
    pub fn quick() -> Self {
        Self { fraction: 1.0 / 16.0, seed: RunScale::baseline().seed }
    }

    /// A suite with an explicit shrink fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not positive.
    pub fn with_fraction(fraction: f64) -> Self {
        assert!(fraction > 0.0, "fraction must be positive");
        Self { fraction, seed: RunScale::baseline().seed }
    }

    /// Replaces the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`RunScale`] this suite uses at `multiplier`.
    pub fn scale(&self, multiplier: u32) -> RunScale {
        RunScale { multiplier, fraction: self.fraction, seed: self.seed }
    }

    /// Builds the implementation of one workload.
    pub fn workload(&self, id: WorkloadId) -> Box<dyn Workload> {
        workloads::build(id)
    }

    /// Runs one workload natively at `multiplier` × baseline.
    pub fn run_native(&self, id: WorkloadId, multiplier: u32) -> WorkloadReport {
        workloads::build(id).run_native(&self.scale(multiplier))
    }

    /// Runs one workload on the simulated machine at `multiplier`.
    pub fn run_traced(
        &self,
        id: WorkloadId,
        multiplier: u32,
        machine: MachineConfig,
    ) -> CharacterizationReport {
        workloads::build(id).run_traced(&self.scale(multiplier), machine)
    }

    /// Runs every workload natively at `multiplier`.
    pub fn run_all_native(&self, multiplier: u32) -> Vec<WorkloadReport> {
        WorkloadId::ALL.iter().map(|&id| self.run_native(id, multiplier)).collect()
    }

    /// Native sweep over the paper's multipliers for one workload.
    pub fn sweep_native(&self, id: WorkloadId) -> Vec<WorkloadReport> {
        RunScale::MULTIPLIERS.iter().map(|&m| self.run_native(id, m)).collect()
    }

    /// Traced sweep over the paper's multipliers for one workload.
    pub fn sweep_traced(
        &self,
        id: WorkloadId,
        machine: &MachineConfig,
    ) -> Vec<CharacterizationReport> {
        RunScale::MULTIPLIERS.iter().map(|&m| self.run_traced(id, m, machine.clone())).collect()
    }
}

impl Default for Suite {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_a_workload() {
        let suite = Suite::quick();
        let r = suite.run_native(WorkloadId::WordCount, 1);
        assert_eq!(r.multiplier, 1);
        assert!(r.metric.value() > 0.0);
    }

    #[test]
    fn scale_carries_fraction_and_seed() {
        let suite = Suite::with_fraction(0.5).with_seed(9);
        let s = suite.scale(8);
        assert_eq!(s.multiplier, 8);
        assert_eq!(s.fraction, 0.5);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn traced_run_reports_instructions() {
        let suite = Suite::quick();
        let r = suite.run_traced(WorkloadId::Grep, 1, MachineConfig::xeon_e5645());
        assert!(r.instructions() > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_fraction_panics() {
        Suite::with_fraction(-1.0);
    }
}
