//! Input scaling: the paper's baseline × {1,4,8,16,32} sweep, shrunk to
//! library scale.

/// How much input to generate for one run.
///
/// The paper fixes a per-workload baseline (Table 6: 32 GB of text, 2^15
/// vertices, 10^6 pages, 100 requests/s) and multiplies it by 1/4/8/16/32.
/// We keep the multipliers and shrink the baselines: `fraction` scales
/// every workload's library-scale baseline, so `RunScale::baseline()`
/// runs in milliseconds and `RunScale::full()` in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// The paper's data-volume multiplier (1, 4, 8, 16 or 32).
    pub multiplier: u32,
    /// Global shrink factor applied to native baselines (1.0 = the
    /// library-scale default).
    pub fraction: f64,
    /// Deterministic seed for generators.
    pub seed: u64,
}

impl RunScale {
    /// The paper's multiplier sweep.
    pub const MULTIPLIERS: [u32; 5] = [1, 4, 8, 16, 32];

    /// Baseline input (multiplier 1) at the default fraction.
    pub fn baseline() -> Self {
        Self { multiplier: 1, fraction: 1.0, seed: 0xB1D_DA7A }
    }

    /// Baseline scaled by `multiplier`.
    pub fn at(multiplier: u32) -> Self {
        Self { multiplier, ..Self::baseline() }
    }

    /// A tiny configuration for tests: 1/16 of the library baseline.
    pub fn quick() -> Self {
        Self { multiplier: 1, fraction: 1.0 / 16.0, seed: 0xB1D_DA7A }
    }

    /// Replaces the shrink fraction.
    pub fn with_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "fraction must be positive");
        self.fraction = fraction;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Native input size: `baseline_units × fraction × multiplier`,
    /// at least 1.
    pub fn native_units(&self, baseline_units: u64) -> u64 {
        let base = (baseline_units as f64 * self.fraction).max(1.0) as u64;
        (base * self.multiplier as u64).max(1)
    }

    /// Traced input size: a quarter of native (simulation is ~100×
    /// slower per byte than native execution), still multiplier-scaled,
    /// at least 1.
    pub fn traced_units(&self, baseline_units: u64) -> u64 {
        let base = (baseline_units as f64 * self.fraction / 4.0).max(1.0) as u64;
        (base * self.multiplier as u64).max(1)
    }

    /// A seed derived for sub-component `tag` so generators stay
    /// independent but deterministic.
    pub fn seed_for(&self, tag: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
            .wrapping_add(self.multiplier as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_scale_linearly_with_multiplier() {
        let base = RunScale::at(1).native_units(1000);
        let x4 = RunScale::at(4).native_units(1000);
        let x32 = RunScale::at(32).native_units(1000);
        assert_eq!(x4, base * 4);
        assert_eq!(x32, base * 32);
    }

    #[test]
    fn fraction_shrinks() {
        let full = RunScale::baseline().native_units(1600);
        let quick = RunScale::quick().native_units(1600);
        assert_eq!(full, 1600);
        assert_eq!(quick, 100);
    }

    #[test]
    fn traced_is_smaller_but_scales() {
        let s = RunScale::at(8);
        assert!(s.traced_units(1000) < s.native_units(1000));
        assert_eq!(s.traced_units(1000), RunScale::at(1).traced_units(1000) * 8);
    }

    #[test]
    fn never_zero() {
        let s = RunScale::quick();
        assert_eq!(s.native_units(1), 1);
        assert!(s.traced_units(1) >= 1);
    }

    #[test]
    fn seeds_differ_per_tag_and_multiplier() {
        let s = RunScale::baseline();
        assert_ne!(s.seed_for(1), s.seed_for(2));
        assert_ne!(RunScale::at(1).seed_for(1), RunScale::at(4).seed_for(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fraction_panics() {
        RunScale::baseline().with_fraction(0.0);
    }
}
