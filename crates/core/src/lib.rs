//! # BigDataBench-RS
//!
//! A Rust reproduction of *BigDataBench: a Big Data Benchmark Suite from
//! Internet Services* (Wang, Zhan, et al., HPCA 2014): nineteen
//! workloads across online services, offline analytics and realtime
//! analytics, the BDGS synthetic data generators, and a trace-driven
//! micro-architectural characterization harness that regenerates the
//! paper's figures on simulated Xeon E5645/E5310 machines.
//!
//! ## Architecture
//!
//! Every workload runs in two modes through one code path:
//!
//! * **native** — parallel, uninstrumented, measuring the paper's
//!   user-perceivable metrics (DPS for analytics, OPS for Cloud OLTP,
//!   RPS + latency for services);
//! * **traced** — single-threaded against [`bdb_archsim`]'s machine
//!   model, producing cache/TLB MPKI, instruction mix, and operation
//!   intensity, with each workload's software stack (Hadoop-like
//!   MapReduce runtime, LSM store, query engine, app server) modeled by
//!   its substrate crate.
//!
//! The 19 workloads of the paper's Table 4 are enumerated by
//! [`WorkloadId`]; [`Suite`] builds and runs them.
//!
//! ## Quick start
//!
//! ```
//! use bigdatabench::{Suite, WorkloadId};
//!
//! let suite = Suite::quick(); // tiny inputs, suitable for tests/CI
//! let report = suite.run_native(WorkloadId::WordCount, 1);
//! assert!(report.metric.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod report;
pub mod scale;
pub mod suite;
pub mod workload;
pub mod workloads;

pub use bdb_archsim::{CharacterizationReport, MachineConfig};
pub use report::{MetricKind, UserMetric, WorkloadReport};
pub use scale::RunScale;
pub use suite::Suite;
pub use workload::{ApplicationType, Workload, WorkloadId};
