//! User-perceivable metrics and run reports (paper Section 6.1.2).

use crate::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which of the paper's three metric families a value belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Data processed per second (analytics workloads).
    Dps,
    /// Operations per second (Cloud OLTP workloads).
    Ops,
    /// Requests per second (online services).
    Rps,
}

/// A user-perceivable measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserMetric {
    /// Bytes of input processed per second.
    Dps {
        /// Input bytes.
        input_bytes: u64,
        /// Total processing seconds.
        seconds: f64,
    },
    /// Store operations per second.
    Ops {
        /// Operations completed.
        operations: u64,
        /// Total seconds.
        seconds: f64,
    },
    /// Service throughput and latency under offered load.
    Rps {
        /// Offered load (requests/s).
        offered: f64,
        /// Achieved throughput (requests/s).
        achieved: f64,
        /// 99th-percentile sojourn latency.
        p99: Duration,
    },
}

impl UserMetric {
    /// The metric family.
    pub fn kind(&self) -> MetricKind {
        match self {
            UserMetric::Dps { .. } => MetricKind::Dps,
            UserMetric::Ops { .. } => MetricKind::Ops,
            UserMetric::Rps { .. } => MetricKind::Rps,
        }
    }

    /// The headline scalar: DPS in bytes/s, OPS in ops/s, RPS achieved.
    pub fn value(&self) -> f64 {
        match self {
            UserMetric::Dps { input_bytes, seconds } => {
                if *seconds > 0.0 {
                    *input_bytes as f64 / seconds
                } else {
                    0.0
                }
            }
            UserMetric::Ops { operations, seconds } => {
                if *seconds > 0.0 {
                    *operations as f64 / seconds
                } else {
                    0.0
                }
            }
            UserMetric::Rps { achieved, .. } => *achieved,
        }
    }

    /// Unit label for display.
    pub fn unit(&self) -> &'static str {
        match self.kind() {
            MetricKind::Dps => "B/s",
            MetricKind::Ops => "ops/s",
            MetricKind::Rps => "req/s",
        }
    }
}

/// The result of one native workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Workload name (serialized rather than the enum for stable JSON).
    pub workload: String,
    /// Data-volume multiplier the run used.
    pub multiplier: u32,
    /// The measured user-perceivable metric.
    pub metric: UserMetric,
    /// Bytes of input consumed (0 where not meaningful).
    pub input_bytes: u64,
    /// Free-form detail (records, hits, groups...).
    pub detail: String,
}

impl WorkloadReport {
    /// Builds a report for `id`.
    pub fn new(id: WorkloadId, multiplier: u32, metric: UserMetric, input_bytes: u64) -> Self {
        Self {
            workload: id.name().to_owned(),
            multiplier,
            metric,
            input_bytes,
            detail: String::new(),
        }
    }

    /// Attaches free-form detail.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dps_value() {
        let m = UserMetric::Dps { input_bytes: 1000, seconds: 2.0 };
        assert_eq!(m.value(), 500.0);
        assert_eq!(m.kind(), MetricKind::Dps);
        assert_eq!(m.unit(), "B/s");
    }

    #[test]
    fn ops_and_rps_values() {
        let o = UserMetric::Ops { operations: 300, seconds: 3.0 };
        assert_eq!(o.value(), 100.0);
        let r = UserMetric::Rps { offered: 100.0, achieved: 80.0, p99: Duration::from_millis(5) };
        assert_eq!(r.value(), 80.0);
        assert_eq!(r.unit(), "req/s");
    }

    #[test]
    fn zero_time_guard() {
        let m = UserMetric::Dps { input_bytes: 10, seconds: 0.0 };
        assert_eq!(m.value(), 0.0);
    }

    #[test]
    fn report_serializes() {
        let r = WorkloadReport::new(
            WorkloadId::Sort,
            4,
            UserMetric::Dps { input_bytes: 1, seconds: 1.0 },
            1,
        )
        .with_detail("x");
        let json = serde_json::to_string(&r).unwrap();
        let back: WorkloadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, "Sort");
        assert_eq!(back.multiplier, 4);
        assert_eq!(back.detail, "x");
    }
}
