//! Social-network offline analytics: K-means clustering and Connected
//! Components over the Facebook-fitted graph (paper Table 4).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, Probe, SimProbe};
use bdb_datagen::{GraphGenerator, RmatParams};
use bdb_graph::{cc, CsrGraph, GraphTraceModel};
use bdb_mapreduce::FrameworkModel;
use bdb_mlkit::KMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Library-scale baseline point count for K-means ("32 GB data").
/// Sized so the 32x input (x fraction 0.25) crosses the E5645's 12 MiB
/// L3 — the boundary behind the paper's "K-means has the largest
/// small-vs-large L3 MPKI gap" observation (Figure 2).
pub const POINTS_BASELINE: u64 = 40_000;
/// Feature dimension for K-means points.
const DIM: usize = 8;
/// Cluster count.
const K: usize = 5;
/// Baseline vertex count for CC — the paper's own 2^15 (Table 6).
pub const CC_BASELINE_VERTICES: u64 = 1 << 15;

/// Clustered synthetic points: `K` Gaussian-ish blobs.
fn points(scale: &RunScale, n: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(scale.seed_for(50));
    let centers: Vec<Vec<f64>> =
        (0..K).map(|_| (0..DIM).map(|_| rng.gen_range(-100.0..100.0)).collect()).collect();
    (0..n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..K)];
            c.iter().map(|&x| x + rng.gen_range(-5.0..5.0)).collect()
        })
        .collect()
}

/// K-means over clustered points (Hadoop K-means in the paper — the
/// traced run overlays framework cost per point per pass).
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansWorkload;

impl Workload for KMeansWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::KMeans
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let n = scale.native_units(POINTS_BASELINE);
        let data = points(scale, n);
        let bytes = n * (DIM as u64) * 8;
        let kmeans = KMeans { k: K, max_iterations: 10, tolerance: 1e-4 };
        let start = Instant::now();
        let model = kmeans.fit(&data, scale.seed_for(51));
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} iterations, inertia {:.1}", model.iterations, model.inertia))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let n = scale.native_units(POINTS_BASELINE).max(200);
        let data = points(scale, n);
        let kmeans = KMeans { k: K, max_iterations: 5, tolerance: 1e-4 };
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        // Warm-up pass (one iteration + framework code), then measure.
        KMeans { k: K, max_iterations: 1, tolerance: 1e-4 }.fit_traced(
            &data,
            scale.seed_for(51),
            &mut probe,
        );
        fw.warm(&mut probe);
        probe.reset_stats();
        let model = kmeans.fit_traced(&data, scale.seed_for(51), &mut probe);
        // Hadoop K-means re-reads every point (as a text record, ~20
        // bytes per coordinate) from HDFS each iteration.
        for _ in 0..model.iterations {
            for i in 0..n {
                fw.on_map_record(&mut probe, DIM * 12);
                // Text-to-float parsing dominates Hadoop K-means.
                probe.int_ops(DIM as u64 * 40);
                if i % 8 == 0 {
                    fw.on_emit(&mut probe, DIM * 8 + 8);
                }
            }
        }
        probe.finish()
    }
}

/// Connected Components by MapReduce-style label propagation over the
/// Facebook-fitted social graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcWorkload;

fn social_graph(scale: &RunScale, vertices: u64) -> CsrGraph {
    let g = GraphGenerator::new(RmatParams::facebook_social(), scale.seed_for(52))
        .generate(vertices.min(u32::MAX as u64) as u32);
    CsrGraph::from_edges(g.nodes, &g.edges)
}

impl Workload for CcWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::ConnectedComponents
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let vertices = scale.native_units(CC_BASELINE_VERTICES);
        let graph = social_graph(scale, vertices);
        let bytes = graph.byte_size();
        let start = Instant::now();
        let (labels, iterations) = cc::label_propagation(&graph);
        let seconds = start.elapsed().as_secs_f64();
        let components = cc::component_count(&labels);
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{components} components in {iterations} iterations"))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let vertices = scale.native_units(CC_BASELINE_VERTICES).max(128);
        let graph = social_graph(scale, vertices);
        let mut probe = SimProbe::new(machine);
        let mut trace = Some(GraphTraceModel::new(&graph));
        let mut fw = FrameworkModel::new();
        cc::label_propagation_traced(&graph, &mut probe, &mut trace);
        fw.warm(&mut probe);
        probe.reset_stats();
        let (_, iterations) = cc::label_propagation_traced(&graph, &mut probe, &mut trace);
        // Hadoop CC re-reads every adjacency record each iteration and
        // shuffles candidate labels along edges.
        for _ in 0..iterations.min(8) {
            for v in 0..graph.nodes() {
                let record = 8 + 4 * graph.out_degree(v) as usize;
                fw.on_map_record(&mut probe, record);
                if v % 4 == 0 {
                    fw.on_emit(&mut probe, 8);
                }
            }
        }
        probe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_clusters_blobs() {
        let r = KMeansWorkload.run_native(&RunScale::quick());
        assert!(matches!(r.metric, UserMetric::Dps { .. }));
        assert!(r.detail.contains("iterations"));
    }

    #[test]
    fn cc_finds_giant_component() {
        let r = CcWorkload.run_native(&RunScale::quick());
        let components: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        let vertices = RunScale::quick().native_units(CC_BASELINE_VERTICES) as usize;
        // Facebook-density R-MAT: most vertices join one big component.
        assert!(components < vertices / 2, "{components} of {vertices}");
    }

    #[test]
    fn traced_runs_include_framework_overlay() {
        let scale = RunScale::quick();
        let km = KMeansWorkload.run_traced(&scale, MachineConfig::xeon_e5645());
        let cc = CcWorkload.run_traced(&scale, MachineConfig::xeon_e5645());
        assert!(km.mix.other > 0 && cc.mix.other > 0);
        assert!(km.mix.fp_ops > 0, "K-means distance math is FP");
    }
}
